//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the subset of the `rand` 0.9 API that the
//! `fairnn-*` crates use:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator (xoshiro256++
//!   seeded through SplitMix64; **not** the cryptographic ChaCha generator of
//!   the real crate, which none of the workspace code relies on);
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`] and
//!   [`SeedableRng::from_seed`];
//! * [`Rng`] with [`Rng::random`], [`Rng::random_range`] and
//!   [`Rng::random_bool`] for the primitive types the workspace samples.
//!
//! All generators are deterministic functions of their seed, which is what
//! the fair-sampling test suite requires. If the real `rand` crate becomes
//! available, deleting `third_party/rand` and switching the workspace
//! dependency to the registry version is a drop-in change (statistical
//! streams will differ; seeds are not portable between the two).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand 0.9`'s `Rng` trait.
///
/// Blanket-implemented for every [`RngCore`], exactly like the real crate.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the full range for integers, uniform in `[0, 1)` for
    /// floats, fair coin for `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching the real crate.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0,1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convenience entry point as the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64_next(&mut state);
            for (dst, src) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled from their "standard" distribution.
pub trait StandardUniform: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by 128-bit widening multiply with rejection
/// (Lemire's method), so integer ranges are exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (n as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )+};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u * span` can round up to `end` when the span is tiny
        // relative to `start`; keep the half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna).
    ///
    /// Deterministic given its seed; 256 bits of state; passes the usual
    /// statistical batteries. Unlike the real `rand::rngs::StdRng` it is not
    /// cryptographically secure — nothing in this workspace needs that.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(5u32..=6);
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
