//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   integer/float ranges and tuples;
//! * [`collection::vec`] and [`collection::hash_set`];
//! * the [`proptest!`] macro (with the optional
//!   `#![proptest_config(...)]` header), plus [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from the real crate, deliberate for an offline environment:
//! inputs are generated from a **fixed per-test deterministic seed stream**
//! (so CI is reproducible), there is **no shrinking** (a failing case prints
//! its case number and RNG seed to stderr before the panic propagates, and
//! the same seed always regenerates the same inputs locally), and
//! `prop_assert*` panic immediately instead of routing a `TestCaseError`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of type `Self::Value`.
    ///
    /// Mirrors proptest's `Strategy`, minus shrinking: a strategy only needs
    /// to produce a value from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_unsigned_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }
    impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = rng.random_range(0u64..span);
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )+};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Strategy that always yields a clone of one value (proptest's `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies: [`vec()`] and [`hash_set`].

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Number-of-elements specification accepted by the collection
    /// strategies: a fixed size or a half-open/inclusive range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.min..=self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    ///
    /// As in real proptest, the set may come out smaller than requested when
    /// the element strategy produces duplicates; generation attempts are
    /// bounded so a narrow element domain cannot loop forever.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 10 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    //! Test-case configuration.

    /// Controls how many cases each property runs (proptest's
    /// `ProptestConfig`, reduced to the field the workspace uses).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub use rand as __rand;

/// FNV-1a hash of a string; used to give every property its own
/// deterministic seed stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests.
///
/// Supports the same surface syntax as proptest's macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(0u64..10, 1..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut __ran = 0u32;
                let mut __attempt = 0u32;
                // Run `cases` cases; prop_assume! rejections are retried with
                // the next seed, with a bounded number of total attempts.
                while __ran < __config.cases && __attempt < __config.cases.saturating_mul(20) {
                    let __seed =
                        __base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(__attempt as u64 + 1));
                    let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                    __attempt += 1;
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                            ::core::option::Option::Some(())
                        }),
                    );
                    match __outcome {
                        ::core::result::Result::Ok(::core::option::Option::Some(())) => {
                            __ran += 1;
                        }
                        // prop_assume! rejected the inputs: retry with the
                        // next seed.
                        ::core::result::Result::Ok(::core::option::Option::None) => {}
                        ::core::result::Result::Err(__payload) => {
                            eprintln!(
                                "proptest: property {} failed on case {} (rng seed {:#x})",
                                stringify!($name),
                                __ran + 1,
                                __seed,
                            );
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                }
                assert!(
                    __ran == __config.cases,
                    "prop_assume! rejected too many inputs ({} of {} cases ran)",
                    __ran,
                    __config.cases,
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case (and draws a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_map_generate_in_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let f = -5.0f64..5.0;
        for _ in 0..100 {
            let v = f.generate(&mut rng);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn collection_sizes_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = crate::collection::vec(0u64..100, 3..7);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let hs = crate::collection::hash_set(0u64..1_000_000, 0..14);
        for _ in 0..50 {
            let v = hs.generate(&mut rng);
            assert!(v.len() < 14);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..50, mut v in crate::collection::vec(0u64..9, 1..4)) {
            prop_assume!(x != 13);
            v.push(8);
            prop_assert!(x < 50);
            prop_assert_eq!(v.last().copied(), Some(8));
            prop_assert_ne!(v.len(), 0);
        }
    }
}
