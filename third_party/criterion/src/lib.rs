//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion API the workspace's `[[bench]]` targets use:
//! [`Criterion`] with `warm_up_time` / `measurement_time` / `sample_size`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up for the
//! configured warm-up budget, then timed over batches until the measurement
//! budget is spent, and the mean/min batch time per iteration is printed as
//! one summary line. There are no statistics, plots or saved baselines —
//! enough to compare hot paths locally and to keep `cargo bench` green.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for bench
//! targets) each benchmark body runs exactly once so the suite stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for parity with criterion's API.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("\n{name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        self.run_one(&id.into().label, sample_size, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size,
            test_mode: self.test_mode,
            report: None,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {label} ... ok");
        } else if let Some(report) = bencher.report {
            println!(
                "  {label:<40} mean {:>12}/iter  min {:>12}/iter  ({} iters)",
                fmt_ns(report.mean_ns),
                fmt_ns(report.min_ns),
                report.iterations,
            );
            // Machine-readable trail: when CRITERION_JSON names a file, one
            // JSON line per benchmark is appended (JSONL), so CI can archive
            // the numbers as an artifact without parsing the human output.
            if let Ok(path) = std::env::var("CRITERION_JSON") {
                if !path.is_empty() {
                    let line = format!(
                        "{{\"label\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iterations\": {}}}\n",
                        label.replace('"', "'"),
                        report.mean_ns,
                        report.min_ns,
                        report.iterations,
                    );
                    use std::io::Write;
                    if let Ok(mut file) = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&path)
                    {
                        let _ = file.write_all(line.as_bytes());
                    }
                }
            }
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    iterations: u64,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the measurement budget
    /// is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm-up, which also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size batches so that `sample_size` batches fill the budget.
        let budget = self.measurement_time.as_secs_f64();
        let batch =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64() / batch as f64;
            total += elapsed;
            min = min.min(elapsed);
            iterations += batch;
        }
        self.report = Some(Report {
            mean_ns: total / self.sample_size as f64 * 1e9,
            min_ns: min * 1e9,
            iterations,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, with or without a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).product()
    }

    #[test]
    fn group_and_bencher_produce_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        c.test_mode = false;
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("fib", |b| b.iter(|| fib(black_box(20))));
        group.bench_with_input(BenchmarkId::new("fib", 10), &10u64, |b, &n| {
            b.iter(|| fib(black_box(n)))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
        assert_eq!(BenchmarkId::from("x").label, "x");
    }
}
