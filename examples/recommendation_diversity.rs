//! Recommendation diversity: the motivating scenario of the paper's
//! introduction.
//!
//! A matrix-factorisation recommender usually recommends the items (here:
//! similar users, as in collaborative filtering) with the *largest*
//! similarity. The paper argues that sampling uniformly from the whole
//! r-neighbourhood instead gives every sufficiently similar candidate the
//! same exposure, which diversifies recommendations and removes the bias of
//! the similarity index itself.
//!
//! This example compares, for one target user:
//! * the top-k most similar users (what a standard recommender shows), and
//! * k fair samples without replacement from the r-neighbourhood
//!   (Section 3.1 of the paper).
//!
//! Run with: `cargo run -p fairnn-examples --release --bin recommendation_diversity`

use fairnn_core::{FairNns, SimilarityAtLeast};
use fairnn_data::{select_interesting_queries, setdata::small_test_config};
use fairnn_lsh::{OneBitMinHash, ParamsBuilder};
use fairnn_space::{Jaccard, Similarity};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = small_test_config().generate(2024);
    let r = 0.25;
    let k = 5;

    // Pick an "interesting" user (enough neighbours to recommend from).
    let queries = select_interesting_queries(&dataset, &Jaccard, r, 15, 1, 7);
    let Some(&target) = queries.first() else {
        eprintln!("no user with a sufficiently rich neighbourhood — regenerate the dataset");
        return;
    };
    let query = dataset.point(target).clone();
    let neighborhood = dataset.similar_indices(&Jaccard, &query, r);
    println!(
        "target user {target}: {} candidate users at Jaccard >= {r}",
        neighborhood.len()
    );

    // Standard recommender behaviour: top-k by similarity.
    let mut by_similarity: Vec<_> = neighborhood
        .iter()
        .filter(|id| **id != target)
        .map(|id| (*id, Jaccard.similarity(&query, dataset.point(*id))))
        .collect();
    by_similarity.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-{k} by similarity (standard recommender):");
    for (id, sim) in by_similarity.iter().take(k) {
        println!("  user {id} (similarity {sim:.3})");
    }

    // Fair alternative: k samples without replacement from the whole
    // neighbourhood, every candidate equally likely.
    let params = ParamsBuilder::new(dataset.len(), r, 0.1).empirical(&OneBitMinHash);
    let near = SimilarityAtLeast::new(Jaccard, r);
    let mut rng = StdRng::seed_from_u64(3);
    let mut sampler = FairNns::build(&OneBitMinHash, params, &dataset, near, &mut rng);
    let fair_k = sampler.sample_without_replacement(&query, k + 1); // +1 in case the target itself is drawn
    println!("\n{k} fair samples without replacement (Section 3.1):");
    for id in fair_k.into_iter().filter(|id| *id != target).take(k) {
        let sim = Jaccard.similarity(&query, dataset.point(id));
        println!("  user {id} (similarity {sim:.3})");
    }

    // Quantify the difference in exposure: mean similarity of the two lists.
    let top_mean: f64 = by_similarity.iter().take(k).map(|(_, s)| *s).sum::<f64>()
        / k.min(by_similarity.len()) as f64;
    println!(
        "\nmean similarity of top-{k} list: {top_mean:.3}; the fair sample typically sits lower, \
         spreading exposure over the whole neighbourhood instead of the same few closest users."
    );
}
