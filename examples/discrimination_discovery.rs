//! Discrimination discovery via independent range sampling.
//!
//! Section 1 of the paper points to Luong et al.: to test whether users with
//! similar, legally admissible characteristics are treated differently, one
//! inspects the neighbourhood of a user and compares outcomes across a
//! protected attribute. Enumerating the whole neighbourhood is expensive;
//! independent uniform samples (r-NNIS) give an unbiased estimate of any
//! neighbourhood statistic at a fraction of the cost — and, being uniform,
//! they do not skew the estimate towards the closest (most similar) users
//! the way a standard LSH index would.
//!
//! This example assigns every synthetic user a protected group and compares
//! three estimates of "fraction of group A in the neighbourhood":
//! the exact value, the estimate from fair independent samples, and the
//! estimate from repeatedly asking a standard LSH index.
//!
//! Run with: `cargo run -p fairnn-examples --release --bin discrimination_discovery`

use fairnn_core::{FairNnis, NeighborSampler, SimilarityAtLeast, StandardLsh};
use fairnn_data::{select_interesting_queries, setdata::small_test_config};
use fairnn_lsh::{OneBitMinHash, ParamsBuilder};
use fairnn_space::{Jaccard, PointId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let dataset = small_test_config().generate(777);
    let r = 0.25;
    let samples_per_query = 200;

    // Assign a synthetic protected attribute, correlated with the similarity
    // structure so that the standard index's bias actually shows up: within
    // the neighbourhood, closer users are more likely to be in group A.
    let mut attr_rng = StdRng::seed_from_u64(5);
    let group_a: Vec<bool> = (0..dataset.len())
        .map(|i| attr_rng.random::<f64>() < if i % 3 == 0 { 0.8 } else { 0.2 })
        .collect();

    let queries = select_interesting_queries(&dataset, &Jaccard, r, 15, 3, 11);
    if queries.is_empty() {
        eprintln!("no suitable query users found");
        return;
    }

    let params = ParamsBuilder::new(dataset.len(), r, 0.1).empirical(&OneBitMinHash);
    let near = SimilarityAtLeast::new(Jaccard, r);
    let mut rng = StdRng::seed_from_u64(1);
    let mut fair = FairNnis::build(&OneBitMinHash, params, &dataset, near, &mut rng);
    let mut standard = StandardLsh::build(&OneBitMinHash, params, &dataset, near, &mut rng);

    println!("fraction of protected group A among the r-neighbours of each audited user\n");
    println!(
        "{:<10} {:>12} {:>14} {:>16}",
        "user", "exact", "fair r-NNIS", "standard LSH"
    );
    for &qid in &queries {
        let query = dataset.point(qid).clone();
        let neighborhood = dataset.similar_indices(&Jaccard, &query, r);
        let exact = fraction_in_group(&neighborhood, &group_a);

        let fair_estimate = estimate(&mut fair, &query, samples_per_query, &group_a, 21);
        let standard_estimate = estimate(&mut standard, &query, samples_per_query, &group_a, 22);

        println!(
            "{:<10} {:>12.3} {:>14.3} {:>16.3}",
            qid.to_string(),
            exact,
            fair_estimate,
            standard_estimate
        );
    }
    println!(
        "\nThe fair estimate converges to the exact fraction; the standard-LSH estimate reflects \
         whatever subset of the neighbourhood the index happens to favour."
    );
}

fn fraction_in_group(ids: &[PointId], group_a: &[bool]) -> f64 {
    if ids.is_empty() {
        return 0.0;
    }
    ids.iter().filter(|id| group_a[id.index()]).count() as f64 / ids.len() as f64
}

fn estimate<S: NeighborSampler<fairnn_space::SparseSet>>(
    sampler: &mut S,
    query: &fairnn_space::SparseSet,
    samples: usize,
    group_a: &[bool],
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    let mut total = 0usize;
    for _ in 0..samples {
        if let Some(id) = sampler.sample(query, &mut rng) {
            total += 1;
            if group_a[id.index()] {
                hits += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}
