//! Quickstart: build a fair independent near-neighbor sampler over a small
//! synthetic user/item dataset and draw a few samples.
//!
//! Run with: `cargo run -p fairnn-examples --release --bin quickstart`

use fairnn_core::{FairNnis, NeighborSampler, SimilarityAtLeast};
use fairnn_data::setdata::small_test_config;
use fairnn_lsh::{OneBitMinHash, ParamsBuilder};
use fairnn_space::{Jaccard, PointId, Similarity};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate a small synthetic dataset of user profiles (sets of item
    //    ids) with planted interest clusters.
    let dataset = small_test_config().generate(42);
    println!("dataset: {} users", dataset.len());

    // 2. Choose the neighbourhood definition: Jaccard similarity at least r.
    let r = 0.3;
    let near = SimilarityAtLeast::new(Jaccard, r);

    // 3. Derive LSH parameters the same way the paper's evaluation does
    //    (1-bit MinHash, >= 99% recall at r, ~5 expected far collisions).
    let params = ParamsBuilder::new(dataset.len(), r, 0.1).empirical(&OneBitMinHash);
    println!("LSH parameters: K = {}, L = {}", params.k, params.l);

    // 4. Build the Section 4 fair independent sampler.
    let mut rng = StdRng::seed_from_u64(1);
    let mut sampler = FairNnis::build(&OneBitMinHash, params, &dataset, near, &mut rng);

    // 5. Query with one of the users and draw ten independent fair samples.
    let query_id = PointId(0);
    let query = dataset.point(query_id).clone();
    let neighborhood = dataset.similar_indices(&Jaccard, &query, r);
    println!(
        "query user {query_id} has {} neighbours at Jaccard >= {r}",
        neighborhood.len()
    );

    println!("ten independent fair samples from the neighbourhood:");
    for i in 0..10 {
        match sampler.sample(&query, &mut rng) {
            Some(id) => {
                let sim = Jaccard.similarity(&query, dataset.point(id));
                println!("  sample {i}: user {id} (similarity {sim:.3})");
            }
            None => println!("  sample {i}: ⊥ (no near neighbour found)"),
        }
    }

    let stats = sampler.last_query_stats();
    println!(
        "last query inspected {} bucket entries and computed {} similarities over {} rounds",
        stats.entries_scanned, stats.distance_computations, stats.rounds
    );
}
