//! Serving demo: the sharded, concurrent, batched query engine end to end —
//! build, batch queries, the rank-swap cache fast path, incremental updates,
//! and a small timed comparison against the single-shot sampler.
//!
//! Run with: `cargo run --release --example engine_throughput`

use fairnn_core::{NeighborSampler, SimilarityAtLeast};
use fairnn_data::setdata::small_test_config;
use fairnn_engine::{
    EngineConfig, EngineWriter, QueryEngine, QueryRequest, ShardedIndexConfig, ShardedSampler,
    WriteBatch,
};
use fairnn_lsh::{OneBitMinHash, ParamsBuilder};
use fairnn_space::{Jaccard, PointId, Similarity};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // 1. A small synthetic user/item dataset with planted interest clusters.
    let dataset = small_test_config().generate(42);
    let r = 0.3;
    let near = SimilarityAtLeast::new(Jaccard, r);
    let params = ParamsBuilder::new(dataset.len(), r, 0.1).empirical(&OneBitMinHash);
    println!(
        "dataset: {} users; LSH parameters: K = {}, L = {}",
        dataset.len(),
        params.k,
        params.l
    );

    // 2. Build the serving engine: 4 shards, 2 worker threads, result cache.
    let mut engine = QueryEngine::build(
        &OneBitMinHash,
        params,
        &dataset,
        near,
        EngineConfig::default()
            .with_shards(4)
            .with_threads(2)
            .with_seed(7),
    );
    println!(
        "engine: {} shards, {} live points",
        engine.num_shards(),
        engine.len()
    );

    // 3. A batch of queries, including deliberate repeats: the first
    //    occurrence runs the two-level pipeline, repeats ride the Theorem 5
    //    rank-swap fast path.
    let query = dataset.point(PointId(0)).clone();
    let mut batch = Vec::new();
    for i in 0..6u32 {
        batch.push(dataset.point(PointId(i)).clone());
    }
    batch.push(query.clone());
    batch.push(query.clone());
    let answers = engine.run_batch(&batch);
    println!("\nbatch of {} queries:", batch.len());
    for (i, answer) in answers.iter().enumerate() {
        match answer.id {
            Some(id) => {
                let sim = Jaccard.similarity(&batch[i], dataset.point(id));
                println!(
                    "  query {i}: user {id} (similarity {sim:.3}){}",
                    if answer.via_cache { " [cache]" } else { "" }
                );
            }
            None => println!("  query {i}: ⊥"),
        }
    }
    let (hits, misses) = engine.cache_stats();
    println!("cache: {hits} hits, {misses} misses");

    // 4. Incremental updates go through the generational writer: commits
    //    are write-ahead-logged, then published as a new immutable
    //    generation; readers pin an epoch and never observe a thaw.
    let dir = std::env::temp_dir().join(format!("fairnn-example-engine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = EngineWriter::bootstrap(
        &OneBitMinHash,
        params,
        &dataset,
        near,
        ShardedIndexConfig::with_shards(4).seeded(7),
        &dir,
    )
    .expect("bootstrap engine directory");
    let reader = writer.reader();
    let receipt = writer
        .commit(WriteBatch::new().insert(query.clone()))
        .expect("insert commit");
    let id = receipt.assigned[0];
    let pin = reader.pin();
    println!(
        "\ninserted twin as {id} (generation {}, WAL seq {}); pinned index has {} points",
        receipt.generation,
        receipt.seq,
        pin.index().len()
    );
    let response = pin.run_batch(&QueryRequest::new(vec![query.clone()]));
    assert_eq!(response.generation, receipt.generation);
    writer
        .commit(WriteBatch::new().delete(id))
        .expect("delete commit");
    println!(
        "deleted {id} again; fresh pin back to {} points (old pin still serves {})",
        reader.pin().index().len(),
        pin.index().len()
    );
    let _ = std::fs::remove_dir_all(&dir);

    // 5. Throughput: repeated hot queries through the cache fast path vs the
    //    single-shot sharded sampler.
    let hot = vec![query.clone(); 20_000];
    let start = Instant::now();
    let answers = engine.run_batch(&hot);
    let engine_qps = hot.len() as f64 / start.elapsed().as_secs_f64();
    assert!(answers.iter().all(|a| a.id.is_some()));

    let mut single = ShardedSampler::build(
        &OneBitMinHash,
        params,
        &dataset,
        near,
        ShardedIndexConfig::with_shards(4).seeded(7),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let start = Instant::now();
    for _ in 0..2_000 {
        let _ = single.sample(&query, &mut rng);
    }
    let single_qps = 2_000.0 / start.elapsed().as_secs_f64();
    println!(
        "\nhot-query throughput: engine fast path {:.0} q/s vs single-shot pipeline {:.0} q/s ({:.0}x)",
        engine_qps,
        single_qps,
        engine_qps / single_qps
    );
}
