//! Fairness audit: measure how (un)fair different near-neighbor structures
//! are on the same query — a miniature, self-contained version of the
//! paper's Figure 1 experiment.
//!
//! Run with: `cargo run -p fairnn-examples --release --bin fairness_audit`

use fairnn_core::{
    FairNnis, NaiveFairLsh, NeighborSampler, RankSwapSampler, SimilarityAtLeast, StandardLsh,
};
use fairnn_data::{select_interesting_queries, setdata::small_test_config};
use fairnn_lsh::{OneBitMinHash, ParamsBuilder};
use fairnn_space::Jaccard;
use fairnn_stats::{FrequencyHistogram, UniformityReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = small_test_config().generate(99);
    let r = 0.25;
    let repetitions = 4000;

    let queries = select_interesting_queries(&dataset, &Jaccard, r, 15, 1, 3);
    let Some(&qid) = queries.first() else {
        eprintln!("no suitable query user found");
        return;
    };
    let query = dataset.point(qid).clone();
    let neighborhood = dataset.similar_indices(&Jaccard, &query, r);
    println!(
        "auditing query user {qid}: true neighbourhood size b_S(q, r) = {}\n",
        neighborhood.len()
    );

    let params = ParamsBuilder::new(dataset.len(), r, 0.1).empirical(&OneBitMinHash);
    let near = SimilarityAtLeast::new(Jaccard, r);
    let mut rng = StdRng::seed_from_u64(1);

    let mut standard = StandardLsh::build(&OneBitMinHash, params, &dataset, near, &mut rng);
    let mut naive = NaiveFairLsh::build(&OneBitMinHash, params, &dataset, near, &mut rng);
    let mut rank_swap = RankSwapSampler::build(&OneBitMinHash, params, &dataset, near, &mut rng);
    let mut nnis = FairNnis::build(&OneBitMinHash, params, &dataset, near, &mut rng);

    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>10}",
        "sampler", "TV dist", "max/min", "chi2 p-value", "uniform?"
    );
    audit(
        "standard LSH (biased)",
        &mut standard,
        &query,
        &neighborhood,
        repetitions,
        10,
    );
    audit(
        "naive fair LSH",
        &mut naive,
        &query,
        &neighborhood,
        repetitions,
        11,
    );
    audit(
        "rank-swap (Appendix A)",
        &mut rank_swap,
        &query,
        &neighborhood,
        repetitions,
        12,
    );
    audit(
        "fair r-NNIS (Section 4)",
        &mut nnis,
        &query,
        &neighborhood,
        repetitions,
        13,
    );

    println!(
        "\nA fair sampler has small total-variation distance, a max/min frequency ratio close to 1 \
         and a chi-square p-value that does not reject uniformity."
    );
}

fn audit<S: NeighborSampler<fairnn_space::SparseSet>>(
    label: &str,
    sampler: &mut S,
    query: &fairnn_space::SparseSet,
    neighborhood: &[fairnn_space::PointId],
    repetitions: usize,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist = FrequencyHistogram::new();
    for _ in 0..repetitions {
        hist.record(sampler.sample(query, &mut rng));
    }
    let report = UniformityReport::from_histogram(&hist, neighborhood);
    println!(
        "{:<26} {:>10.3} {:>12.2} {:>14.4} {:>10}",
        label,
        report.total_variation,
        report.max_min_ratio,
        report.chi_square_p_value(),
        if report.is_consistent_with_uniform(0.001) {
            "yes"
        } else {
            "no"
        }
    );
}
