//! The common sampling interface and per-query work accounting.

use fairnn_space::PointId;
use rand::{Rng, RngCore};

/// Work performed by the most recent query — the quantities the paper's
/// running-time analysis counts (hash evaluations, distance computations,
/// bucket entries read) plus the retry rounds of the rejection-sampling
/// loops of Sections 4 and 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Bucket entries read (including duplicates across tables).
    pub entries_scanned: usize,
    /// Distance / similarity evaluations performed.
    pub distance_computations: usize,
    /// Buckets (or filters) inspected.
    pub buckets_inspected: usize,
    /// Rejection-sampling rounds (Sections 4 and 5 query loops).
    pub rounds: usize,
}

impl QueryStats {
    /// Adds another stats record to this one (used when a logical query is
    /// made of several internal passes).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.entries_scanned += other.entries_scanned;
        self.distance_computations += other.distance_computations;
        self.buckets_inspected += other.buckets_inspected;
        self.rounds += other.rounds;
    }
}

/// A data structure answering *fair near-neighbor sampling* queries: each
/// call to [`NeighborSampler::sample`] returns a point of the query's
/// neighbourhood, and for the fair implementations every neighbourhood
/// member is equally likely (Definition 1 of the paper); the independent
/// variants additionally make successive outputs independent
/// (Definition 2).
pub trait NeighborSampler<P> {
    /// Draws one sample from the neighbourhood of `query`, or `None` (the
    /// paper's `⊥`) when the neighbourhood is empty or the data structure
    /// fails to find a near point.
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId>;

    /// Draws `k` samples **with replacement** by repeated calls to
    /// [`NeighborSampler::sample`]. For samplers that solve the independent
    /// sampling problem (r-NNIS) the draws are independent; for plain r-NNS
    /// structures they are not (see Section 3.1 of the paper).
    fn sample_with_replacement<R: Rng + ?Sized>(
        &mut self,
        query: &P,
        k: usize,
        rng: &mut R,
    ) -> Vec<PointId> {
        (0..k).filter_map(|_| self.sample(query, rng)).collect()
    }

    /// Work statistics of the most recent [`NeighborSampler::sample`] call.
    fn last_query_stats(&self) -> QueryStats {
        QueryStats::default()
    }

    /// A short human-readable name used by the experiment harness.
    fn name(&self) -> &'static str {
        "sampler"
    }
}

/// Object-safe companion of [`NeighborSampler`].
///
/// [`NeighborSampler::sample`] is generic over the RNG, which rules out trait
/// objects; serving layers (the `fairnn-engine` query engine, comparison
/// harnesses) want to hold heterogeneous samplers behind one pointer type and
/// dispatch dynamically. `FairSampler` erases the RNG parameter to
/// `&mut dyn RngCore` and is blanket-implemented for every
/// [`NeighborSampler`], so `Box<dyn FairSampler<P>>` works for every sampler
/// in this crate without further ceremony.
pub trait FairSampler<P> {
    /// Draws one sample from the neighbourhood of `query` (see
    /// [`NeighborSampler::sample`]).
    fn sample_dyn(&mut self, query: &P, rng: &mut dyn RngCore) -> Option<PointId>;

    /// Work statistics of the most recent [`FairSampler::sample_dyn`] call.
    fn last_stats(&self) -> QueryStats;

    /// A short human-readable name used by harnesses.
    fn sampler_name(&self) -> &'static str;
}

impl<P, S: NeighborSampler<P>> FairSampler<P> for S {
    fn sample_dyn(&mut self, query: &P, rng: &mut dyn RngCore) -> Option<PointId> {
        self.sample(query, rng)
    }

    fn last_stats(&self) -> QueryStats {
        self.last_query_stats()
    }

    fn sampler_name(&self) -> &'static str {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSampler {
        value: Option<PointId>,
        stats: QueryStats,
    }

    impl NeighborSampler<u32> for FixedSampler {
        fn sample<R: Rng + ?Sized>(&mut self, _query: &u32, _rng: &mut R) -> Option<PointId> {
            self.stats.rounds += 1;
            self.value
        }

        fn last_query_stats(&self) -> QueryStats {
            self.stats
        }
    }

    #[test]
    fn default_sample_with_replacement_repeats_sample() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut s = FixedSampler {
            value: Some(PointId(7)),
            stats: QueryStats::default(),
        };
        let out = s.sample_with_replacement(&0, 5, &mut rng);
        assert_eq!(out, vec![PointId(7); 5]);
        assert_eq!(s.last_query_stats().rounds, 5);
        assert_eq!(s.name(), "sampler");
    }

    #[test]
    fn none_results_are_skipped_in_with_replacement() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut s = FixedSampler {
            value: None,
            stats: QueryStats::default(),
        };
        assert!(s.sample_with_replacement(&0, 3, &mut rng).is_empty());
    }

    #[test]
    fn fair_sampler_is_object_safe_and_forwards() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut boxed: Box<dyn FairSampler<u32>> = Box::new(FixedSampler {
            value: Some(PointId(3)),
            stats: QueryStats::default(),
        });
        assert_eq!(boxed.sample_dyn(&0, &mut rng), Some(PointId(3)));
        assert_eq!(boxed.last_stats().rounds, 1);
        assert_eq!(boxed.sampler_name(), "sampler");
    }

    #[test]
    fn stats_accumulate() {
        let mut a = QueryStats {
            entries_scanned: 1,
            distance_computations: 2,
            buckets_inspected: 3,
            rounds: 4,
        };
        let b = QueryStats {
            entries_scanned: 10,
            distance_computations: 20,
            buckets_inspected: 30,
            rounds: 40,
        };
        a.accumulate(&b);
        assert_eq!(a.entries_scanned, 11);
        assert_eq!(a.distance_computations, 22);
        assert_eq!(a.buckets_inspected, 33);
        assert_eq!(a.rounds, 44);
    }
}
