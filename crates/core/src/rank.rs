//! Random rank permutations.
//!
//! The key device of the Section 3 construction is a uniformly random
//! permutation of the dataset: each point receives a *rank* in `0..n`, and
//! the query returns the near neighbour of minimum rank. Because the
//! permutation is independent of the LSH randomness, every member of
//! `B_S(q, r)` is equally likely to carry the minimum rank, which is exactly
//! the fairness guarantee of Theorem 1.
//!
//! [`RankPermutation`] maintains the bijection in both directions
//! (`point → rank` and `rank → point`) and supports the rank *swap*
//! operation of Appendix A, which re-randomises the position of the returned
//! point so that repeating the same query yields independent samples.

use fairnn_space::PointId;
use rand::Rng;

/// A bijection between the `n` dataset points and the ranks `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPermutation {
    /// `rank_of[p]` is the rank of point `p`.
    rank_of: Vec<u32>,
    /// `point_at[r]` is the point holding rank `r`.
    point_at: Vec<u32>,
}

impl RankPermutation {
    /// Draws a uniformly random permutation of `n` points (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n <= u32::MAX as usize, "too many points for u32 ranks");
        let mut point_at: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            point_at.swap(i, j);
        }
        let mut rank_of = vec![0u32; n];
        for (rank, &point) in point_at.iter().enumerate() {
            rank_of[point as usize] = rank as u32;
        }
        Self { rank_of, point_at }
    }

    /// The identity permutation (rank = point index); useful for tests that
    /// need a deterministic baseline.
    pub fn identity(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many points for u32 ranks");
        Self {
            rank_of: (0..n as u32).collect(),
            point_at: (0..n as u32).collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// Returns `true` when the permutation is over zero points.
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// Rank of a point.
    #[inline]
    pub fn rank(&self, point: PointId) -> u32 {
        self.rank_of[point.index()]
    }

    /// Point holding a given rank.
    #[inline]
    pub fn point_with_rank(&self, rank: u32) -> PointId {
        PointId(self.point_at[rank as usize])
    }

    /// Swaps the ranks of two points, updating both directions of the
    /// bijection. Swapping a point with itself is a no-op.
    pub fn swap_points(&mut self, a: PointId, b: PointId) {
        let ra = self.rank_of[a.index()];
        let rb = self.rank_of[b.index()];
        self.rank_of.swap(a.index(), b.index());
        self.point_at.swap(ra as usize, rb as usize);
    }

    /// Performs the Appendix A re-randomisation step for point `x`: choose a
    /// uniformly random rank in `[rank(x), n)` and swap `x` with the point
    /// currently holding that rank. Returns the other point involved in the
    /// swap (which may be `x` itself).
    pub fn reshuffle_upwards<R: Rng + ?Sized>(&mut self, x: PointId, rng: &mut R) -> PointId {
        let n = self.len() as u32;
        let rx = self.rank(x);
        let target_rank = rng.random_range(rx..n);
        let y = self.point_with_rank(target_rank);
        self.swap_points(x, y);
        y
    }

    /// Iterates over points in rank order.
    pub fn points_in_rank_order(&self) -> impl Iterator<Item = PointId> + '_ {
        self.point_at.iter().map(|&p| PointId(p))
    }

    /// Checks the internal bijection invariant (used by tests and debug
    /// assertions).
    pub fn is_consistent(&self) -> bool {
        self.rank_of.len() == self.point_at.len()
            && self
                .point_at
                .iter()
                .enumerate()
                .all(|(rank, &p)| self.rank_of[p as usize] == rank as u32)
    }
}

impl fairnn_snapshot::Codec for RankPermutation {
    /// Persists the `point → rank` direction only; the inverse array is
    /// derived state and is rebuilt — and the bijection invariant verified —
    /// on load.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.rank_of.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let rank_of = Vec::<u32>::decode(dec)?;
        let n = rank_of.len();
        let mut point_at = vec![u32::MAX; n];
        for (point, &rank) in rank_of.iter().enumerate() {
            let slot = point_at.get_mut(rank as usize).ok_or_else(|| {
                SnapshotError::Corrupt(format!("rank {rank} out of range for {n} points"))
            })?;
            if *slot != u32::MAX {
                return Err(SnapshotError::Corrupt(format!(
                    "rank {rank} assigned to two points"
                )));
            }
            *slot = point as u32;
        }
        Ok(Self { rank_of, point_at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_permutation_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(1);
        let perm = RankPermutation::random(100, &mut rng);
        assert_eq!(perm.len(), 100);
        assert!(perm.is_consistent());
        let mut seen = [false; 100];
        for p in 0..100u32 {
            let r = perm.rank(PointId(p));
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
            assert_eq!(perm.point_with_rank(r), PointId(p));
        }
    }

    #[test]
    fn identity_permutation() {
        let perm = RankPermutation::identity(5);
        for i in 0..5u32 {
            assert_eq!(perm.rank(PointId(i)), i);
            assert_eq!(perm.point_with_rank(i), PointId(i));
        }
        assert!(perm.is_consistent());
        assert!(!perm.is_empty());
        assert!(RankPermutation::identity(0).is_empty());
    }

    #[test]
    fn swap_points_updates_both_directions() {
        let mut perm = RankPermutation::identity(6);
        perm.swap_points(PointId(1), PointId(4));
        assert_eq!(perm.rank(PointId(1)), 4);
        assert_eq!(perm.rank(PointId(4)), 1);
        assert_eq!(perm.point_with_rank(4), PointId(1));
        assert_eq!(perm.point_with_rank(1), PointId(4));
        assert!(perm.is_consistent());
        // Self-swap is a no-op.
        perm.swap_points(PointId(2), PointId(2));
        assert_eq!(perm.rank(PointId(2)), 2);
        assert!(perm.is_consistent());
    }

    #[test]
    fn reshuffle_moves_rank_upwards_only() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let mut perm = RankPermutation::random(20, &mut rng);
            let x = PointId(7);
            let before = perm.rank(x);
            let other = perm.reshuffle_upwards(x, &mut rng);
            assert!(perm.rank(x) >= before, "rank moved downwards");
            assert!(perm.is_consistent());
            // The swapped partner now holds x's old rank.
            if other != x {
                assert_eq!(perm.rank(other), before);
            }
        }
    }

    #[test]
    fn random_permutations_are_roughly_uniform() {
        // Each point should hold rank 0 about 1/n of the time.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10;
        let trials = 20_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            let perm = RankPermutation::random(n, &mut rng);
            counts[perm.point_with_rank(0).index()] += 1;
        }
        for &c in &counts {
            let rate = c as f64 / trials as f64;
            assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
        }
    }

    #[test]
    fn points_in_rank_order_iterates_every_point_once() {
        let mut rng = StdRng::seed_from_u64(5);
        let perm = RankPermutation::random(50, &mut rng);
        let mut ids: Vec<u32> = perm.points_in_rank_order().map(|p| p.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn single_point_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut perm = RankPermutation::random(1, &mut rng);
        assert_eq!(perm.rank(PointId(0)), 0);
        let other = perm.reshuffle_upwards(PointId(0), &mut rng);
        assert_eq!(other, PointId(0));
        assert!(perm.is_consistent());
    }
}
