//! Nearness predicates.
//!
//! The paper states its constructions both for distance thresholds
//! (`D(p, q) ≤ r`) and for similarity thresholds (`S(p, q) ≥ r`, Section 2.1
//! "Comment"). The samplers in this crate are generic over a [`Nearness`]
//! predicate so a single implementation covers both orientations; the two
//! adapters [`SimilarityAtLeast`] and [`DistanceAtMost`] wrap the measures of
//! `fairnn-space`.

use fairnn_space::metric::{Distance, Similarity};
use fairnn_space::ScreenRow;

/// Decides whether a dataset point belongs to the neighbourhood of a query.
pub trait Nearness<P> {
    /// Returns `true` when `point` is a near neighbour of `query`.
    fn is_near(&self, query: &P, point: &P) -> bool;

    /// The threshold value this predicate encodes (used for reporting).
    fn threshold(&self) -> f64;

    /// Precomputed screening row of a point for
    /// [`Nearness::may_be_near`], or `None` when this predicate has no
    /// admissible pre-screen (the default). Samplers build one row per
    /// indexed point and one per query.
    fn screen_row(&self, _point: &P) -> Option<ScreenRow> {
        None
    }

    /// Admissible candidate screen: may return `false` only when
    /// `is_near(query, point)` is certainly false, so consulting it before
    /// the exact predicate leaves every sampling decision bit-identical.
    fn may_be_near(&self, _query_row: &ScreenRow, _point_row: &ScreenRow) -> bool {
        true
    }
}

/// Builds the per-point screen table of a predicate: `Some` with one row
/// per point when the predicate has a pre-screen, `None` when it does not.
/// Samplers call this once per build/load and keep the result alongside
/// their point array.
pub fn build_screen_rows<P, N: Nearness<P>>(near: &N, points: &[P]) -> Option<Vec<ScreenRow>> {
    points.iter().map(|p| near.screen_row(p)).collect()
}

/// Neighbourhood defined by a similarity threshold: `S(q, p) ≥ r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityAtLeast<S> {
    measure: S,
    threshold: f64,
}

impl<S> SimilarityAtLeast<S> {
    /// Creates the predicate `S(q, p) >= threshold`.
    pub fn new(measure: S, threshold: f64) -> Self {
        Self { measure, threshold }
    }

    /// The underlying similarity measure.
    pub fn measure(&self) -> &S {
        &self.measure
    }
}

impl<P, S: Similarity<P>> Nearness<P> for SimilarityAtLeast<S> {
    fn is_near(&self, query: &P, point: &P) -> bool {
        self.measure.similarity(query, point) >= self.threshold
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn screen_row(&self, point: &P) -> Option<ScreenRow> {
        self.measure.screen_row(point)
    }

    fn may_be_near(&self, query_row: &ScreenRow, point_row: &ScreenRow) -> bool {
        self.measure.may_reach(query_row, point_row, self.threshold)
    }
}

impl<S: fairnn_snapshot::Codec> fairnn_snapshot::Codec for SimilarityAtLeast<S> {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.measure.encode(enc);
        enc.write_f64(self.threshold);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            measure: S::decode(dec)?,
            threshold: dec.read_f64()?,
        })
    }
}

/// Neighbourhood defined by a distance threshold: `D(q, p) ≤ r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceAtMost<D> {
    metric: D,
    threshold: f64,
}

impl<D> DistanceAtMost<D> {
    /// Creates the predicate `D(q, p) <= threshold`.
    pub fn new(metric: D, threshold: f64) -> Self {
        Self { metric, threshold }
    }

    /// The underlying distance metric.
    pub fn metric(&self) -> &D {
        &self.metric
    }
}

impl<D: fairnn_snapshot::Codec> fairnn_snapshot::Codec for DistanceAtMost<D> {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.metric.encode(enc);
        enc.write_f64(self.threshold);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            metric: D::decode(dec)?,
            threshold: dec.read_f64()?,
        })
    }
}

impl<P, D: Distance<P>> Nearness<P> for DistanceAtMost<D> {
    fn is_near(&self, query: &P, point: &P) -> bool {
        self.metric.distance(query, point) <= self.threshold
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn screen_row(&self, point: &P) -> Option<ScreenRow> {
        self.metric.screen_row(point)
    }

    fn may_be_near(&self, query_row: &ScreenRow, point_row: &ScreenRow) -> bool {
        self.metric
            .may_be_within(query_row, point_row, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_space::{DenseVector, Euclidean, Jaccard, SparseSet};

    #[test]
    fn similarity_predicate() {
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let a = SparseSet::from_items(vec![1, 2, 3, 4]);
        let b = SparseSet::from_items(vec![1, 2, 3, 5]);
        let c = SparseSet::from_items(vec![9, 10]);
        assert!(near.is_near(&a, &b));
        assert!(!near.is_near(&a, &c));
        assert_eq!(near.threshold(), 0.5);
        let _ = near.measure();
    }

    #[test]
    fn distance_predicate() {
        let near = DistanceAtMost::new(Euclidean, 1.0);
        let origin = DenseVector::new(vec![0.0, 0.0]);
        let close = DenseVector::new(vec![0.5, 0.5]);
        let far = DenseVector::new(vec![3.0, 4.0]);
        assert!(near.is_near(&origin, &close));
        assert!(!near.is_near(&origin, &far));
        assert_eq!(near.threshold(), 1.0);
        let _ = near.metric();
    }

    #[test]
    fn boundary_is_inclusive_in_both_orientations() {
        let sim = SimilarityAtLeast::new(Jaccard, 1.0);
        let a = SparseSet::from_items(vec![1, 2]);
        assert!(sim.is_near(&a, &a));
        let dist = DistanceAtMost::new(Euclidean, 5.0);
        let x = DenseVector::new(vec![0.0, 0.0]);
        let y = DenseVector::new(vec![3.0, 4.0]);
        assert!(dist.is_near(&x, &y));
    }
}
