//! The Section 4 data structure: r-near neighbor *independent* sampling.
//!
//! The Section 3 structure is fair but deterministic per build; Section 4
//! makes repeated and interleaved queries independent (Definition 2,
//! Theorem 2). Construction: the `K × L` LSH index, a random rank
//! permutation, and for every bucket (i) a rank-sorted array supporting
//! rank-range queries (the paper uses a balanced tree; a sorted array plus
//! binary search gives the same `O(log n + output)` bound for a static
//! bucket) and (ii) a mergeable count-distinct sketch.
//!
//! Query `q`:
//!
//! 1. merge the sketches of the `L` colliding buckets to get a
//!    `1/2`-approximation `ŝ_q` of the number of distinct colliding points;
//! 2. set `k` to the smallest power of two ≥ `2 ŝ_q`, split the rank space
//!    into `k` equal segments, set `λ = Θ(log n)` and `Σ = Θ(log² n)`;
//! 3. repeatedly pick a uniform segment `h`, pull the near points of that
//!    rank range out of the colliding buckets (deduplicating), and accept
//!    the segment with probability `λ_{q,h} / λ`, where `λ_{q,h}` is the
//!    number of near points found; after `Σ` consecutive failures halve `k`;
//! 4. on acceptance return a uniform point among the near points of the
//!    segment.
//!
//! Every point of `B_S(q, r)` is returned with probability `1/(kλ)` per
//! round, independent of everything else, which yields both uniformity and
//! independence. The expected query time is
//! `O((n^ρ + b_S(q, cr)/(b_S(q, r)+1)) · polylog n)`.

use crate::predicate::{build_screen_rows, Nearness};
use crate::rank::RankPermutation;
use crate::sampler::{NeighborSampler, QueryStats};
use fairnn_lsh::{
    ConcatenatedHasher, FrozenTable, LshFamily, LshHasher, LshIndex, LshParams, QueryScratch,
};
use fairnn_sketch::{
    CardinalityEstimator, DistinctSketch, DistinctSketchParams, DistinctValueTable,
};
use fairnn_space::{Dataset, PointId, ScreenRow};
use rand::Rng;

/// Active screening state of one query: the per-point rows and the query's
/// own row. `None` while the predicate has no pre-screen.
type ActiveScreen<'a> = Option<(&'a [ScreenRow], &'a ScreenRow)>;

/// Tuning knobs of the Section 4 query algorithm. The defaults follow the
/// paper's asymptotic choices with explicit constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairNnisConfig {
    /// Per-segment cap `λ = Θ(log n)`: a segment is accepted with
    /// probability `λ_{q,h}/λ`.
    pub lambda: usize,
    /// Number of consecutive failed segments `Σ = Θ(log² n)` before `k` is
    /// halved.
    pub sigma: usize,
    /// Buckets with at least this many points pre-compute their
    /// count-distinct sketch; smaller buckets are sketched on the fly at
    /// query time (the space-saving rule of Section 4).
    pub sketch_threshold: usize,
    /// When the rejection loop exhausts all values of `k` without success
    /// (a low-probability failure event), fall back to collecting all
    /// colliding near points and sampling uniformly among them instead of
    /// returning `⊥`. The fallback preserves uniformity and independence
    /// (it uses fresh randomness and the same candidate set) and makes the
    /// structure robust at small `n`, where the asymptotic constants are
    /// loose.
    pub exhaustive_fallback: bool,
}

impl FairNnisConfig {
    /// Default configuration for a dataset of `n` points.
    pub fn for_dataset_size(n: usize) -> Self {
        let log_n = (n.max(2) as f64).log2().ceil() as usize;
        Self {
            lambda: (2 * log_n).max(8),
            sigma: (log_n * log_n).max(16),
            sketch_threshold: (4 * log_n).max(16),
            exhaustive_fallback: true,
        }
    }
}

impl fairnn_snapshot::Codec for FairNnisConfig {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.lambda as u64);
        enc.write_u64(self.sigma as u64);
        enc.write_u64(self.sketch_threshold as u64);
        self.exhaustive_fallback.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            lambda: usize::decode(dec)?,
            sigma: usize::decode(dec)?,
            sketch_threshold: usize::decode(dec)?,
            exhaustive_fallback: bool::decode(dec)?,
        })
    }
}

/// One LSH table in the frozen layout: `(rank, id)` entries, rank-sorted
/// within each bucket, in one contiguous CSR array, plus a parallel array of
/// pre-computed count-distinct sketches (large buckets only).
#[derive(Debug, Clone)]
struct RankedTable {
    /// Bucket key → rank-sorted `(rank, id)` pairs; rank-range retrieval is
    /// a binary search inside the bucket slice.
    buckets: FrozenTable<(u32, PointId)>,
    /// `sketches[i]` is the sketch of `buckets.bucket_at(i)`, present only
    /// for buckets with at least `sketch_threshold` entries.
    sketches: Vec<Option<DistinctSketch>>,
}

impl fairnn_snapshot::Codec for RankedTable {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.buckets.encode(enc);
        self.sketches.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let buckets = FrozenTable::<(u32, PointId)>::decode(dec)?;
        let sketches = Vec::<Option<DistinctSketch>>::decode(dec)?;
        if sketches.len() != buckets.num_buckets() {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "ranked table stores {} sketch slots for {} buckets",
                sketches.len(),
                buckets.num_buckets()
            )));
        }
        Ok(Self { buckets, sketches })
    }
}

/// The sub-slice of a rank-sorted bucket whose ranks lie in `[lo, hi)`.
///
/// LSH buckets are short (tens of entries), so for them a forward linear
/// scan — predictable branches, no misprediction-heavy binary search — beats
/// `partition_point`; long buckets fall back to binary search. This runs
/// once per (round, table) in the rejection loop, which makes it the single
/// hottest comparison loop of the Section 4 query.
fn rank_range(entries: &[(u32, PointId)], lo: u32, hi: u32) -> &[(u32, PointId)] {
    const LINEAR_SCAN_MAX: usize = 64;
    if entries.len() <= LINEAR_SCAN_MAX {
        let mut start = 0;
        while start < entries.len() && entries[start].0 < lo {
            start += 1;
        }
        let mut end = start;
        while end < entries.len() && entries[end].0 < hi {
            end += 1;
        }
        &entries[start..end]
    } else {
        let start = entries.partition_point(|(r, _)| *r < lo);
        let end = entries.partition_point(|(r, _)| *r < hi);
        &entries[start..end]
    }
}

/// The Section 4 fair independent sampler.
///
/// Buckets live in the frozen CSR layout ([`FrozenTable`]); the query hot
/// path hashes the query once (all `K × L` rows in one batched pass), reuses
/// those keys for both the sketch-merge estimate and every rejection round,
/// and keeps its working memory — keys, epoch-stamped visited set, candidate
/// buffer, merge-accumulator sketch — in owned scratch, so steady-state
/// queries perform no heap allocation.
#[derive(Debug, Clone)]
pub struct FairNnis<P, H, N> {
    points: Vec<P>,
    hashers: Vec<H>,
    tables: Vec<RankedTable>,
    ranks: RankPermutation,
    near: N,
    /// Admissible per-point pre-screen rows of `near` (derived state,
    /// rebuilt on load; `None` when the predicate has no screen).
    screens: Option<Vec<ScreenRow>>,
    params: LshParams,
    config: FairNnisConfig,
    sketch_seed: u64,
    sketch_params: DistinctSketchParams,
    stats: QueryStats,
    scratch: QueryScratch,
    /// Reusable merge accumulator for the step-1 estimate.
    merged: DistinctSketch,
    /// Precomputed per-point sketch row values: on-the-fly sketching of
    /// small buckets costs a cutoff comparison per row instead of a
    /// polynomial hash per row.
    sketch_values: DistinctValueTable,
}

impl<P: Clone + Sync, BH, N> FairNnis<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
    N: Nearness<P>,
{
    /// Builds the data structure with default configuration.
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let config = FairNnisConfig::for_dataset_size(dataset.len());
        Self::build_with_config(family, params, dataset, near, config, rng)
    }

    /// Builds the data structure with an explicit configuration.
    pub fn build_with_config<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        config: FairNnisConfig,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let index = LshIndex::build(family, params, dataset.points(), rng);
        let ranks = RankPermutation::random(dataset.len(), rng);
        let sketch_seed: u64 = rng.random();
        Self::from_index(index, dataset, ranks, near, config, sketch_seed)
    }
}

impl<P: Clone, H, N> FairNnis<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Builds the structure from an existing index, permutation and sketch
    /// seed (full control for tests).
    pub fn from_index(
        index: LshIndex<H>,
        dataset: &Dataset<P>,
        ranks: RankPermutation,
        near: N,
        config: FairNnisConfig,
        sketch_seed: u64,
    ) -> Self {
        assert_eq!(
            ranks.len(),
            dataset.len(),
            "rank permutation size must match the dataset"
        );
        let params = index.params();
        let sketch_params = DistinctSketchParams::paper_defaults(dataset.len());
        let (hashers, lsh_tables) = index.into_parts();
        // Per-table rank sort, CSR freeze and bucket sketching are disjoint
        // work items; they run on parallel build workers in table order, so
        // the structure is bit-identical to the serial construction at any
        // thread count.
        let tables = fairnn_parallel::map_indexed(lsh_tables.len(), |t| {
            let buckets = FrozenTable::from_buckets(lsh_tables[t].buckets().map(|(key, ids)| {
                let mut entries: Vec<(u32, PointId)> =
                    ids.iter().map(|&id| (ranks.rank(id), id)).collect();
                entries.sort_unstable();
                (key, entries)
            }));
            let sketches = (0..buckets.num_buckets())
                .map(|i| {
                    let entries = buckets.bucket_at(i);
                    (entries.len() >= config.sketch_threshold).then(|| {
                        let mut s = DistinctSketch::new(sketch_seed, sketch_params);
                        for (_, id) in entries {
                            s.insert(id.0 as u64);
                        }
                        s
                    })
                })
                .collect();
            RankedTable { buckets, sketches }
        });
        let points = dataset.points().to_vec();
        let screens = build_screen_rows(&near, &points);
        Self {
            points,
            hashers,
            tables,
            ranks,
            near,
            screens,
            params,
            config,
            sketch_seed,
            sketch_params,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
            merged: DistinctSketch::new(sketch_seed, sketch_params),
            sketch_values: DistinctValueTable::build(sketch_seed, sketch_params, dataset.len()),
        }
    }
}

impl<P, H, N> FairNnis<P, H, N> {
    /// Number of indexed points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of LSH tables `L`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The LSH parameters.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The query-algorithm configuration.
    pub fn config(&self) -> FairNnisConfig {
        self.config
    }

    /// The rank permutation the segment structure is defined over.
    pub fn ranks(&self) -> &RankPermutation {
        &self.ranks
    }

    /// Number of buckets that carry a pre-computed sketch (space
    /// accounting / ablation).
    pub fn sketched_buckets(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.sketches.iter().flatten().count())
            .sum()
    }
}

impl<P, H, N> FairNnis<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Sentinel in the per-table resolved-bucket-index array for "query's
    /// key has no bucket in this table".
    const NO_BUCKET: u32 = u32::MAX;

    /// Resolves each table's bucket index for the query's keys, once per
    /// query: every later step — sketch merge, emptiness check, each of the
    /// potentially hundreds of rejection rounds — reuses the indices
    /// instead of re-running `L` binary searches per round.
    fn resolve_buckets(tables: &[RankedTable], keys: &[u64], indices: &mut Vec<u32>) {
        indices.clear();
        // Warm each table's slot-index cache line before the probes run.
        for (table, &key) in tables.iter().zip(keys.iter()) {
            table.buckets.prefetch(key);
        }
        indices.extend(tables.iter().zip(keys.iter()).map(|(table, &key)| {
            table
                .buckets
                .find(key)
                .map_or(Self::NO_BUCKET, |i| i as u32)
        }));
    }

    /// Merges the colliding buckets' sketches into `merged` given resolved
    /// bucket indices — the core of step 1, shared by
    /// [`FairNnis::estimate_colliding`] and [`NeighborSampler::sample`]
    /// (which hashes the query exactly once and reuses both the keys and
    /// the indices). Small (unsketched) buckets are folded in from the
    /// precomputed value table, and since sketch insertion is idempotent,
    /// `seen` gates each distinct point to a single insertion even when it
    /// collides in many tables — both shortcuts leave the merged sketch
    /// bit-identical to element-wise insertion.
    fn merge_colliding_resolved(
        tables: &[RankedTable],
        bucket_idx: &[u32],
        sketch_values: &DistinctValueTable,
        seen: &mut fairnn_lsh::VisitedSet,
        num_points: usize,
        merged: &mut DistinctSketch,
    ) {
        seen.reset(num_points);
        for (table, &idx) in tables.iter().zip(bucket_idx.iter()) {
            if idx == Self::NO_BUCKET {
                continue;
            }
            let i = idx as usize;
            match &table.sketches[i] {
                Some(sketch) => merged.merge(sketch),
                None => {
                    for (_, id) in table.buckets.bucket_at(i) {
                        if seen.insert(id.index()) {
                            merged.insert_precomputed(sketch_values.values_of(id.index()));
                        }
                    }
                }
            }
        }
    }

    /// Estimates the number of distinct points colliding with the query by
    /// merging the per-bucket count-distinct sketches (step 1 of the query
    /// algorithm). Exposed for tests and the experiment harness; the hot
    /// path goes through the keys-taking variant instead so the query is
    /// hashed only once.
    pub fn estimate_colliding(&self, query: &P) -> f64 {
        let mut keys = vec![0u64; self.hashers.len()];
        H::hash_all(&self.hashers, query, &mut keys);
        let mut indices = Vec::new();
        Self::resolve_buckets(&self.tables, &keys, &mut indices);
        let mut merged = DistinctSketch::new(self.sketch_seed, self.sketch_params);
        let mut seen = fairnn_lsh::VisitedSet::new();
        Self::merge_colliding_resolved(
            &self.tables,
            &indices,
            &self.sketch_values,
            &mut seen,
            self.points.len(),
            &mut merged,
        );
        merged.estimate()
    }

    /// Collects the distinct near points of `query` whose rank lies in
    /// `[lo, hi)` into `found` (step 3.b of the query algorithm).
    /// Cross-table duplicates are skipped via the epoch-stamped `visited`
    /// set — `O(1)` per entry instead of the former `O(|found|)` scan —
    /// bucket indices are pre-resolved (no per-round binary searches), the
    /// distance predicate is memoized across the whole query, and every
    /// buffer is caller-provided, so rounds do not allocate.
    #[allow(clippy::too_many_arguments)]
    fn collect_near_in_range(
        tables: &[RankedTable],
        points: &[P],
        near: &N,
        query: &P,
        screen: ActiveScreen<'_>,
        bucket_idx: &[u32],
        lo: u32,
        hi: u32,
        visited: &mut fairnn_lsh::VisitedSet,
        memo: &mut fairnn_lsh::DistanceMemo,
        found: &mut Vec<PointId>,
        stats: &mut QueryStats,
    ) {
        visited.reset(points.len());
        found.clear();
        for (table, &idx) in tables.iter().zip(bucket_idx.iter()) {
            stats.buckets_inspected += 1;
            if idx == Self::NO_BUCKET {
                continue;
            }
            let in_range = rank_range(table.buckets.bucket_at(idx as usize), lo, hi);
            for (pos, &(_, id)) in in_range.iter().enumerate() {
                stats.entries_scanned += 1;
                if !visited.insert(id.index()) {
                    continue; // duplicate across tables
                }
                if let Some(&(_, ahead)) = in_range.get(pos + 1) {
                    fairnn_snapshot::prefetch_read(points, ahead.index());
                }
                let is_near = memo.get_or_insert_with(id.index(), || {
                    stats.distance_computations += 1;
                    if let Some((rows, qrow)) = screen {
                        if !near.may_be_near(qrow, &rows[id.index()]) {
                            return false;
                        }
                    }
                    near.is_near(query, &points[id.index()])
                });
                if is_near {
                    found.push(id);
                }
            }
        }
    }

    /// Collects all distinct colliding near points (used by the exhaustive
    /// fallback and by tests).
    pub fn all_colliding_near_points(&mut self, query: &P) -> Vec<PointId> {
        let Self {
            points,
            hashers,
            tables,
            near,
            screens,
            scratch,
            ..
        } = self;
        let mut stats = QueryStats::default();
        scratch.compute_keys(hashers, query);
        Self::resolve_buckets(tables, &scratch.keys, &mut scratch.indices);
        scratch.memo.reset(points.len());
        let query_row = screens.as_ref().and_then(|_| near.screen_row(query));
        let screen = match (screens.as_deref(), query_row.as_ref()) {
            (Some(rows), Some(qrow)) => Some((rows, qrow)),
            _ => None,
        };
        let n = points.len() as u32;
        Self::collect_near_in_range(
            tables,
            points,
            near,
            query,
            screen,
            &scratch.indices,
            0,
            n,
            &mut scratch.visited,
            &mut scratch.memo,
            &mut scratch.candidates,
            &mut stats,
        );
        self.stats = stats;
        self.scratch.candidates.clone()
    }
}

/// Structural validation of one decoded [`RankedTable`]: entry ranges, the
/// rank-sort invariant (rank-range retrieval binary-searches inside the
/// bucket; unsorted entries would silently bias sampling rather than fail,
/// so the sort is part of the format), and sketch mergeability with the
/// query-time accumulator (a mismatched seed or parameter set would
/// otherwise panic inside `merge` on the first query that touches the
/// bucket, instead of failing the load).
fn validate_ranked_table(
    table: &RankedTable,
    num_points: usize,
    reference: &DistinctSketch,
) -> Result<(), fairnn_snapshot::SnapshotError> {
    use fairnn_snapshot::SnapshotError;
    for (_, bucket) in table.buckets.buckets() {
        for &(rank, id) in bucket {
            if id.index() >= num_points || rank as usize >= num_points {
                return Err(SnapshotError::Corrupt(format!(
                    "bucket entry (rank {rank}, {id}) out of range for {num_points} points"
                )));
            }
        }
        if !bucket.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt(
                "bucket entries are not strictly rank-sorted".into(),
            ));
        }
    }
    for sketch in table.sketches.iter().flatten() {
        if !reference.mergeable_with(sketch) {
            return Err(SnapshotError::Corrupt(
                "bucket sketch seed/parameters do not match the sampler's".into(),
            ));
        }
    }
    Ok(())
}

impl<P, H, N> FairNnis<P, H, N>
where
    N: Nearness<P>,
{
    /// Shared tail of the inline and sectioned decoders: every cross-field
    /// invariant of the wire format lives here, exactly once, so the two
    /// container forms cannot drift apart in what they accept.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        points: Vec<P>,
        hashers: Vec<H>,
        tables: Vec<RankedTable>,
        ranks: RankPermutation,
        near: N,
        params: LshParams,
        config: FairNnisConfig,
        sketch_seed: u64,
        sketch_params: DistinctSketchParams,
        sketch_values: DistinctValueTable,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        if tables.len() != hashers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "fair-nnis stores {} ranked tables for {} hashers",
                tables.len(),
                hashers.len()
            )));
        }
        if ranks.len() != points.len() {
            return Err(SnapshotError::Corrupt(format!(
                "rank permutation over {} points does not match {} stored points",
                ranks.len(),
                points.len()
            )));
        }
        let merged = DistinctSketch::new(sketch_seed, sketch_params);
        if sketch_values.num_rows() != merged.num_rows() {
            return Err(SnapshotError::Corrupt(format!(
                "distinct value table has {} rows, the sketch parameters derive {}",
                sketch_values.num_rows(),
                merged.num_rows()
            )));
        }
        if sketch_values.universe() != points.len() {
            return Err(SnapshotError::Corrupt(format!(
                "distinct value table covers {} elements for {} points",
                sketch_values.universe(),
                points.len()
            )));
        }
        for table in &tables {
            validate_ranked_table(table, points.len(), &merged)?;
        }
        let screens = build_screen_rows(&near, &points);
        Ok(Self {
            points,
            hashers,
            tables,
            ranks,
            near,
            screens,
            params,
            config,
            sketch_seed,
            sketch_params,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
            merged,
            sketch_values,
        })
    }
}

impl<P, H, N> fairnn_snapshot::Codec for FairNnis<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.points.encode(enc);
        H::encode_bank(&self.hashers, enc);
        self.tables.encode(enc);
        self.ranks.encode(enc);
        self.near.encode(enc);
        self.params.encode(enc);
        self.config.encode(enc);
        enc.write_u64(self.sketch_seed);
        self.sketch_params.encode(enc);
        self.sketch_values.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let points = Vec::<P>::decode(dec)?;
        let hashers = H::decode_bank(dec)?;
        let tables = Vec::<RankedTable>::decode(dec)?;
        let ranks = RankPermutation::decode(dec)?;
        let near = N::decode(dec)?;
        let params = LshParams::decode(dec)?;
        let config = FairNnisConfig::decode(dec)?;
        let sketch_seed = dec.read_u64()?;
        let sketch_params = DistinctSketchParams::decode(dec)?;
        let sketch_values = DistinctValueTable::decode(dec)?;
        Self::assemble(
            points,
            hashers,
            tables,
            ranks,
            near,
            params,
            config,
            sketch_seed,
            sketch_params,
            sketch_values,
        )
    }

    /// Sectioned container image: a head section (points, hasher bank, rank
    /// permutation, predicate and all scalar parameters), one section per
    /// ranked table, and one for the precomputed distinct-value table — so
    /// the per-table encode, checksum and decode-with-validation work (the
    /// dominant cost either way) runs on parallel build workers. Bytes are
    /// identical at every thread count.
    fn encode_sections(&self) -> Vec<Vec<u8>> {
        let mut head = fairnn_snapshot::Encoder::new();
        self.points.encode(&mut head);
        H::encode_bank(&self.hashers, &mut head);
        self.ranks.encode(&mut head);
        self.near.encode(&mut head);
        self.params.encode(&mut head);
        self.config.encode(&mut head);
        head.write_u64(self.sketch_seed);
        self.sketch_params.encode(&mut head);
        head.write_u64(self.tables.len() as u64);
        let mut sections = Vec::with_capacity(self.tables.len() + 2);
        sections.push(head.into_bytes());
        // Capture only the ranked tables (not `self`), so the parallel
        // encode needs no `Sync` bounds on the point/hasher/predicate types.
        let tables = &self.tables;
        sections.extend(fairnn_parallel::map_indexed(tables.len(), |t| {
            let mut enc = fairnn_snapshot::Encoder::new();
            tables[t].encode(&mut enc);
            enc.into_bytes()
        }));
        let mut values = fairnn_snapshot::Encoder::new();
        self.sketch_values.encode(&mut values);
        sections.push(values.into_bytes());
        sections
    }

    fn decode_sections(
        sections: &[fairnn_snapshot::Section<'_>],
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let Some((head, rest)) = sections.split_first() else {
            return Err(SnapshotError::Corrupt(
                "fair-nnis snapshot has no head section".into(),
            ));
        };
        let mut dec = head.decoder();
        let points = Vec::<P>::decode(&mut dec)?;
        let hashers = H::decode_bank(&mut dec)?;
        let ranks = RankPermutation::decode(&mut dec)?;
        let near = N::decode(&mut dec)?;
        let params = LshParams::decode(&mut dec)?;
        let config = FairNnisConfig::decode(&mut dec)?;
        let sketch_seed = dec.read_u64()?;
        let sketch_params = DistinctSketchParams::decode(&mut dec)?;
        // Cross-section count: a plain u64 (`read_len` bounds by this
        // section's remaining bytes, which is not the right limit here).
        let num_tables = usize::try_from(dec.read_u64()?)
            .map_err(|_| SnapshotError::Corrupt("table count does not fit usize".into()))?;
        dec.finish()?;
        let Some((value_section, table_sections)) = rest.split_last() else {
            return Err(SnapshotError::Corrupt(
                "fair-nnis snapshot has no value-table section".into(),
            ));
        };
        if table_sections.len() != num_tables {
            return Err(SnapshotError::Corrupt(format!(
                "fair-nnis head declares {num_tables} tables, directory holds {} table sections",
                table_sections.len()
            )));
        }
        let decoded = fairnn_parallel::map_indexed(table_sections.len(), |t| {
            let mut dec = table_sections[t].decoder();
            let table = RankedTable::decode(&mut dec)?;
            dec.finish()?;
            Ok::<RankedTable, SnapshotError>(table)
        });
        let mut tables = Vec::with_capacity(num_tables);
        for table in decoded {
            tables.push(table?);
        }
        let mut dec = value_section.decoder();
        let sketch_values = DistinctValueTable::decode(&mut dec)?;
        dec.finish()?;
        // All cross-field invariants live in the shared `assemble` tail.
        Self::assemble(
            points,
            hashers,
            tables,
            ranks,
            near,
            params,
            config,
            sketch_seed,
            sketch_params,
            sketch_values,
        )
    }
}

impl<P, H, N> FairNnis<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    /// Writes the whole Section 4 structure — points, hasher bank, ranked
    /// CSR tables with their per-bucket sketches, rank permutation, and the
    /// precomputed [`DistinctValueTable`] — as a versioned, checksummed
    /// snapshot.
    pub fn save<Q: AsRef<std::path::Path>>(
        &self,
        path: Q,
    ) -> Result<(), fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::save(fairnn_snapshot::SnapshotKind::FairNnis, self, path)
    }

    /// Restores a structure written by [`FairNnis::save`]; the restored
    /// sampler consumes query randomness identically to the saved one, so
    /// sample sequences are reproduced bit for bit.
    pub fn load<Q: AsRef<std::path::Path>>(
        path: Q,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::load(fairnn_snapshot::SnapshotKind::FairNnis, path)
    }
}

impl<P, H, N> NeighborSampler<P> for FairNnis<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        let Self {
            points,
            hashers,
            tables,
            near,
            screens,
            config,
            scratch,
            merged,
            sketch_values,
            ..
        } = self;
        let mut stats = QueryStats::default();
        let n = points.len();
        if n == 0 {
            self.stats = stats;
            return None;
        }
        let query_row = screens.as_ref().and_then(|_| near.screen_row(query));
        let screen = match (screens.as_deref(), query_row.as_ref()) {
            (Some(rows), Some(qrow)) => Some((rows, qrow)),
            _ => None,
        };
        // One batched hash pass, then one bucket resolution: the keys and
        // per-table bucket indices feed the sketch merge *and* every
        // rejection round below (the query is never hashed again, and no
        // round repeats a bucket lookup). The distance memo spans the whole
        // query, so each distinct candidate is checked at most once even
        // across hundreds of rounds.
        scratch.compute_keys(hashers, query);
        Self::resolve_buckets(tables, &scratch.keys, &mut scratch.indices);
        scratch.memo.reset(points.len());

        // Step 1: estimate the number of distinct colliding points by
        // merging bucket sketches into the reusable accumulator.
        merged.clear();
        Self::merge_colliding_resolved(
            tables,
            &scratch.indices,
            sketch_values,
            &mut scratch.visited,
            n,
            merged,
        );
        let estimate = merged.estimate_into(&mut scratch.floats);
        let colliding_is_empty = scratch
            .indices
            .iter()
            .zip(tables.iter())
            .all(|(&idx, table)| {
                idx == Self::NO_BUCKET || table.buckets.bucket_at(idx as usize).is_empty()
            });
        if colliding_is_empty {
            self.stats = stats;
            return None;
        }

        // Step 2: initial number of segments k = smallest power of two >= 2 ŝ_q.
        let max_k = (n as u64).next_power_of_two().max(1);
        let mut k: u64 = ((2.0 * estimate).ceil().max(1.0) as u64)
            .next_power_of_two()
            .clamp(1, max_k);
        let lambda = config.lambda.max(1) as f64;
        let sigma = config.sigma.max(1);

        // Step 3: segment sampling with geometric acceptance and k-halving.
        let mut failures = 0usize;
        // Generous overall bound: Σ failures per value of k, log2(max_k)+1
        // values of k, plus the accepted round.
        let max_rounds = sigma * ((max_k as f64).log2() as usize + 2) + 1;
        for _ in 0..max_rounds {
            if k < 1 {
                break;
            }
            stats.rounds += 1;
            let segment_len = (n as u64).div_ceil(k).max(1);
            let h = rng.random_range(0..k);
            let lo = (h * segment_len).min(n as u64) as u32;
            let hi = ((h + 1) * segment_len).min(n as u64) as u32;
            if lo < hi {
                Self::collect_near_in_range(
                    tables,
                    points,
                    near,
                    query,
                    screen,
                    &scratch.indices,
                    lo,
                    hi,
                    &mut scratch.visited,
                    &mut scratch.memo,
                    &mut scratch.candidates,
                    &mut stats,
                );
            } else {
                scratch.candidates.clear();
            }
            let near_points = &scratch.candidates;
            let lambda_qh = near_points.len() as f64;
            if lambda_qh > 0.0 && rng.random::<f64>() < (lambda_qh / lambda).min(1.0) {
                // Step 4: uniform point among the near points of the segment.
                let pick = rng.random_range(0..near_points.len());
                let chosen = near_points[pick];
                self.stats = stats;
                return Some(chosen);
            }
            failures += 1;
            if failures >= sigma {
                failures = 0;
                if k == 1 {
                    k = 0; // exhausted every scale
                } else {
                    k /= 2;
                }
            }
        }

        // Failure event (probability O(1/n²) with the paper's constants):
        // optionally fall back to exhaustive collection, which keeps the
        // output uniform over the colliding near points.
        if config.exhaustive_fallback {
            Self::collect_near_in_range(
                tables,
                points,
                near,
                query,
                screen,
                &scratch.indices,
                0,
                n as u32,
                &mut scratch.visited,
                &mut scratch.memo,
                &mut scratch.candidates,
                &mut stats,
            );
            let all = &scratch.candidates;
            let result = if all.is_empty() {
                None
            } else {
                Some(all[rng.random_range(0..all.len())])
            };
            self.stats = stats;
            return result;
        }
        self.stats = stats;
        None
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "fair-nnis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ExactSampler;
    use crate::predicate::SimilarityAtLeast;
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..10u32 {
            let mut items: Vec<u32> = (0..25).collect();
            items.push(100 + j);
            items.push(200 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..20u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 15).collect(),
            ));
        }
        Dataset::new(sets)
    }

    type Sampler =
        FairNnis<SparseSet, ConcatenatedHasher<fairnn_lsh::MinHasher>, SimilarityAtLeast<Jaccard>>;

    fn build(seed: u64) -> (Dataset<SparseSet>, Sampler) {
        let data = clustered_dataset();
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = FairNnis::build(
            &MinHash,
            params,
            &data,
            SimilarityAtLeast::new(Jaccard, 0.5),
            &mut rng,
        );
        (data, sampler)
    }

    #[test]
    fn config_defaults_scale_with_n() {
        let small = FairNnisConfig::for_dataset_size(10);
        let large = FairNnisConfig::for_dataset_size(1_000_000);
        assert!(large.lambda > small.lambda || small.lambda == 8);
        assert!(large.sigma >= small.sigma);
        assert!(small.exhaustive_fallback);
    }

    #[test]
    fn returns_only_near_points() {
        let (data, mut sampler) = build(1);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let mut rng = StdRng::seed_from_u64(7);
        for qi in 0..10u32 {
            let query = data.point(PointId(qi)).clone();
            let neighborhood = exact.neighborhood(&query);
            for _ in 0..20 {
                let id = sampler
                    .sample(&query, &mut rng)
                    .expect("cluster is non-empty");
                assert!(neighborhood.contains(&id), "returned non-neighbour {id:?}");
            }
        }
        assert_eq!(sampler.name(), "fair-nnis");
        assert!(sampler.last_query_stats().rounds >= 1);
    }

    #[test]
    fn returns_none_for_isolated_query() {
        let (_, mut sampler) = build(2);
        let mut rng = StdRng::seed_from_u64(8);
        let query = SparseSet::from_items(vec![77_000, 77_001]);
        assert!(sampler.sample(&query, &mut rng).is_none());
    }

    #[test]
    fn repeated_queries_are_uniform_for_a_single_build() {
        // The defining property of r-NNIS: one build, repeated queries, the
        // empirical distribution over the 10-member cluster must be uniform.
        let (data, mut sampler) = build(3);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(0)).clone();
        let neighborhood = exact.neighborhood(&query);
        assert_eq!(neighborhood.len(), 10);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 12_000;
        let mut counts = vec![0usize; data.len()];
        for _ in 0..trials {
            let id = sampler.sample(&query, &mut rng).expect("non-empty");
            counts[id.index()] += 1;
        }
        for &id in &neighborhood {
            let rate = counts[id.index()] as f64 / trials as f64;
            assert!(
                (rate - 0.1).abs() < 0.02,
                "member {id:?} sampled at rate {rate}, expected ~0.1"
            );
        }
    }

    #[test]
    fn interleaved_queries_remain_uniform() {
        // Interleave two different queries; each must stay uniform over its
        // own neighbourhood (this is what the rank-swap structure cannot do).
        let (data, mut sampler) = build(4);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let qa = data.point(PointId(0)).clone();
        let qb = data.point(PointId(15)).clone(); // isolated point: neighbourhood = itself
        let na = exact.neighborhood(&qa);
        let nb = exact.neighborhood(&qb);
        assert_eq!(nb.len(), 1);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts_a = vec![0usize; data.len()];
        let trials = 6000;
        for _ in 0..trials {
            let ida = sampler.sample(&qa, &mut rng).unwrap();
            counts_a[ida.index()] += 1;
            let idb = sampler.sample(&qb, &mut rng).unwrap();
            assert_eq!(idb, nb[0]);
        }
        for &id in &na {
            let rate = counts_a[id.index()] as f64 / trials as f64;
            assert!((rate - 0.1).abs() < 0.025, "rate {rate} for {id:?}");
        }
    }

    #[test]
    fn estimate_colliding_is_within_factor_two() {
        let (data, sampler) = build(5);
        let query = data.point(PointId(0)).clone();
        let estimate = sampler.estimate_colliding(&query);
        // The true number of distinct colliding points is at least the
        // 10-member cluster (99% recall) and at most the whole dataset.
        assert!(estimate >= 5.0, "estimate {estimate}");
        assert!(estimate <= 2.0 * data.len() as f64, "estimate {estimate}");
    }

    #[test]
    fn all_colliding_near_points_matches_exact_neighborhood() {
        let (data, mut sampler) = build(6);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(2)).clone();
        let mut got = sampler.all_colliding_near_points(&query);
        got.sort();
        assert_eq!(got, exact.neighborhood(&query));
    }

    #[test]
    fn rank_range_retrieval_is_correct() {
        let entries = [
            (2, PointId(10)),
            (5, PointId(11)),
            (5, PointId(12)),
            (9, PointId(13)),
        ];
        assert_eq!(rank_range(&entries, 0, 3).len(), 1);
        assert_eq!(rank_range(&entries, 2, 6).len(), 3);
        assert_eq!(rank_range(&entries, 6, 9).len(), 0);
        assert_eq!(rank_range(&entries, 0, 100).len(), 4);
        assert_eq!(rank_range(&entries, 9, 9).len(), 0);
    }

    #[test]
    fn structure_accounting() {
        let (data, sampler) = build(7);
        assert_eq!(sampler.num_points(), data.len());
        assert!(sampler.num_tables() >= 1);
        assert!(sampler.config().lambda >= 8);
        // Some buckets (the cluster buckets) are large enough to be sketched
        // only if they exceed the threshold; the count must be well-defined.
        let _ = sampler.sketched_buckets();
        assert_eq!(sampler.params().near, 0.5);
    }
}
