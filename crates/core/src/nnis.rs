//! The Section 4 data structure: r-near neighbor *independent* sampling.
//!
//! The Section 3 structure is fair but deterministic per build; Section 4
//! makes repeated and interleaved queries independent (Definition 2,
//! Theorem 2). Construction: the `K × L` LSH index, a random rank
//! permutation, and for every bucket (i) a rank-sorted array supporting
//! rank-range queries (the paper uses a balanced tree; a sorted array plus
//! binary search gives the same `O(log n + output)` bound for a static
//! bucket) and (ii) a mergeable count-distinct sketch.
//!
//! Query `q`:
//!
//! 1. merge the sketches of the `L` colliding buckets to get a
//!    `1/2`-approximation `ŝ_q` of the number of distinct colliding points;
//! 2. set `k` to the smallest power of two ≥ `2 ŝ_q`, split the rank space
//!    into `k` equal segments, set `λ = Θ(log n)` and `Σ = Θ(log² n)`;
//! 3. repeatedly pick a uniform segment `h`, pull the near points of that
//!    rank range out of the colliding buckets (deduplicating), and accept
//!    the segment with probability `λ_{q,h} / λ`, where `λ_{q,h}` is the
//!    number of near points found; after `Σ` consecutive failures halve `k`;
//! 4. on acceptance return a uniform point among the near points of the
//!    segment.
//!
//! Every point of `B_S(q, r)` is returned with probability `1/(kλ)` per
//! round, independent of everything else, which yields both uniformity and
//! independence. The expected query time is
//! `O((n^ρ + b_S(q, cr)/(b_S(q, r)+1)) · polylog n)`.

use crate::predicate::Nearness;
use crate::rank::RankPermutation;
use crate::sampler::{NeighborSampler, QueryStats};
use fairnn_lsh::{ConcatenatedHasher, LshFamily, LshHasher, LshIndex, LshParams};
use fairnn_sketch::{CardinalityEstimator, DistinctSketch, DistinctSketchParams};
use fairnn_space::{Dataset, PointId};
use rand::Rng;
use std::collections::HashMap;

/// Tuning knobs of the Section 4 query algorithm. The defaults follow the
/// paper's asymptotic choices with explicit constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairNnisConfig {
    /// Per-segment cap `λ = Θ(log n)`: a segment is accepted with
    /// probability `λ_{q,h}/λ`.
    pub lambda: usize,
    /// Number of consecutive failed segments `Σ = Θ(log² n)` before `k` is
    /// halved.
    pub sigma: usize,
    /// Buckets with at least this many points pre-compute their
    /// count-distinct sketch; smaller buckets are sketched on the fly at
    /// query time (the space-saving rule of Section 4).
    pub sketch_threshold: usize,
    /// When the rejection loop exhausts all values of `k` without success
    /// (a low-probability failure event), fall back to collecting all
    /// colliding near points and sampling uniformly among them instead of
    /// returning `⊥`. The fallback preserves uniformity and independence
    /// (it uses fresh randomness and the same candidate set) and makes the
    /// structure robust at small `n`, where the asymptotic constants are
    /// loose.
    pub exhaustive_fallback: bool,
}

impl FairNnisConfig {
    /// Default configuration for a dataset of `n` points.
    pub fn for_dataset_size(n: usize) -> Self {
        let log_n = (n.max(2) as f64).log2().ceil() as usize;
        Self {
            lambda: (2 * log_n).max(8),
            sigma: (log_n * log_n).max(16),
            sketch_threshold: (4 * log_n).max(16),
            exhaustive_fallback: true,
        }
    }
}

/// One LSH bucket: rank-sorted entries plus (for large buckets) a
/// pre-computed count-distinct sketch.
#[derive(Debug, Clone)]
struct RankedBucket {
    /// `(rank, id)` pairs sorted by rank; supports rank-range retrieval via
    /// binary search.
    entries: Vec<(u32, PointId)>,
    /// Pre-computed sketch of the point ids (only for buckets with at least
    /// `sketch_threshold` entries).
    sketch: Option<DistinctSketch>,
}

impl RankedBucket {
    /// All entries with rank in `[lo, hi)`.
    fn rank_range(&self, lo: u32, hi: u32) -> &[(u32, PointId)] {
        let start = self.entries.partition_point(|(r, _)| *r < lo);
        let end = self.entries.partition_point(|(r, _)| *r < hi);
        &self.entries[start..end]
    }
}

/// The Section 4 fair independent sampler.
#[derive(Debug, Clone)]
pub struct FairNnis<P, H, N> {
    points: Vec<P>,
    hashers: Vec<H>,
    buckets: Vec<HashMap<u64, RankedBucket>>,
    ranks: RankPermutation,
    near: N,
    params: LshParams,
    config: FairNnisConfig,
    sketch_seed: u64,
    sketch_params: DistinctSketchParams,
    stats: QueryStats,
}

impl<P: Clone, BH, N> FairNnis<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P>,
{
    /// Builds the data structure with default configuration.
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let config = FairNnisConfig::for_dataset_size(dataset.len());
        Self::build_with_config(family, params, dataset, near, config, rng)
    }

    /// Builds the data structure with an explicit configuration.
    pub fn build_with_config<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        config: FairNnisConfig,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let index = LshIndex::build(family, params, dataset.points(), rng);
        let ranks = RankPermutation::random(dataset.len(), rng);
        let sketch_seed: u64 = rng.random();
        Self::from_index(index, dataset, ranks, near, config, sketch_seed)
    }
}

impl<P: Clone, H, N> FairNnis<P, H, N>
where
    H: LshHasher<P>,
{
    /// Builds the structure from an existing index, permutation and sketch
    /// seed (full control for tests).
    pub fn from_index(
        index: LshIndex<H>,
        dataset: &Dataset<P>,
        ranks: RankPermutation,
        near: N,
        config: FairNnisConfig,
        sketch_seed: u64,
    ) -> Self {
        assert_eq!(
            ranks.len(),
            dataset.len(),
            "rank permutation size must match the dataset"
        );
        let params = index.params();
        let sketch_params = DistinctSketchParams::paper_defaults(dataset.len());
        let (hashers, tables) = index.into_parts();
        let mut buckets = Vec::with_capacity(tables.len());
        for table in &tables {
            let mut map: HashMap<u64, RankedBucket> = HashMap::with_capacity(table.num_buckets());
            for (key, ids) in table.buckets() {
                let mut entries: Vec<(u32, PointId)> =
                    ids.iter().map(|&id| (ranks.rank(id), id)).collect();
                entries.sort_unstable();
                let sketch = if entries.len() >= config.sketch_threshold {
                    let mut s = DistinctSketch::new(sketch_seed, sketch_params);
                    for (_, id) in &entries {
                        s.insert(id.0 as u64);
                    }
                    Some(s)
                } else {
                    None
                };
                map.insert(key, RankedBucket { entries, sketch });
            }
            buckets.push(map);
        }
        Self {
            points: dataset.points().to_vec(),
            hashers,
            buckets,
            ranks,
            near,
            params,
            config,
            sketch_seed,
            sketch_params,
            stats: QueryStats::default(),
        }
    }
}

impl<P, H, N> FairNnis<P, H, N> {
    /// Number of indexed points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of LSH tables `L`.
    pub fn num_tables(&self) -> usize {
        self.buckets.len()
    }

    /// The LSH parameters.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The query-algorithm configuration.
    pub fn config(&self) -> FairNnisConfig {
        self.config
    }

    /// The rank permutation the segment structure is defined over.
    pub fn ranks(&self) -> &RankPermutation {
        &self.ranks
    }

    /// Number of buckets that carry a pre-computed sketch (space
    /// accounting / ablation).
    pub fn sketched_buckets(&self) -> usize {
        self.buckets
            .iter()
            .map(|m| m.values().filter(|b| b.sketch.is_some()).count())
            .sum()
    }
}

impl<P, H, N> FairNnis<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Estimates the number of distinct points colliding with the query by
    /// merging the per-bucket count-distinct sketches (step 1 of the query
    /// algorithm). Exposed for tests and the experiment harness.
    pub fn estimate_colliding(&self, query: &P) -> f64 {
        let mut merged = DistinctSketch::new(self.sketch_seed, self.sketch_params);
        for (hasher, table) in self.hashers.iter().zip(self.buckets.iter()) {
            let key = hasher.hash(query);
            let Some(bucket) = table.get(&key) else {
                continue;
            };
            match &bucket.sketch {
                Some(sketch) => merged.merge(sketch),
                None => {
                    for (_, id) in &bucket.entries {
                        merged.insert(id.0 as u64);
                    }
                }
            }
        }
        merged.estimate()
    }

    /// Collects the distinct near points of `query` whose rank lies in
    /// `[lo, hi)` (step 3.b of the query algorithm).
    fn near_points_in_rank_range(
        &self,
        keys: &[u64],
        query: &P,
        lo: u32,
        hi: u32,
        stats: &mut QueryStats,
    ) -> Vec<PointId> {
        let mut found: Vec<PointId> = Vec::new();
        for (table, &key) in self.buckets.iter().zip(keys.iter()) {
            stats.buckets_inspected += 1;
            let Some(bucket) = table.get(&key) else {
                continue;
            };
            for &(_, id) in bucket.rank_range(lo, hi) {
                stats.entries_scanned += 1;
                if found.contains(&id) {
                    continue; // duplicate across tables
                }
                stats.distance_computations += 1;
                if self.near.is_near(query, &self.points[id.index()]) {
                    found.push(id);
                }
            }
        }
        found
    }

    /// Collects all distinct colliding near points (used by the exhaustive
    /// fallback and by tests).
    pub fn all_colliding_near_points(&mut self, query: &P) -> Vec<PointId> {
        let keys: Vec<u64> = self.hashers.iter().map(|h| h.hash(query)).collect();
        let mut stats = QueryStats::default();
        let n = self.points.len() as u32;
        let result = self.near_points_in_rank_range(&keys, query, 0, n, &mut stats);
        self.stats = stats;
        result
    }
}

impl<P, H, N> NeighborSampler<P> for FairNnis<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        let mut stats = QueryStats::default();
        let n = self.points.len();
        if n == 0 {
            self.stats = stats;
            return None;
        }
        let keys: Vec<u64> = self.hashers.iter().map(|h| h.hash(query)).collect();

        // Step 1: estimate the number of distinct colliding points.
        let estimate = self.estimate_colliding(query);
        let colliding_is_empty = keys
            .iter()
            .zip(self.buckets.iter())
            .all(|(key, table)| table.get(key).is_none_or(|b| b.entries.is_empty()));
        if colliding_is_empty {
            self.stats = stats;
            return None;
        }

        // Step 2: initial number of segments k = smallest power of two >= 2 ŝ_q.
        let max_k = (n as u64).next_power_of_two().max(1);
        let mut k: u64 = ((2.0 * estimate).ceil().max(1.0) as u64)
            .next_power_of_two()
            .clamp(1, max_k);
        let lambda = self.config.lambda.max(1) as f64;
        let sigma = self.config.sigma.max(1);

        // Step 3: segment sampling with geometric acceptance and k-halving.
        let mut failures = 0usize;
        // Generous overall bound: Σ failures per value of k, log2(max_k)+1
        // values of k, plus the accepted round.
        let max_rounds = sigma * ((max_k as f64).log2() as usize + 2) + 1;
        for _ in 0..max_rounds {
            if k < 1 {
                break;
            }
            stats.rounds += 1;
            let segment_len = (n as u64).div_ceil(k).max(1);
            let h = rng.random_range(0..k);
            let lo = (h * segment_len).min(n as u64) as u32;
            let hi = ((h + 1) * segment_len).min(n as u64) as u32;
            let near_points = if lo < hi {
                self.near_points_in_rank_range(&keys, query, lo, hi, &mut stats)
            } else {
                Vec::new()
            };
            let lambda_qh = near_points.len() as f64;
            if lambda_qh > 0.0 && rng.random::<f64>() < (lambda_qh / lambda).min(1.0) {
                // Step 4: uniform point among the near points of the segment.
                let pick = rng.random_range(0..near_points.len());
                self.stats = stats;
                return Some(near_points[pick]);
            }
            failures += 1;
            if failures >= sigma {
                failures = 0;
                if k == 1 {
                    k = 0; // exhausted every scale
                } else {
                    k /= 2;
                }
            }
        }

        // Failure event (probability O(1/n²) with the paper's constants):
        // optionally fall back to exhaustive collection, which keeps the
        // output uniform over the colliding near points.
        if self.config.exhaustive_fallback {
            let all = self.near_points_in_rank_range(&keys, query, 0, n as u32, &mut stats);
            self.stats = stats;
            if all.is_empty() {
                return None;
            }
            let pick = rng.random_range(0..all.len());
            return Some(all[pick]);
        }
        self.stats = stats;
        None
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "fair-nnis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ExactSampler;
    use crate::predicate::SimilarityAtLeast;
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..10u32 {
            let mut items: Vec<u32> = (0..25).collect();
            items.push(100 + j);
            items.push(200 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..20u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 15).collect(),
            ));
        }
        Dataset::new(sets)
    }

    type Sampler =
        FairNnis<SparseSet, ConcatenatedHasher<fairnn_lsh::MinHasher>, SimilarityAtLeast<Jaccard>>;

    fn build(seed: u64) -> (Dataset<SparseSet>, Sampler) {
        let data = clustered_dataset();
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = FairNnis::build(
            &MinHash,
            params,
            &data,
            SimilarityAtLeast::new(Jaccard, 0.5),
            &mut rng,
        );
        (data, sampler)
    }

    #[test]
    fn config_defaults_scale_with_n() {
        let small = FairNnisConfig::for_dataset_size(10);
        let large = FairNnisConfig::for_dataset_size(1_000_000);
        assert!(large.lambda > small.lambda || small.lambda == 8);
        assert!(large.sigma >= small.sigma);
        assert!(small.exhaustive_fallback);
    }

    #[test]
    fn returns_only_near_points() {
        let (data, mut sampler) = build(1);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let mut rng = StdRng::seed_from_u64(7);
        for qi in 0..10u32 {
            let query = data.point(PointId(qi)).clone();
            let neighborhood = exact.neighborhood(&query);
            for _ in 0..20 {
                let id = sampler
                    .sample(&query, &mut rng)
                    .expect("cluster is non-empty");
                assert!(neighborhood.contains(&id), "returned non-neighbour {id:?}");
            }
        }
        assert_eq!(sampler.name(), "fair-nnis");
        assert!(sampler.last_query_stats().rounds >= 1);
    }

    #[test]
    fn returns_none_for_isolated_query() {
        let (_, mut sampler) = build(2);
        let mut rng = StdRng::seed_from_u64(8);
        let query = SparseSet::from_items(vec![77_000, 77_001]);
        assert!(sampler.sample(&query, &mut rng).is_none());
    }

    #[test]
    fn repeated_queries_are_uniform_for_a_single_build() {
        // The defining property of r-NNIS: one build, repeated queries, the
        // empirical distribution over the 10-member cluster must be uniform.
        let (data, mut sampler) = build(3);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(0)).clone();
        let neighborhood = exact.neighborhood(&query);
        assert_eq!(neighborhood.len(), 10);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 12_000;
        let mut counts = vec![0usize; data.len()];
        for _ in 0..trials {
            let id = sampler.sample(&query, &mut rng).expect("non-empty");
            counts[id.index()] += 1;
        }
        for &id in &neighborhood {
            let rate = counts[id.index()] as f64 / trials as f64;
            assert!(
                (rate - 0.1).abs() < 0.02,
                "member {id:?} sampled at rate {rate}, expected ~0.1"
            );
        }
    }

    #[test]
    fn interleaved_queries_remain_uniform() {
        // Interleave two different queries; each must stay uniform over its
        // own neighbourhood (this is what the rank-swap structure cannot do).
        let (data, mut sampler) = build(4);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let qa = data.point(PointId(0)).clone();
        let qb = data.point(PointId(15)).clone(); // isolated point: neighbourhood = itself
        let na = exact.neighborhood(&qa);
        let nb = exact.neighborhood(&qb);
        assert_eq!(nb.len(), 1);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts_a = vec![0usize; data.len()];
        let trials = 6000;
        for _ in 0..trials {
            let ida = sampler.sample(&qa, &mut rng).unwrap();
            counts_a[ida.index()] += 1;
            let idb = sampler.sample(&qb, &mut rng).unwrap();
            assert_eq!(idb, nb[0]);
        }
        for &id in &na {
            let rate = counts_a[id.index()] as f64 / trials as f64;
            assert!((rate - 0.1).abs() < 0.025, "rate {rate} for {id:?}");
        }
    }

    #[test]
    fn estimate_colliding_is_within_factor_two() {
        let (data, sampler) = build(5);
        let query = data.point(PointId(0)).clone();
        let estimate = sampler.estimate_colliding(&query);
        // The true number of distinct colliding points is at least the
        // 10-member cluster (99% recall) and at most the whole dataset.
        assert!(estimate >= 5.0, "estimate {estimate}");
        assert!(estimate <= 2.0 * data.len() as f64, "estimate {estimate}");
    }

    #[test]
    fn all_colliding_near_points_matches_exact_neighborhood() {
        let (data, mut sampler) = build(6);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(2)).clone();
        let mut got = sampler.all_colliding_near_points(&query);
        got.sort();
        assert_eq!(got, exact.neighborhood(&query));
    }

    #[test]
    fn rank_range_retrieval_is_correct() {
        let bucket = RankedBucket {
            entries: vec![
                (2, PointId(10)),
                (5, PointId(11)),
                (5, PointId(12)),
                (9, PointId(13)),
            ],
            sketch: None,
        };
        assert_eq!(bucket.rank_range(0, 3).len(), 1);
        assert_eq!(bucket.rank_range(2, 6).len(), 3);
        assert_eq!(bucket.rank_range(6, 9).len(), 0);
        assert_eq!(bucket.rank_range(0, 100).len(), 4);
        assert_eq!(bucket.rank_range(9, 9).len(), 0);
    }

    #[test]
    fn structure_accounting() {
        let (data, sampler) = build(7);
        assert_eq!(sampler.num_points(), data.len());
        assert!(sampler.num_tables() >= 1);
        assert!(sampler.config().lambda >= 8);
        // Some buckets (the cluster buckets) are large enough to be sketched
        // only if they exceed the threshold; the count must be well-defined.
        let _ = sampler.sketched_buckets();
        assert_eq!(sampler.params().near, 0.5);
    }
}
