//! Fair near-neighbor sampling data structures.
//!
//! This crate implements the contributions of *Aumüller, Pagh, Silvestri —
//! "Fair Near Neighbor Search: Independent Range Sampling in High
//! Dimensions" (PODS 2020)*:
//!
//! | Paper | Type | Problem solved |
//! |---|---|---|
//! | Section 3, Theorem 1 | [`FairNns`] | r-near neighbor sampling (r-NNS): uniform sample from `B_S(q, r)` |
//! | Section 3.1 / Appendix A, Theorem 5 | [`RankSwapSampler`] | r-NNIS restricted to a single repeated query, via rank re-randomisation |
//! | Section 4, Theorem 2 | [`FairNnis`] | r-near neighbor *independent* sampling (r-NNIS) |
//! | Section 5 / Appendix B, Theorems 3–4 | [`FilterNnis`] | α-NNIS under inner product in nearly-linear space |
//! | Section 2.2 / Section 6 baselines | [`StandardLsh`], [`NaiveFairLsh`], [`ExactSampler`], [`ApproximateNeighborhoodSampler`] | the comparison points of the experimental evaluation |
//!
//! All samplers implement the common [`NeighborSampler`] trait, so the
//! examples, experiments and tests can swap them freely. Every structure is
//! deterministic given its build seed; query-time randomness comes from the
//! caller-provided RNG, which is what makes the *independent* sampling
//! guarantees meaningful.
//!
//! # Quick example
//!
//! ```
//! use fairnn_core::{FairNns, NeighborSampler, SimilarityAtLeast};
//! use fairnn_lsh::{MinHash, ParamsBuilder};
//! use fairnn_space::{Dataset, Jaccard, SparseSet};
//! use rand::SeedableRng;
//!
//! // Toy dataset: four users with overlapping taste.
//! let data: Dataset<SparseSet> = vec![
//!     SparseSet::from_items(vec![1, 2, 3, 4]),
//!     SparseSet::from_items(vec![1, 2, 3, 5]),
//!     SparseSet::from_items(vec![1, 2, 3, 6]),
//!     SparseSet::from_items(vec![100, 200, 300]),
//! ].into_iter().collect();
//!
//! let params = ParamsBuilder::new(data.len(), 0.5, 0.1).empirical(&MinHash);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut sampler = FairNns::build(
//!     &MinHash,
//!     params,
//!     &data,
//!     SimilarityAtLeast::new(Jaccard, 0.5),
//!     &mut rng,
//! );
//!
//! let query = SparseSet::from_items(vec![1, 2, 3, 4]);
//! let sampled = sampler.sample(&query, &mut rng);
//! assert!(sampled.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximate;
pub mod baseline;
pub mod filter;
pub mod nnis;
pub mod nns;
pub mod predicate;
pub mod rank;
pub mod rank_swap;
pub mod sampler;

pub use approximate::ApproximateNeighborhoodSampler;
pub use baseline::{ExactSampler, NaiveFairLsh, StandardLsh};
pub use filter::{FilterConfig, FilterNnis, TensorFilter};
pub use nnis::{FairNnis, FairNnisConfig};
pub use nns::FairNns;
pub use predicate::{DistanceAtMost, Nearness, SimilarityAtLeast};
pub use rank::RankPermutation;
pub use rank_swap::RankSwapSampler;
pub use sampler::{FairSampler, NeighborSampler, QueryStats};
