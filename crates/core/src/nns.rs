//! The Section 3 data structure: r-near neighbor sampling (r-NNS).
//!
//! Construction (Theorem 1): build the standard `K × L` LSH index and assign
//! every point a rank from a uniformly random permutation; store each bucket
//! sorted by increasing rank. A query scans each of the `L` colliding
//! buckets *until the first near point* (which, by the sort order, is the
//! minimum-rank near point of that bucket) and returns the minimum-rank near
//! point over all buckets.
//!
//! Because the permutation is independent of the LSH randomness, each member
//! of `B_S(q, r)` is equally likely to hold the minimum rank, so the output
//! is uniform over the neighbourhood — the r-NNS guarantee. The query time
//! is `O((n^ρ + b_S(q, cr)/(b_S(q, r)+1)) log n)` in expectation: the random
//! permutation breaks long runs of (c, r)-near points, which is also why
//! this structure is *faster* than the standard LSH query on worst-case
//! inputs (end of Section 3).
//!
//! The same structure supports sampling `k` points **without replacement**
//! (Section 3.1): return the `k` near points of smallest rank.

use crate::predicate::{build_screen_rows, Nearness};
use crate::rank::RankPermutation;
use crate::sampler::{NeighborSampler, QueryStats};
use fairnn_lsh::{
    ConcatenatedHasher, FrozenTable, LshFamily, LshHasher, LshIndex, LshParams, QueryScratch,
};
use fairnn_space::{Dataset, PointId, ScreenRow};
use rand::Rng;

/// The Section 3 fair r-NNS data structure.
///
/// Buckets are stored in the frozen CSR layout ([`FrozenTable`]): per table
/// one sorted key array and one contiguous array of `(rank, id)` entries
/// sorted by rank, so the first-near scan reads ranks inline instead of
/// chasing the permutation array. The structure is static after
/// construction (only the Appendix A rank swap rearranges bucket *contents*
/// in place), so it never needs the staging `HashMap` form, and each query
/// reuses an owned [`QueryScratch`] — including a per-query distance memo
/// that caps predicate evaluations at one per distinct candidate — so the
/// steady-state query performs no heap allocation.
#[derive(Debug, Clone)]
pub struct FairNns<P, H, N> {
    points: Vec<P>,
    hashers: Vec<H>,
    /// For every table, bucket key → `(rank, id)` pairs sorted by rank.
    buckets: Vec<FrozenTable<(u32, PointId)>>,
    ranks: RankPermutation,
    near: N,
    /// Admissible per-point pre-screen rows of `near` (derived state,
    /// rebuilt on load; `None` when the predicate has no screen).
    screens: Option<Vec<ScreenRow>>,
    params: LshParams,
    stats: QueryStats,
    scratch: QueryScratch,
}

impl<P: Clone + Sync, BH, N> FairNns<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
    N: Nearness<P>,
{
    /// Builds the data structure: LSH index plus random rank permutation.
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let index = LshIndex::build(family, params, dataset.points(), rng);
        let ranks = RankPermutation::random(dataset.len(), rng);
        Self::from_index(index, dataset, ranks, near)
    }
}

impl<P: Clone, H, N> FairNns<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Builds the structure from an existing LSH index and rank permutation
    /// (used by tests that need to control the randomness and by the
    /// Appendix A rank-swap sampler, which shares the layout).
    pub fn from_index(
        index: LshIndex<H>,
        dataset: &Dataset<P>,
        ranks: RankPermutation,
        near: N,
    ) -> Self {
        assert_eq!(
            ranks.len(),
            dataset.len(),
            "rank permutation size must match the dataset"
        );
        let params = index.params();
        let (hashers, tables) = index.into_parts();
        // Per-table rank sort + CSR freeze are disjoint work items: they run
        // on parallel build workers, in table order, so the result is
        // bit-identical to the serial construction.
        let buckets = fairnn_parallel::map_indexed(tables.len(), |t| {
            FrozenTable::from_buckets(tables[t].buckets().map(|(key, ids)| {
                let mut sorted: Vec<(u32, PointId)> =
                    ids.iter().map(|&id| (ranks.rank(id), id)).collect();
                sorted.sort_unstable();
                (key, sorted)
            }))
        });
        let points = dataset.points().to_vec();
        let screens = build_screen_rows(&near, &points);
        Self {
            points,
            hashers,
            buckets,
            ranks,
            near,
            screens,
            params,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
        }
    }
}

impl<P, H, N> FairNns<P, H, N> {
    /// Number of indexed points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of LSH tables `L`.
    pub fn num_tables(&self) -> usize {
        self.buckets.len()
    }

    /// The LSH parameters the structure was built with.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The rank permutation (exposed for the rank-swap sampler and tests).
    pub fn ranks(&self) -> &RankPermutation {
        &self.ranks
    }

    /// Total number of bucket entries over all tables (the `Θ(nL)` space
    /// term of Theorem 1).
    pub fn total_entries(&self) -> usize {
        self.buckets.iter().map(FrozenTable::num_entries).sum()
    }
}

impl<P, H, N> FairNns<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// The minimum-rank near neighbour of `query`, together with its rank.
    ///
    /// This is the deterministic core of the Theorem 1 query; `sample`
    /// simply forwards to it (the "randomness" of the output lives entirely
    /// in the rank permutation drawn at construction time).
    pub fn min_rank_near_neighbor(&mut self, query: &P) -> Option<(u32, PointId)> {
        let Self {
            points,
            hashers,
            buckets,
            near,
            screens,
            scratch,
            ..
        } = self;
        let mut stats = QueryStats::default();
        // All K × L row hashes in one batched pass, into the reused buffer.
        scratch.compute_keys(hashers, query);
        scratch.memo.reset(points.len());
        let memo = &mut scratch.memo;
        // Warm the slot index of every table while the first probe is still
        // in flight, and compute the query's screen row once.
        for (table, &key) in buckets.iter().zip(scratch.keys.iter()) {
            table.prefetch(key);
        }
        let query_row = screens.as_ref().and_then(|_| near.screen_row(query));
        let mut best: Option<(u32, PointId)> = None;
        for (table, &key) in buckets.iter().zip(scratch.keys.iter()) {
            stats.buckets_inspected += 1;
            let bucket = table.bucket(key);
            for (pos, &(rank, id)) in bucket.iter().enumerate() {
                stats.entries_scanned += 1;
                // Skip points that cannot improve the current minimum: the
                // bucket is rank-sorted, so once we pass the current best we
                // can stop scanning this bucket.
                if let Some((best_rank, _)) = best {
                    if rank >= best_rank {
                        break;
                    }
                }
                if let Some(&(_, ahead)) = bucket.get(pos + 1) {
                    fairnn_snapshot::prefetch_read(points, ahead.index());
                }
                let is_near = memo.get_or_insert_with(id.index(), || {
                    stats.distance_computations += 1;
                    if let (Some(rows), Some(qrow)) = (screens.as_ref(), query_row.as_ref()) {
                        if !near.may_be_near(qrow, &rows[id.index()]) {
                            return false;
                        }
                    }
                    near.is_near(query, &points[id.index()])
                });
                if is_near {
                    best = Some((rank, id));
                    break; // first near point in this bucket has its minimum rank
                }
            }
        }
        self.stats = stats;
        best
    }

    /// Returns up to `k` points sampled **without replacement** from the
    /// neighbourhood of `query`: the `k` near points of smallest rank
    /// (Section 3.1). Returns fewer than `k` points when the neighbourhood
    /// (restricted to colliding points) is smaller than `k`.
    pub fn sample_without_replacement(&mut self, query: &P, k: usize) -> Vec<PointId> {
        let Self {
            points,
            hashers,
            buckets,
            near,
            screens,
            scratch,
            ..
        } = self;
        let mut stats = QueryStats::default();
        scratch.compute_keys(hashers, query);
        scratch.memo.reset(points.len());
        let memo = &mut scratch.memo;
        for (table, &key) in buckets.iter().zip(scratch.keys.iter()) {
            table.prefetch(key);
        }
        let query_row = screens.as_ref().and_then(|_| near.screen_row(query));
        // Collect the k smallest-rank near points of each bucket, then merge.
        let mut candidates: Vec<(u32, PointId)> = Vec::new();
        for (table, &key) in buckets.iter().zip(scratch.keys.iter()) {
            stats.buckets_inspected += 1;
            let mut found = 0usize;
            let bucket = table.bucket(key);
            for (pos, &(rank, id)) in bucket.iter().enumerate() {
                stats.entries_scanned += 1;
                if let Some(&(_, ahead)) = bucket.get(pos + 1) {
                    fairnn_snapshot::prefetch_read(points, ahead.index());
                }
                let is_near = memo.get_or_insert_with(id.index(), || {
                    stats.distance_computations += 1;
                    if let (Some(rows), Some(qrow)) = (screens.as_ref(), query_row.as_ref()) {
                        if !near.may_be_near(qrow, &rows[id.index()]) {
                            return false;
                        }
                    }
                    near.is_near(query, &points[id.index()])
                });
                if is_near {
                    candidates.push((rank, id));
                    found += 1;
                    if found >= k {
                        break;
                    }
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.truncate(k);
        self.stats = stats;
        candidates.into_iter().map(|(_, id)| id).collect()
    }
}

impl<P, H, N> FairNns<P, H, N>
where
    H: LshHasher<P>,
{
    /// Appendix A rank re-randomisation: swap the rank of `x` with the rank
    /// of a uniformly random point holding a rank in `[rank(x), n)` and
    /// restore the rank-sorted order of every bucket containing either point.
    /// Returns the point `x` was swapped with.
    pub(crate) fn reshuffle_rank_of<R: Rng + ?Sized>(
        &mut self,
        x: PointId,
        rng: &mut R,
    ) -> PointId {
        let Self {
            points,
            hashers,
            buckets,
            ranks,
            scratch,
            ..
        } = self;
        let y = ranks.reshuffle_upwards(x, rng);
        if y == x {
            return y;
        }
        // Restore stored ranks and rank order in every bucket containing x
        // or y. The frozen layout supports this in place: a bucket is a
        // contiguous slice whose *contents* may be rearranged freely.
        for p in [x, y] {
            scratch.compute_keys(hashers, &points[p.index()]);
            for (table, &key) in buckets.iter_mut().zip(scratch.keys.iter()) {
                if let Some(bucket) = table.bucket_mut(key) {
                    for entry in bucket.iter_mut() {
                        entry.0 = ranks.rank(entry.1);
                    }
                    bucket.sort_unstable();
                }
            }
        }
        y
    }
}

impl<P, H, N> fairnn_snapshot::Codec for FairNns<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.points.encode(enc);
        H::encode_bank(&self.hashers, enc);
        self.buckets.encode(enc);
        self.ranks.encode(enc);
        self.near.encode(enc);
        self.params.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let points = Vec::<P>::decode(dec)?;
        let hashers = H::decode_bank(dec)?;
        let buckets = Vec::<FrozenTable<(u32, PointId)>>::decode(dec)?;
        let ranks = RankPermutation::decode(dec)?;
        let near = N::decode(dec)?;
        let params = LshParams::decode(dec)?;
        if buckets.len() != hashers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "fair-nns stores {} bucket tables for {} hashers",
                buckets.len(),
                hashers.len()
            )));
        }
        if ranks.len() != points.len() {
            return Err(SnapshotError::Corrupt(format!(
                "rank permutation over {} points does not match {} stored points",
                ranks.len(),
                points.len()
            )));
        }
        for table in &buckets {
            for (_, bucket) in table.buckets() {
                for &(rank, id) in bucket {
                    if id.index() >= points.len() || rank as usize >= points.len() {
                        return Err(SnapshotError::Corrupt(format!(
                            "bucket entry (rank {rank}, {id}) out of range for {} points",
                            points.len()
                        )));
                    }
                }
                // The min-rank scan early-exits on the first near point;
                // unsorted entries would silently bias sampling rather than
                // fail, so the sort invariant is part of the format.
                if !bucket.windows(2).all(|w| w[0] < w[1]) {
                    return Err(SnapshotError::Corrupt(
                        "bucket entries are not strictly rank-sorted".into(),
                    ));
                }
            }
        }
        let screens = build_screen_rows(&near, &points);
        Ok(Self {
            points,
            hashers,
            buckets,
            ranks,
            near,
            screens,
            params,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
        })
    }
}

impl<P, H, N> FairNns<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    /// Writes the whole structure — points, hasher bank, rank-sorted frozen
    /// buckets, rank permutation — as a versioned, checksummed snapshot.
    pub fn save<Q: AsRef<std::path::Path>>(
        &self,
        path: Q,
    ) -> Result<(), fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::save(fairnn_snapshot::SnapshotKind::FairNns, self, path)
    }

    /// Restores a structure written by [`FairNns::save`]; the restored
    /// sampler answers every query exactly like the saved one.
    pub fn load<Q: AsRef<std::path::Path>>(
        path: Q,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::load(fairnn_snapshot::SnapshotKind::FairNns, path)
    }
}

impl<P, H, N> NeighborSampler<P> for FairNns<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Returns the minimum-rank near neighbour. Note that for a fixed build
    /// this is deterministic — uniformity holds over the randomness of the
    /// construction, which is exactly the r-NNS guarantee (Definition 1).
    /// Use [`crate::RankSwapSampler`] or [`crate::FairNnis`] when repeated
    /// queries must produce independent samples.
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, _rng: &mut R) -> Option<PointId> {
        self.min_rank_near_neighbor(query).map(|(_, id)| id)
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "fair-nns"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ExactSampler;
    use crate::predicate::SimilarityAtLeast;
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..8u32 {
            let mut items: Vec<u32> = (0..24).collect();
            items.push(100 + j);
            items.push(200 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..8u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 15).collect(),
            ));
        }
        Dataset::new(sets)
    }

    fn build(
        seed: u64,
    ) -> (
        Dataset<SparseSet>,
        FairNns<SparseSet, ConcatenatedHasher<fairnn_lsh::MinHasher>, SimilarityAtLeast<Jaccard>>,
    ) {
        let data = clustered_dataset();
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = FairNns::build(
            &MinHash,
            params,
            &data,
            SimilarityAtLeast::new(Jaccard, 0.5),
            &mut rng,
        );
        (data, sampler)
    }

    #[test]
    fn returns_a_near_point_for_clustered_queries() {
        let (data, mut sampler) = build(1);
        let mut rng = StdRng::seed_from_u64(10);
        for qi in 0..8u32 {
            let query = data.point(PointId(qi)).clone();
            let id = sampler
                .sample(&query, &mut rng)
                .expect("cluster member expected");
            assert!(id.index() < 8, "returned far point {id:?} for query {qi}");
        }
        assert!(sampler.last_query_stats().distance_computations > 0);
        assert_eq!(sampler.name(), "fair-nns");
    }

    #[test]
    fn returns_none_for_isolated_query() {
        let (_, mut sampler) = build(2);
        let mut rng = StdRng::seed_from_u64(11);
        let query = SparseSet::from_items(vec![70_000, 70_001, 70_002]);
        assert!(sampler.sample(&query, &mut rng).is_none());
    }

    #[test]
    fn output_matches_minimum_rank_of_exact_neighborhood() {
        // With 99%-recall parameters the structure finds every neighbour, so
        // the returned point must be exactly the min-rank member of the true
        // neighbourhood.
        let (data, mut sampler) = build(3);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        for qi in 0..8u32 {
            let query = data.point(PointId(qi)).clone();
            let expected = exact
                .neighborhood(&query)
                .into_iter()
                .min_by_key(|id| sampler.ranks().rank(*id))
                .unwrap();
            let (_, got) = sampler.min_rank_near_neighbor(&query).unwrap();
            assert_eq!(got, expected, "query {qi}");
        }
    }

    #[test]
    fn repeated_queries_return_the_same_point() {
        let (data, mut sampler) = build(4);
        let mut rng = StdRng::seed_from_u64(12);
        let query = data.point(PointId(0)).clone();
        let first = sampler.sample(&query, &mut rng);
        for _ in 0..10 {
            assert_eq!(sampler.sample(&query, &mut rng), first);
        }
    }

    #[test]
    fn output_is_uniform_over_rebuilds() {
        // The r-NNS guarantee: over the construction randomness, each of the
        // 8 cluster members is returned with probability ~1/8.
        let data = clustered_dataset();
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let query = data.point(PointId(0)).clone();
        let mut counts = vec![0usize; data.len()];
        let rebuilds = 1200;
        for seed in 0..rebuilds {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mut sampler = FairNns::build(&MinHash, params, &data, near, &mut rng);
            let id = sampler.sample(&query, &mut rng).expect("non-empty");
            counts[id.index()] += 1;
        }
        for (member, &count) in counts.iter().enumerate().take(8) {
            let rate = count as f64 / rebuilds as f64;
            assert!(
                (rate - 1.0 / 8.0).abs() < 0.05,
                "member {member} returned with rate {rate}"
            );
        }
    }

    #[test]
    fn without_replacement_returns_smallest_ranks_without_duplicates() {
        let (data, mut sampler) = build(5);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(3)).clone();
        let neighborhood = exact.neighborhood(&query);
        let k = 4;
        let sample = sampler.sample_without_replacement(&query, k);
        assert_eq!(sample.len(), k);
        // No duplicates.
        let mut dedup = sample.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), k);
        // They are exactly the k smallest-rank members of the neighbourhood.
        let mut expected: Vec<PointId> = neighborhood.clone();
        expected.sort_by_key(|id| sampler.ranks().rank(*id));
        expected.truncate(k);
        let mut got = sample.clone();
        got.sort_by_key(|id| sampler.ranks().rank(*id));
        assert_eq!(got, expected);
        // Asking for more than the neighbourhood returns the whole
        // neighbourhood.
        let all = sampler.sample_without_replacement(&query, 100);
        assert_eq!(all.len(), neighborhood.len());
    }

    #[test]
    fn structure_accounting() {
        let (data, sampler) = build(6);
        assert_eq!(sampler.num_points(), data.len());
        assert!(sampler.num_tables() >= 1);
        assert_eq!(
            sampler.total_entries(),
            data.len() * sampler.num_tables(),
            "every point appears once per table"
        );
        assert_eq!(sampler.params().near, 0.5);
    }
}
