//! The *approximate neighbourhood* sampler examined in Section 6.2.
//!
//! Har-Peled and Mahabadi's relaxed fairness notion samples uniformly from a
//! set `S'` that contains every r-near point but may also contain points up
//! to the far threshold `cr`. The natural LSH implementation — and the one
//! the paper evaluates — takes `S' = S(q, cr) ∩ (∪_i S_{i, ℓ_i(q)})`, i.e.
//! the colliding points that are not far, and samples uniformly from it.
//!
//! Section 6.2 constructs a dataset (see
//! [`fairnn_data::adversarial`](https://docs.rs)) on which this notion is
//! badly unfair: a point whose neighbourhood is a tight cluster is sampled
//! with probability `O(1/n)` while an isolated point at the same distance is
//! sampled with constant probability. This type exists to reproduce that
//! experiment (Figure 2).

use crate::predicate::Nearness;
use crate::sampler::{NeighborSampler, QueryStats};
use fairnn_lsh::{ConcatenatedHasher, LshFamily, LshHasher, LshIndex, LshParams, QueryScratch};
use fairnn_space::{Dataset, PointId};
use rand::Rng;

/// Samples uniformly from the colliding points that pass the *far*
/// threshold (similarity ≥ cr / distance ≤ cr), i.e. the approximate
/// neighbourhood `S'`.
#[derive(Debug, Clone)]
pub struct ApproximateNeighborhoodSampler<P, H, N> {
    points: Vec<P>,
    index: LshIndex<H>,
    /// Membership in `S'` is decided against the *far* threshold.
    within_far: N,
    stats: QueryStats,
    scratch: QueryScratch,
}

impl<P: Clone + Sync, BH, N> ApproximateNeighborhoodSampler<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
{
    /// Builds the sampler. `within_far` must encode the far threshold `cr`
    /// (e.g. `SimilarityAtLeast::new(Jaccard, 0.5)` for the Section 6.2
    /// instance where `cr = 0.5`).
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        within_far: N,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let index = LshIndex::build(family, params, dataset.points(), rng);
        Self {
            points: dataset.points().to_vec(),
            index,
            within_far,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
        }
    }
}

impl<P, H, N> ApproximateNeighborhoodSampler<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// The approximate neighbourhood `S'` of a query under the current
    /// build: colliding, deduplicated, and within the far threshold.
    pub fn approximate_neighborhood(&mut self, query: &P) -> Vec<PointId> {
        self.fill_approximate_neighborhood(query);
        self.scratch.candidates.clone()
    }

    /// Collects `S'` into `self.scratch.candidates` without allocating in
    /// the steady state (batched hash pass + epoch-stamped visited buffer).
    fn fill_approximate_neighborhood(&mut self, query: &P) {
        let mut stats = QueryStats::default();
        let Self {
            points,
            index,
            within_far,
            scratch,
            ..
        } = self;
        index.query_keys_into(query, &mut scratch.keys);
        scratch.visited.reset(points.len());
        scratch.candidates.clear();
        for (t, &key) in scratch.keys.iter().enumerate() {
            stats.buckets_inspected += 1;
            for &id in index.table(t).bucket(key) {
                stats.entries_scanned += 1;
                if !scratch.visited.insert(id.index()) {
                    continue;
                }
                stats.distance_computations += 1;
                if within_far.is_near(query, &points[id.index()]) {
                    scratch.candidates.push(id);
                }
            }
        }
        self.stats = stats;
    }

    /// The underlying LSH index.
    pub fn index(&self) -> &LshIndex<H> {
        &self.index
    }
}

impl<P, H, N> NeighborSampler<P> for ApproximateNeighborhoodSampler<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        self.fill_approximate_neighborhood(query);
        let candidates = &self.scratch.candidates;
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.random_range(0..candidates.len())])
        }
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "approximate-neighborhood"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::SimilarityAtLeast;
    use fairnn_lsh::{OneBitMinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, Similarity, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        // A point with an isolated neighbourhood at similarity 0.5.
        sets.push(SparseSet::from_items((16..=30).collect()));
        // A tight cluster of near-identical points at similarity ~0.5-0.6.
        for drop in 0..10u32 {
            let items: Vec<u32> = (1..=18).filter(|&x| x != drop + 1).collect();
            sets.push(SparseSet::from_items(items));
        }
        Dataset::new(sets)
    }

    #[test]
    fn neighborhood_only_contains_points_within_far_threshold() {
        let data = small_instance();
        let query = SparseSet::from_items((1..=30).collect());
        let params = ParamsBuilder::new(data.len(), 0.9, 0.45).empirical(&OneBitMinHash);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampler = ApproximateNeighborhoodSampler::build(
            &OneBitMinHash,
            params,
            &data,
            SimilarityAtLeast::new(Jaccard, 0.45),
            &mut rng,
        );
        let neighborhood = sampler.approximate_neighborhood(&query);
        for id in &neighborhood {
            let sim = Jaccard.similarity(&query, data.point(*id));
            assert!(sim >= 0.45, "similarity {sim} below the far threshold");
        }
        assert!(sampler.index().num_tables() >= 1);
        assert!(sampler.last_query_stats().entries_scanned > 0);
    }

    #[test]
    fn sample_returns_members_of_the_approximate_neighborhood_or_none() {
        let data = small_instance();
        let query = SparseSet::from_items((1..=30).collect());
        let params = ParamsBuilder::new(data.len(), 0.9, 0.45).empirical(&OneBitMinHash);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sampler = ApproximateNeighborhoodSampler::build(
            &OneBitMinHash,
            params,
            &data,
            SimilarityAtLeast::new(Jaccard, 0.45),
            &mut rng,
        );
        let allowed = sampler.approximate_neighborhood(&query);
        for _ in 0..200 {
            match sampler.sample(&query, &mut rng) {
                Some(id) => assert!(allowed.contains(&id)),
                None => assert!(allowed.is_empty()),
            }
        }
        assert_eq!(sampler.name(), "approximate-neighborhood");
    }

    #[test]
    fn far_query_returns_none() {
        let data = small_instance();
        let params = ParamsBuilder::new(data.len(), 0.9, 0.45).empirical(&OneBitMinHash);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = ApproximateNeighborhoodSampler::build(
            &OneBitMinHash,
            params,
            &data,
            SimilarityAtLeast::new(Jaccard, 0.45),
            &mut rng,
        );
        let query = SparseSet::from_items(vec![500, 501, 502]);
        assert!(sampler.sample(&query, &mut rng).is_none());
    }
}
