//! The Section 5.2 α-NNIS sampler built on `L` independent tensor filters.
//!
//! Query algorithm (Theorem 4): enumerate the above-threshold buckets of all
//! `L` repetitions; check that a near point exists at all; then repeat
//!
//! * pick a bucket with probability proportional to its current size,
//! * pick a uniform point `p` inside it,
//! * compute `c_p`, the number of enumerated buckets containing `p`
//!   (a point is stored once per repetition, so `c_p ≤ L`),
//! * if `p` is near (inner product ≥ α) report it with probability `1/c_p`,
//! * if `p` is far (inner product < β) remove it from the working copy,
//!
//! until success. The multiplicity correction `1/c_p` makes every near point
//! equally likely in every round, giving uniformity; fresh query randomness
//! gives independence across queries.

use super::tensor::TensorFilter;
use super::FilterConfig;
use crate::sampler::{NeighborSampler, QueryStats};
use fairnn_space::{Dataset, DenseVector, PointId};
use rand::Rng;
use std::collections::HashSet;

/// The nearly-linear space α-NNIS data structure (Section 5.2).
#[derive(Debug, Clone)]
pub struct FilterNnis {
    config: FilterConfig,
    points: Vec<DenseVector>,
    filters: Vec<TensorFilter>,
    stats: QueryStats,
    /// Safety valve for the rejection loop (multiples of the total bucket
    /// size); the theoretical expectation is `O(b_β log n / b_α)` rounds.
    max_round_factor: usize,
}

impl FilterNnis {
    /// Builds `L` independent tensor filters over the dataset.
    pub fn build<R: Rng + ?Sized>(
        config: FilterConfig,
        dataset: &Dataset<DenseVector>,
        rng: &mut R,
    ) -> Self {
        assert!(
            !dataset.is_empty(),
            "cannot build a filter over an empty dataset"
        );
        let repetitions = config.filter_repetitions(dataset.len());
        let filters = (0..repetitions)
            .map(|_| TensorFilter::build(config, dataset, rng))
            .collect();
        Self {
            config,
            points: dataset.points().to_vec(),
            filters,
            stats: QueryStats::default(),
            max_round_factor: 64,
        }
    }

    /// The configuration.
    pub fn config(&self) -> FilterConfig {
        self.config
    }

    /// Number of repetitions `L`.
    pub fn num_repetitions(&self) -> usize {
        self.filters.len()
    }

    /// Number of indexed points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Total number of stored point references (`n · L` — the nearly-linear
    /// space bound of Theorem 4).
    pub fn total_entries(&self) -> usize {
        self.points.len() * self.filters.len()
    }

    /// Every distinct near point present in the enumerated buckets of any
    /// repetition (the candidate support of the sampler).
    pub fn near_candidates(&mut self, query: &DenseVector) -> Vec<PointId> {
        let mut stats = QueryStats::default();
        let mut seen = vec![false; self.points.len()];
        let mut out = Vec::new();
        for filter in &self.filters {
            for id in filter.query_candidates(query) {
                stats.entries_scanned += 1;
                if seen[id.index()] {
                    continue;
                }
                seen[id.index()] = true;
                stats.distance_computations += 1;
                if self.points[id.index()].dot(query) >= self.config.alpha {
                    out.push(id);
                }
            }
        }
        self.stats = stats;
        out
    }
}

impl NeighborSampler<DenseVector> for FilterNnis {
    fn sample<R: Rng + ?Sized>(&mut self, query: &DenseVector, rng: &mut R) -> Option<PointId> {
        let mut stats = QueryStats::default();
        let alpha = self.config.alpha;
        let beta = self.config.beta;

        // Enumerate the above-threshold buckets of every repetition and take
        // a working copy of their contents (removals below only touch the
        // copy, so there is nothing to restore afterwards).
        let mut enumerated_keys: Vec<HashSet<u64>> = Vec::with_capacity(self.filters.len());
        let mut buckets: Vec<Vec<PointId>> = Vec::new();
        for filter in &self.filters {
            let (keys, enumerated) = filter.query_keys(query);
            stats.buckets_inspected += enumerated;
            let key_set: HashSet<u64> = keys.iter().copied().collect();
            for key in &keys {
                let bucket = filter.bucket(*key);
                if !bucket.is_empty() {
                    stats.entries_scanned += bucket.len();
                    buckets.push(bucket.to_vec());
                }
            }
            enumerated_keys.push(key_set);
        }

        // Existence check (the standard (α, β)-NN query over each
        // repetition): if no near point is present, answer ⊥.
        let mut exists_near = false;
        'outer: for bucket in &buckets {
            for &id in bucket {
                stats.distance_computations += 1;
                if self.points[id.index()].dot(query) >= alpha {
                    exists_near = true;
                    break 'outer;
                }
            }
        }
        if !exists_near {
            self.stats = stats;
            return None;
        }

        // Rejection loop with multiplicity correction.
        let mut total: usize = buckets.iter().map(Vec::len).sum();
        let max_rounds = self.max_round_factor * total.max(1);
        for _ in 0..max_rounds {
            if total == 0 {
                break;
            }
            stats.rounds += 1;
            // Pick a bucket with probability proportional to its size, then
            // a uniform point inside it — equivalently a uniform entry among
            // all remaining bucket entries.
            let mut target = rng.random_range(0..total);
            let mut chosen_bucket = usize::MAX;
            for (bi, bucket) in buckets.iter().enumerate() {
                if target < bucket.len() {
                    chosen_bucket = bi;
                    break;
                }
                target -= bucket.len();
            }
            debug_assert!(chosen_bucket != usize::MAX);
            let bucket = &mut buckets[chosen_bucket];
            let within = rng.random_range(0..bucket.len());
            let p = bucket[within];

            // Multiplicity of p among the enumerated buckets: p is stored in
            // exactly one bucket per repetition, so count the repetitions
            // whose enumerated key set contains p's bucket key.
            let cp = self
                .filters
                .iter()
                .zip(enumerated_keys.iter())
                .filter(|(filter, keys)| keys.contains(&filter.key_of(p)))
                .count()
                .max(1);

            stats.distance_computations += 1;
            let sim = self.points[p.index()].dot(query);
            if sim >= alpha {
                if rng.random::<f64>() < 1.0 / cp as f64 {
                    self.stats = stats;
                    return Some(p);
                }
            } else if sim < beta {
                // Far point: remove it from the working copy so it is never
                // drawn again.
                bucket.swap_remove(within);
                total -= 1;
            }
            // Points with β ≤ sim < α stay: they are never reported but the
            // analysis charges their retries to the b_S(q, β) term.
        }

        // Extremely unlikely: the loop ran out of rounds. Fall back to a
        // uniform choice over the near candidates, which preserves both
        // uniformity and independence.
        let fallback = self.near_candidates(query);
        let previous = self.stats;
        stats.accumulate(&previous);
        self.stats = stats;
        if fallback.is_empty() {
            None
        } else {
            Some(fallback[rng.random_range(0..fallback.len())])
        }
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "filter-nnis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_data::{PlantedInstance, PlantedInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted(near: usize) -> PlantedInstance {
        PlantedInstance::generate(
            PlantedInstanceConfig {
                dim: 24,
                background: 300,
                near,
                mid: 40,
                alpha: 0.8,
                beta: 0.5,
            },
            7,
        )
    }

    fn config() -> FilterConfig {
        FilterConfig::new(0.8, 0.5)
            .with_epsilon(0.02)
            .with_repetitions(12)
    }

    #[test]
    fn structure_accounting() {
        let inst = planted(8);
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);
        assert_eq!(sampler.num_points(), inst.dataset.len());
        assert_eq!(sampler.num_repetitions(), 12);
        assert_eq!(sampler.total_entries(), 12 * inst.dataset.len());
        assert_eq!(sampler.config().alpha, 0.8);
    }

    #[test]
    fn sample_returns_only_near_points() {
        let inst = planted(8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);
        for _ in 0..100 {
            if let Some(id) = sampler.sample(&inst.query, &mut rng) {
                let sim = inst.dataset.point(id).dot(&inst.query);
                assert!(sim >= 0.8 - 1e-9, "returned point at inner product {sim}");
            }
        }
        assert_eq!(sampler.name(), "filter-nnis");
    }

    #[test]
    fn near_candidates_cover_most_of_the_neighborhood() {
        let inst = planted(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);
        let candidates = sampler.near_candidates(&inst.query);
        let covered = inst
            .near_ids
            .iter()
            .filter(|id| candidates.contains(id))
            .count();
        assert!(
            covered * 10 >= inst.near_ids.len() * 8,
            "only {covered} of {} near points covered",
            inst.near_ids.len()
        );
        assert!(sampler.last_query_stats().entries_scanned > 0);
    }

    #[test]
    fn repeated_queries_are_roughly_uniform() {
        let inst = planted(6);
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);
        // Sample repeatedly; restrict attention to the near points that the
        // structure can actually reach (its candidate support).
        let support = sampler.near_candidates(&inst.query);
        assert!(support.len() >= 4, "support too small: {}", support.len());
        let trials = 4000;
        let mut counts = std::collections::HashMap::new();
        let mut successes = 0usize;
        for _ in 0..trials {
            if let Some(id) = sampler.sample(&inst.query, &mut rng) {
                *counts.entry(id).or_insert(0usize) += 1;
                successes += 1;
            }
        }
        assert!(successes * 10 >= trials * 9, "too many ⊥ answers");
        let expected = successes as f64 / support.len() as f64;
        for id in &support {
            let c = counts.get(id).copied().unwrap_or(0) as f64;
            assert!(
                (c - expected).abs() < 0.35 * expected + 30.0,
                "point {id:?} sampled {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn query_with_empty_neighborhood_returns_none() {
        let inst = planted(5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);
        // A query orthogonal-ish to everything: flip the query far away.
        let far_query =
            DenseVector::new(inst.query.values().iter().map(|v| -v).collect::<Vec<f64>>());
        assert!(sampler.sample(&far_query, &mut rng).is_none());
    }
}
