//! The Section 5 / Appendix B nearly-linear space data structures.
//!
//! Instead of `L = Θ(n^ρ)` LSH tables, the locality-sensitive *filter*
//! approach stores every data point exactly once per repetition: a point is
//! mapped to the bucket identified by the indices of the Gaussian filter
//! vectors it has the largest inner product with (a "concomitant order
//! statistics" scheme). A query evaluates all filters and inspects every
//! bucket whose filters score above the threshold `α·Δ_q − f(α, ε)`.
//!
//! * [`TensorFilter`] — a single data structure (Appendix B.4): `t`
//!   independent blocks of `m^{1/t}` Gaussian vectors; the bucket key of a
//!   point is the tuple of per-block arg-max indices. Solves the
//!   `(α, β)`-NN problem in linear space and `n^{ρ+o(1)}` expected time with
//!   `ρ = (1−α²)(1−β²)/(1−αβ)²` (Theorems 3, 6, 7).
//! * [`FilterNnis`] — `L = Θ(log n)` independent [`TensorFilter`]s plus the
//!   multiplicity-corrected rejection sampler of Section 5.2, solving the
//!   α-NNIS problem (Theorem 4): every point with inner product ≥ α is
//!   returned with equal probability, independently across queries.

mod nnis;
mod tensor;

pub use nnis::FilterNnis;
pub use tensor::TensorFilter;

/// Configuration of the filter data structures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Near inner-product threshold α (points with `⟨q, p⟩ ≥ α` form the
    /// neighbourhood to sample from).
    pub alpha: f64,
    /// Far inner-product threshold β < α (points below β are "far" and are
    /// discarded by the Section 5.2 query loop).
    pub beta: f64,
    /// Query success parameter ε of `f(α, ε) = sqrt(2 (1 − α²) ln(1/ε))`.
    pub epsilon: f64,
    /// Override for the number of blocks `t` (default `⌈1/(1 − α²)⌉`).
    pub num_blocks: Option<usize>,
    /// Override for the number of Gaussian vectors per block
    /// (default `⌈m^{1/t}⌉` with `m = n^{(1−β²)/(1−αβ)²}`, clamped).
    pub vectors_per_block: Option<usize>,
    /// Override for the number of independent repetitions used by
    /// [`FilterNnis`] (default `max(4, ⌈log₂ n⌉)`).
    pub repetitions: Option<usize>,
}

impl FilterConfig {
    /// Creates a configuration with the given thresholds and default
    /// derived parameters.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            -1.0 < beta && beta < alpha && alpha < 1.0,
            "thresholds must satisfy -1 < beta < alpha < 1"
        );
        Self {
            alpha,
            beta,
            epsilon: 0.1,
            num_blocks: None,
            vectors_per_block: None,
            repetitions: None,
        }
    }

    /// Sets the query success parameter ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        self.epsilon = epsilon;
        self
    }

    /// Overrides the number of blocks `t`.
    pub fn with_num_blocks(mut self, t: usize) -> Self {
        assert!(t >= 1, "need at least one block");
        self.num_blocks = Some(t);
        self
    }

    /// Overrides the number of vectors per block.
    pub fn with_vectors_per_block(mut self, m: usize) -> Self {
        assert!(m >= 2, "need at least two vectors per block");
        self.vectors_per_block = Some(m);
        self
    }

    /// Overrides the number of repetitions of [`FilterNnis`].
    pub fn with_repetitions(mut self, l: usize) -> Self {
        assert!(l >= 1, "need at least one repetition");
        self.repetitions = Some(l);
        self
    }

    /// The exponent `ρ = (1−α²)(1−β²)/(1−αβ)²` of Theorem 3.
    pub fn rho(&self) -> f64 {
        let a2 = 1.0 - self.alpha * self.alpha;
        let b2 = 1.0 - self.beta * self.beta;
        let ab = 1.0 - self.alpha * self.beta;
        a2 * b2 / (ab * ab)
    }

    /// Number of blocks `t = ⌈1/(1 − α²)⌉` (or the override).
    pub fn blocks(&self) -> usize {
        self.num_blocks
            .unwrap_or_else(|| (1.0 / (1.0 - self.alpha * self.alpha)).ceil() as usize)
            .max(1)
    }

    /// Number of Gaussian vectors per block for a dataset of `n` points.
    pub fn block_vectors(&self, n: usize) -> usize {
        if let Some(m) = self.vectors_per_block {
            return m.max(2);
        }
        let n = n.max(2) as f64;
        let exponent = (1.0 - self.beta * self.beta) / ((1.0 - self.alpha * self.beta).powi(2));
        let m = n.powf(exponent);
        let per_block = m.powf(1.0 / self.blocks() as f64).ceil() as usize;
        per_block.clamp(2, 256)
    }

    /// Number of independent repetitions for [`FilterNnis`] over `n` points.
    pub fn filter_repetitions(&self, n: usize) -> usize {
        self.repetitions
            .unwrap_or_else(|| ((n.max(2) as f64).log2().ceil() as usize).max(4))
    }

    /// The query threshold offset `f(α, ε) = sqrt(2 (1 − α²) ln(1/ε))`.
    pub fn threshold_offset(&self) -> f64 {
        (2.0 * (1.0 - self.alpha * self.alpha) * (1.0 / self.epsilon).ln()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_parameters_match_formulas() {
        let cfg = FilterConfig::new(0.8, 0.5);
        // t = ceil(1 / (1 - 0.64)) = ceil(2.78) = 3.
        assert_eq!(cfg.blocks(), 3);
        // rho = (0.36)(0.75)/(0.6)^2 = 0.75.
        assert!((cfg.rho() - 0.75).abs() < 1e-12);
        assert!(cfg.threshold_offset() > 0.0);
        assert!(cfg.block_vectors(1000) >= 2);
        assert!(cfg.filter_repetitions(1024) >= 10);
    }

    #[test]
    fn overrides_are_respected() {
        let cfg = FilterConfig::new(0.9, 0.3)
            .with_epsilon(0.05)
            .with_num_blocks(4)
            .with_vectors_per_block(32)
            .with_repetitions(7);
        assert_eq!(cfg.blocks(), 4);
        assert_eq!(cfg.block_vectors(100_000), 32);
        assert_eq!(cfg.filter_repetitions(100_000), 7);
        assert_eq!(cfg.epsilon, 0.05);
    }

    #[test]
    fn rho_decreases_when_the_gap_widens() {
        let narrow = FilterConfig::new(0.8, 0.7);
        let wide = FilterConfig::new(0.8, 0.2);
        assert!(wide.rho() < narrow.rho());
        assert!(narrow.rho() < 1.0);
        assert!(wide.rho() > 0.0);
    }

    #[test]
    #[should_panic(expected = "thresholds must satisfy")]
    fn invalid_thresholds_rejected() {
        let _ = FilterConfig::new(0.5, 0.8);
    }
}
