//! A single tensorised concomitant-filter data structure (Appendix B).
//!
//! Construction: `t` blocks, each holding `m_b` i.i.d. Gaussian vectors. A
//! point is assigned to the bucket identified by the tuple of per-block
//! arg-max inner products, so every point is stored exactly once — linear
//! space. A query computes, for every block, the set `I_i` of vector indices
//! whose inner product with the query is at least `α·Δ_{q,i} − f(α, ε)`
//! (where `Δ_{q,i}` is the block maximum) and inspects the buckets of
//! `I_1 × … × I_t`.

use super::FilterConfig;
use fairnn_lsh::gaussian::gaussian_vector;
use fairnn_space::{Dataset, DenseVector, PointId};
use rand::Rng;
use std::collections::HashMap;

/// One block of Gaussian filter vectors.
#[derive(Debug, Clone)]
pub(crate) struct FilterBlock {
    vectors: Vec<DenseVector>,
}

impl FilterBlock {
    fn random<R: Rng + ?Sized>(rng: &mut R, count: usize, dim: usize) -> Self {
        Self {
            vectors: (0..count).map(|_| gaussian_vector(rng, dim)).collect(),
        }
    }

    /// Index of the vector with the largest inner product with `p`.
    pub(crate) fn argmax(&self, p: &DenseVector) -> usize {
        let mut best = 0usize;
        let mut best_value = f64::NEG_INFINITY;
        for (i, a) in self.vectors.iter().enumerate() {
            let value = a.dot(p);
            if value > best_value {
                best_value = value;
                best = i;
            }
        }
        best
    }

    /// Indices whose inner product with `q` is at least
    /// `α·Δ_q − offset`, where `Δ_q` is the block maximum.
    fn above_threshold(&self, q: &DenseVector, alpha: f64, offset: f64) -> Vec<usize> {
        let products: Vec<f64> = self.vectors.iter().map(|a| a.dot(q)).collect();
        let delta = products.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let threshold = alpha * delta - offset;
        products
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= threshold)
            .map(|(i, _)| i)
            .collect()
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }
}

/// Folds a tuple of per-block indices into a 64-bit bucket key
/// (FNV-1a-style). Identical tuples always map to the same key; distinct
/// tuples collide only with negligible probability, and a collision merely
/// merges two buckets, which the query algorithms tolerate because they
/// re-check inner products.
pub(crate) fn bucket_key(indices: &[usize]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &i in indices {
        acc ^= (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3).rotate_left(13);
    }
    acc
}

/// A single concomitant-filter data structure over unit vectors.
#[derive(Debug, Clone)]
pub struct TensorFilter {
    config: FilterConfig,
    blocks: Vec<FilterBlock>,
    buckets: HashMap<u64, Vec<PointId>>,
    /// Bucket key of every indexed point (needed by the Section 5.2 query to
    /// count how many enumerated buckets contain a given point).
    point_keys: Vec<u64>,
    dim: usize,
}

impl TensorFilter {
    /// Builds the structure over a dataset of unit vectors.
    pub fn build<R: Rng + ?Sized>(
        config: FilterConfig,
        dataset: &Dataset<DenseVector>,
        rng: &mut R,
    ) -> Self {
        assert!(
            !dataset.is_empty(),
            "cannot build a filter over an empty dataset"
        );
        let dim = dataset.point(PointId(0)).dim();
        assert!(dim > 0, "points must have positive dimension");
        let t = config.blocks();
        let per_block = config.block_vectors(dataset.len());
        let blocks: Vec<FilterBlock> = (0..t)
            .map(|_| FilterBlock::random(rng, per_block, dim))
            .collect();

        let mut buckets: HashMap<u64, Vec<PointId>> = HashMap::new();
        let mut point_keys = Vec::with_capacity(dataset.len());
        let mut indices = vec![0usize; t];
        for (id, p) in dataset.iter() {
            assert_eq!(p.dim(), dim, "all points must share the same dimension");
            for (slot, block) in indices.iter_mut().zip(blocks.iter()) {
                *slot = block.argmax(p);
            }
            let key = bucket_key(&indices);
            buckets.entry(key).or_default().push(id);
            point_keys.push(key);
        }

        Self {
            config,
            blocks,
            buckets,
            point_keys,
            dim,
        }
    }

    /// The configuration the structure was built with.
    pub fn config(&self) -> FilterConfig {
        self.config
    }

    /// Number of blocks `t`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of Gaussian vectors per block.
    pub fn vectors_per_block(&self) -> usize {
        self.blocks.first().map_or(0, FilterBlock::len)
    }

    /// Number of indexed points.
    pub fn num_points(&self) -> usize {
        self.point_keys.len()
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket key of an indexed point.
    pub fn key_of(&self, id: PointId) -> u64 {
        self.point_keys[id.index()]
    }

    /// The bucket keys a query must inspect: the cross product of the
    /// per-block above-threshold index sets, restricted to non-empty
    /// buckets. Also returns the total number of keys enumerated (before
    /// the non-empty restriction), which the benchmarks report.
    pub fn query_keys(&self, query: &DenseVector) -> (Vec<u64>, usize) {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        let offset = self.config.threshold_offset();
        let per_block: Vec<Vec<usize>> = self
            .blocks
            .iter()
            .map(|b| b.above_threshold(query, self.config.alpha, offset))
            .collect();
        let mut enumerated = 0usize;
        let mut keys = Vec::new();
        let mut current = vec![0usize; per_block.len()];
        enumerate_cross_product(&per_block, 0, &mut current, &mut |indices| {
            enumerated += 1;
            let key = bucket_key(indices);
            if self.buckets.contains_key(&key) {
                keys.push(key);
            }
        });
        keys.sort_unstable();
        keys.dedup();
        (keys, enumerated)
    }

    /// The candidate points of a query: the contents of every inspected
    /// bucket (each point appears at most once since each point is stored in
    /// exactly one bucket per structure).
    pub fn query_candidates(&self, query: &DenseVector) -> Vec<PointId> {
        let (keys, _) = self.query_keys(query);
        let mut out = Vec::new();
        for key in keys {
            if let Some(bucket) = self.buckets.get(&key) {
                out.extend_from_slice(bucket);
            }
        }
        out
    }

    /// Contents of a bucket (empty slice when the key has no bucket).
    pub fn bucket(&self, key: u64) -> &[PointId] {
        self.buckets.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Solves the `(α, β)`-NN problem: returns a point with inner product at
    /// least β with the query if the inspected buckets contain one
    /// (Theorem 3 guarantees this succeeds with probability ≥ 1 − ε whenever
    /// a point with inner product ≥ α exists).
    pub fn solve_ann(
        &self,
        dataset: &Dataset<DenseVector>,
        query: &DenseVector,
    ) -> Option<PointId> {
        self.query_candidates(query)
            .into_iter()
            .find(|id| dataset.point(*id).dot(query) >= self.config.beta)
    }
}

/// Calls `visit` for every tuple in the cross product of `sets`.
fn enumerate_cross_product<F: FnMut(&[usize])>(
    sets: &[Vec<usize>],
    depth: usize,
    current: &mut Vec<usize>,
    visit: &mut F,
) {
    if depth == sets.len() {
        visit(current);
        return;
    }
    for &value in &sets[depth] {
        current[depth] = value;
        enumerate_cross_product(sets, depth + 1, current, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_data::{PlantedInstance, PlantedInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted() -> PlantedInstance {
        PlantedInstance::generate(
            PlantedInstanceConfig {
                dim: 24,
                background: 400,
                near: 12,
                mid: 40,
                alpha: 0.8,
                beta: 0.5,
            },
            42,
        )
    }

    #[test]
    fn every_point_is_stored_exactly_once() {
        let inst = planted();
        let mut rng = StdRng::seed_from_u64(1);
        let filter = TensorFilter::build(FilterConfig::new(0.8, 0.5), &inst.dataset, &mut rng);
        let total: usize = (0..filter.num_points())
            .map(|i| filter.bucket(filter.key_of(PointId::from_index(i))).len())
            .sum::<usize>();
        // Summing bucket sizes over per-point keys counts each bucket once
        // per member, so the identity below holds iff every point appears in
        // exactly one bucket and `key_of` agrees with the bucket content.
        let direct: usize = filter.num_points();
        let stored: usize = {
            let mut count = 0;
            for i in 0..filter.num_points() {
                let id = PointId::from_index(i);
                count += usize::from(filter.bucket(filter.key_of(id)).contains(&id));
            }
            count
        };
        assert_eq!(stored, direct, "every point must be in its own bucket");
        assert!(total >= direct);
        assert_eq!(filter.num_points(), inst.dataset.len());
        assert!(filter.num_buckets() <= inst.dataset.len());
        assert_eq!(filter.num_blocks(), filter.config().blocks());
        assert!(filter.vectors_per_block() >= 2);
    }

    #[test]
    fn query_finds_planted_near_neighbors_with_good_probability() {
        let inst = planted();
        let mut rng = StdRng::seed_from_u64(2);
        let config = FilterConfig::new(0.8, 0.5).with_epsilon(0.05);
        // Repeat over several builds: each near point should be found in the
        // candidate set in a large fraction of builds (Theorem 3's 1 - ε is
        // per point; the tensoring lowers it to (1-ε)^t, still > 50%).
        let builds = 12;
        let mut found = 0usize;
        let mut total = 0usize;
        for _ in 0..builds {
            let filter = TensorFilter::build(config, &inst.dataset, &mut rng);
            let candidates = filter.query_candidates(&inst.query);
            for id in &inst.near_ids {
                total += 1;
                if candidates.contains(id) {
                    found += 1;
                }
            }
        }
        let rate = found as f64 / total as f64;
        assert!(rate > 0.5, "near points found at rate {rate}");
    }

    #[test]
    fn solve_ann_returns_a_beta_near_point() {
        let inst = planted();
        let mut rng = StdRng::seed_from_u64(3);
        let filter = TensorFilter::build(FilterConfig::new(0.8, 0.5), &inst.dataset, &mut rng);
        if let Some(id) = filter.solve_ann(&inst.dataset, &inst.query) {
            assert!(inst.dataset.point(id).dot(&inst.query) >= 0.5);
        } else {
            panic!("ANN query failed although near points exist");
        }
    }

    #[test]
    fn candidates_are_a_small_fraction_of_the_dataset() {
        // The whole point of the filter: far points are rarely inspected.
        let inst = planted();
        let mut rng = StdRng::seed_from_u64(4);
        let filter = TensorFilter::build(FilterConfig::new(0.8, 0.5), &inst.dataset, &mut rng);
        let candidates = filter.query_candidates(&inst.query);
        assert!(
            candidates.len() * 2 < inst.dataset.len(),
            "query inspected {} of {} points",
            candidates.len(),
            inst.dataset.len()
        );
    }

    #[test]
    fn bucket_key_is_deterministic_and_order_sensitive() {
        assert_eq!(bucket_key(&[1, 2, 3]), bucket_key(&[1, 2, 3]));
        assert_ne!(bucket_key(&[1, 2, 3]), bucket_key(&[3, 2, 1]));
        assert_ne!(bucket_key(&[0]), bucket_key(&[0, 0]));
    }

    #[test]
    fn query_keys_reports_enumeration_size() {
        let inst = planted();
        let mut rng = StdRng::seed_from_u64(5);
        let filter = TensorFilter::build(FilterConfig::new(0.8, 0.5), &inst.dataset, &mut rng);
        let (keys, enumerated) = filter.query_keys(&inst.query);
        assert!(enumerated >= keys.len());
        assert!(enumerated >= 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: Dataset<DenseVector> = Dataset::new(vec![]);
        let _ = TensorFilter::build(FilterConfig::new(0.8, 0.5), &empty, &mut rng);
    }

    #[test]
    fn cross_product_enumeration_visits_every_tuple() {
        let sets = vec![vec![0, 1], vec![5], vec![7, 8, 9]];
        let mut seen = Vec::new();
        let mut current = vec![0usize; 3];
        enumerate_cross_product(&sets, 0, &mut current, &mut |t| seen.push(t.to_vec()));
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![1, 5, 9]));
        assert!(seen.contains(&vec![0, 5, 7]));
    }
}
