//! The Appendix A data structure: independent sampling for a repeated query.
//!
//! Repeating the same query against the Section 3 structure always returns
//! the same point (the permutation is fixed). Appendix A (Theorem 5) fixes
//! this for the special case where *one* query is repeated: after returning
//! the minimum-rank near point `x`, swap the rank of `x` with the rank of a
//! uniformly random point holding a rank in `[rank(x), n)` — a single step
//! of a Fisher–Yates shuffle. After the swap it is impossible to tell how
//! the remaining neighbours are distributed among the ranks above the old
//! `rank(x)`, so the next invocation of the same query again returns a
//! uniform and independent sample.
//!
//! The paper warns (and [`RankSwapSampler`] inherits the caveat) that the
//! guarantee only covers a single repeated query: interleaving different
//! queries biases them, because all previously returned points drift towards
//! high ranks. Use [`crate::FairNnis`] when full independence across queries
//! is needed.

use crate::nns::FairNns;
use crate::predicate::Nearness;
use crate::rank::RankPermutation;
use crate::sampler::{NeighborSampler, QueryStats};
use fairnn_lsh::{ConcatenatedHasher, LshFamily, LshHasher, LshIndex, LshParams};
use fairnn_space::{Dataset, PointId};
use rand::Rng;

/// Fair sampler with rank re-randomisation after every query (Appendix A).
#[derive(Debug, Clone)]
pub struct RankSwapSampler<P, H, N> {
    inner: FairNns<P, H, N>,
}

impl<P: Clone + Sync, BH, N> RankSwapSampler<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
    N: Nearness<P>,
{
    /// Builds the data structure (same construction as [`FairNns`]).
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        Self {
            inner: FairNns::build(family, params, dataset, near, rng),
        }
    }
}

impl<P: Clone, H, N> RankSwapSampler<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Builds the sampler from an existing index and permutation.
    pub fn from_index(
        index: LshIndex<H>,
        dataset: &Dataset<P>,
        ranks: RankPermutation,
        near: N,
    ) -> Self {
        Self {
            inner: FairNns::from_index(index, dataset, ranks, near),
        }
    }
}

impl<P, H, N> RankSwapSampler<P, H, N> {
    /// The current rank permutation (changes after every successful query).
    pub fn ranks(&self) -> &RankPermutation {
        self.inner.ranks()
    }

    /// Number of LSH tables.
    pub fn num_tables(&self) -> usize {
        self.inner.num_tables()
    }
}

impl<P, H, N> fairnn_snapshot::Codec for RankSwapSampler<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.inner.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            inner: FairNns::decode(dec)?,
        })
    }
}

impl<P, H, N> RankSwapSampler<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    /// Writes the sampler (including the *current* rank permutation — the
    /// swap state survives the round trip) as a snapshot file.
    pub fn save<Q: AsRef<std::path::Path>>(
        &self,
        path: Q,
    ) -> Result<(), fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::save(fairnn_snapshot::SnapshotKind::RankSwap, self, path)
    }

    /// Restores a sampler written by [`RankSwapSampler::save`].
    pub fn load<Q: AsRef<std::path::Path>>(
        path: Q,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::load(fairnn_snapshot::SnapshotKind::RankSwap, path)
    }
}

impl<P, H, N> NeighborSampler<P> for RankSwapSampler<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        let result = self.inner.min_rank_near_neighbor(query);
        if let Some((_, x)) = result {
            // Re-randomise *before* returning so the next repetition of the
            // same query sees a fresh permutation of the neighbourhood.
            self.inner.reshuffle_rank_of(x, rng);
        }
        result.map(|(_, id)| id)
    }

    fn last_query_stats(&self) -> QueryStats {
        self.inner.last_query_stats()
    }

    fn name(&self) -> &'static str {
        "rank-swap-nns"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ExactSampler;
    use crate::predicate::SimilarityAtLeast;
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..6u32 {
            let mut items: Vec<u32> = (0..30).collect();
            items.push(100 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..10u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 12).collect(),
            ));
        }
        Dataset::new(sets)
    }

    #[test]
    fn repeated_query_is_uniform_over_the_neighborhood() {
        let data = clustered_dataset();
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampler = RankSwapSampler::build(&MinHash, params, &data, near, &mut rng);

        let query = data.point(PointId(0)).clone();
        let neighborhood = ExactSampler::new(&data, near).neighborhood(&query);
        assert_eq!(neighborhood.len(), 6);

        let trials = 9000;
        let mut counts = vec![0usize; data.len()];
        for _ in 0..trials {
            let id = sampler
                .sample(&query, &mut rng)
                .expect("neighbourhood non-empty");
            assert!(neighborhood.contains(&id), "non-neighbour returned");
            counts[id.index()] += 1;
        }
        for &id in &neighborhood {
            let rate = counts[id.index()] as f64 / trials as f64;
            assert!(
                (rate - 1.0 / 6.0).abs() < 0.03,
                "member {id:?} rate {rate}, expected ~1/6"
            );
        }
    }

    #[test]
    fn repeated_query_output_actually_varies() {
        let data = clustered_dataset();
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sampler = RankSwapSampler::build(&MinHash, params, &data, near, &mut rng);
        let query = data.point(PointId(1)).clone();
        let outputs: std::collections::HashSet<PointId> = (0..200)
            .filter_map(|_| sampler.sample(&query, &mut rng))
            .collect();
        assert!(
            outputs.len() >= 4,
            "rank swapping should visit most of the neighbourhood, saw {outputs:?}"
        );
        assert_eq!(sampler.name(), "rank-swap-nns");
        assert!(sampler.num_tables() >= 1);
    }

    #[test]
    fn permutation_stays_consistent_after_many_swaps() {
        let data = clustered_dataset();
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = RankSwapSampler::build(&MinHash, params, &data, near, &mut rng);
        let query = data.point(PointId(2)).clone();
        for _ in 0..500 {
            let _ = sampler.sample(&query, &mut rng);
        }
        assert!(
            sampler.ranks().is_consistent(),
            "rank permutation corrupted"
        );
    }

    #[test]
    fn missing_neighborhood_returns_none_and_swaps_nothing() {
        let data = clustered_dataset();
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = RankSwapSampler::build(&MinHash, params, &data, near, &mut rng);
        let before = sampler.ranks().clone();
        let query = SparseSet::from_items(vec![90_000, 90_001]);
        assert!(sampler.sample(&query, &mut rng).is_none());
        assert_eq!(sampler.ranks(), &before, "permutation must not change on ⊥");
    }
}
