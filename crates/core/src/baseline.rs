//! Baseline near-neighbor searchers used as comparison points.
//!
//! Three baselines appear in the paper:
//!
//! * [`ExactSampler`] — the trivial solution: scan the whole dataset, build
//!   `B_S(q, r)` exactly and sample uniformly. Perfectly fair and
//!   independent, but the query time is `Θ(n)`; it is the ground truth the
//!   fair LSH structures are validated against.
//! * [`StandardLsh`] — the classic LSH query of Section 2.2: scan the `L`
//!   buckets in a fixed order and return the *first* near point encountered.
//!   This is the "standard LSH" curve of Figure 1 and is demonstrably unfair
//!   (points that collide with the query more often, i.e. closer points, are
//!   returned more often).
//! * [`NaiveFairLsh`] — what Section 6 calls *fair LSH*: collect **all** near
//!   points in the `L` buckets, remove duplicates and return one uniformly at
//!   random. Fair, but the query pays for the full neighbourhood
//!   (`Θ̃(b_S(q, r) n^ρ + b_S(q, cr))` in the worst case, as discussed in
//!   Section 2.2).

use crate::predicate::Nearness;
use crate::sampler::{NeighborSampler, QueryStats};
use fairnn_lsh::{ConcatenatedHasher, LshFamily, LshHasher, LshIndex, LshParams, QueryScratch};
use fairnn_space::{Dataset, PointId};
use rand::Rng;

/// Exact (linear scan) fair sampler — the ground-truth baseline.
#[derive(Debug, Clone)]
pub struct ExactSampler<P, N> {
    points: Vec<P>,
    near: N,
    stats: QueryStats,
    scratch: QueryScratch,
}

impl<P: Clone, N> ExactSampler<P, N> {
    /// Builds the sampler from a dataset and nearness predicate.
    pub fn new(dataset: &Dataset<P>, near: N) -> Self {
        Self {
            points: dataset.points().to_vec(),
            near,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
        }
    }

    /// The exact neighbourhood of a query (ids in increasing order).
    pub fn neighborhood(&self, query: &P) -> Vec<PointId>
    where
        N: Nearness<P>,
    {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| self.near.is_near(query, p))
            .map(|(i, _)| PointId::from_index(i))
            .collect()
    }
}

impl<P, N: Nearness<P>> NeighborSampler<P> for ExactSampler<P, N> {
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        let mut stats = QueryStats::default();
        let near_points = &mut self.scratch.candidates;
        near_points.clear();
        for (i, p) in self.points.iter().enumerate() {
            stats.entries_scanned += 1;
            stats.distance_computations += 1;
            if self.near.is_near(query, p) {
                near_points.push(PointId::from_index(i));
            }
        }
        let result = if near_points.is_empty() {
            None
        } else {
            Some(near_points[rng.random_range(0..near_points.len())])
        };
        self.stats = stats;
        result
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// The standard (unfair) LSH query: return the first near point found while
/// scanning the buckets in table order.
#[derive(Debug, Clone)]
pub struct StandardLsh<P, H, N> {
    points: Vec<P>,
    index: LshIndex<H>,
    near: N,
    stats: QueryStats,
    scratch: QueryScratch,
}

impl<P: Clone + Sync, BH, N> StandardLsh<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
{
    /// Builds the standard LSH searcher with the given family and
    /// parameters.
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let index = LshIndex::build(family, params, dataset.points(), rng);
        Self {
            points: dataset.points().to_vec(),
            index,
            near,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
        }
    }
}

impl<P, H, N> StandardLsh<P, H, N> {
    /// The underlying LSH index (exposed for space accounting and tests).
    pub fn index(&self) -> &LshIndex<H> {
        &self.index
    }
}

impl<P, H, N> StandardLsh<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// The pure Section 2.2 query: scan tables in build order, scan bucket
    /// entries in insertion order, return the first near point. Fully
    /// deterministic for a fixed index and query.
    pub fn sample_deterministic(&mut self, query: &P) -> Option<PointId> {
        let mut stats = QueryStats::default();
        let mut result = None;
        self.index.query_keys_into(query, &mut self.scratch.keys);
        'tables: for (t, &key) in self.scratch.keys.iter().enumerate() {
            stats.buckets_inspected += 1;
            for &id in self.index.table(t).bucket(key) {
                stats.entries_scanned += 1;
                stats.distance_computations += 1;
                if self.near.is_near(query, &self.points[id.index()]) {
                    result = Some(id);
                    break 'tables;
                }
            }
        }
        self.stats = stats;
        result
    }
}

impl<P, H, N> NeighborSampler<P> for StandardLsh<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// The standard LSH query with randomised visiting order: tables are
    /// visited in a random permutation and each bucket is scanned starting
    /// at a random offset. The paper notes (Section 2.2) that the standard
    /// approach is biased *"even if the order in which the L hash tables are
    /// visited is randomized"* — this is the variant the Figure 1 experiment
    /// measures, because it exposes the output distribution of a single
    /// build without rebuilding the index for every repetition.
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        let mut stats = QueryStats::default();
        let Self {
            points,
            index,
            near,
            scratch,
            ..
        } = self;
        index.query_keys_into(query, &mut scratch.keys);
        // Random visiting order over tables (kept in the reused index
        // buffer, so the randomness consumption matches the historical
        // `Vec`-based shuffle exactly).
        let order = &mut scratch.indices;
        order.clear();
        order.extend(0..scratch.keys.len() as u32);
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut result = None;
        'tables: for &t in order.iter() {
            let bucket = index.table(t as usize).bucket(scratch.keys[t as usize]);
            stats.buckets_inspected += 1;
            if bucket.is_empty() {
                continue;
            }
            let offset = rng.random_range(0..bucket.len());
            for step in 0..bucket.len() {
                let id = bucket[(offset + step) % bucket.len()];
                stats.entries_scanned += 1;
                stats.distance_computations += 1;
                if near.is_near(query, &points[id.index()]) {
                    result = Some(id);
                    break 'tables;
                }
            }
        }
        self.stats = stats;
        result
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "standard-lsh"
    }
}

/// The naive fair LSH query of Section 6: collect every near point in the
/// buckets, deduplicate, and sample uniformly.
#[derive(Debug, Clone)]
pub struct NaiveFairLsh<P, H, N> {
    points: Vec<P>,
    index: LshIndex<H>,
    near: N,
    stats: QueryStats,
    scratch: QueryScratch,
}

impl<P: Clone + Sync, BH, N> NaiveFairLsh<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
{
    /// Builds the naive fair LSH searcher.
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        let index = LshIndex::build(family, params, dataset.points(), rng);
        Self {
            points: dataset.points().to_vec(),
            index,
            near,
            stats: QueryStats::default(),
            scratch: QueryScratch::new(),
        }
    }
}

impl<P, H, N> NaiveFairLsh<P, H, N> {
    /// The underlying LSH index.
    pub fn index(&self) -> &LshIndex<H> {
        &self.index
    }
}

impl<P, H, N> NaiveFairLsh<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// All near points colliding with the query, deduplicated — the
    /// candidate set the naive query samples from. The allocation-free form
    /// used by [`NeighborSampler::sample`] leaves the candidates in the
    /// owned scratch; this public wrapper clones them out.
    pub fn near_candidates(&mut self, query: &P) -> Vec<PointId> {
        self.fill_near_candidates(query);
        self.scratch.candidates.clone()
    }

    /// Collects the deduplicated colliding near points into
    /// `self.scratch.candidates`: one batched hash pass for the keys, an
    /// epoch-stamped visited buffer for cross-table deduplication (no
    /// `O(n)` allocation per query), and a reused candidate vector.
    fn fill_near_candidates(&mut self, query: &P) {
        let mut stats = QueryStats::default();
        let Self {
            points,
            index,
            near,
            scratch,
            ..
        } = self;
        index.query_keys_into(query, &mut scratch.keys);
        scratch.visited.reset(points.len());
        scratch.candidates.clear();
        for (t, &key) in scratch.keys.iter().enumerate() {
            stats.buckets_inspected += 1;
            for &id in index.table(t).bucket(key) {
                stats.entries_scanned += 1;
                if !scratch.visited.insert(id.index()) {
                    continue;
                }
                stats.distance_computations += 1;
                if near.is_near(query, &points[id.index()]) {
                    scratch.candidates.push(id);
                }
            }
        }
        self.stats = stats;
    }
}

impl<P, H, N> NeighborSampler<P> for NaiveFairLsh<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        self.fill_near_candidates(query);
        let candidates = &self.scratch.candidates;
        if candidates.is_empty() {
            None
        } else {
            let pick = rng.random_range(0..candidates.len());
            Some(candidates[pick])
        }
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "naive-fair-lsh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::SimilarityAtLeast;
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        // Cluster of 6 mutually similar sets.
        for j in 0..6u32 {
            let mut items: Vec<u32> = (0..20).collect();
            items.push(100 + j);
            sets.push(SparseSet::from_items(items));
        }
        // Far away singletons.
        for j in 0..6u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 50..1000 + j * 50 + 20).collect(),
            ));
        }
        Dataset::new(sets)
    }

    fn toy_params(n: usize) -> LshParams {
        ParamsBuilder::new(n, 0.5, 0.05).empirical(&MinHash)
    }

    #[test]
    fn exact_sampler_returns_only_near_points_and_is_uniform() {
        let data = toy_dataset();
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let mut sampler = ExactSampler::new(&data, near);
        let query = data.point(PointId(0)).clone();
        let neighborhood = sampler.neighborhood(&query);
        assert_eq!(neighborhood.len(), 6);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; data.len()];
        for _ in 0..6000 {
            let id = sampler
                .sample(&query, &mut rng)
                .expect("neighbourhood non-empty");
            assert!(neighborhood.contains(&id));
            counts[id.index()] += 1;
        }
        for &id in &neighborhood {
            let rate = counts[id.index()] as f64 / 6000.0;
            assert!((rate - 1.0 / 6.0).abs() < 0.05, "rate {rate}");
        }
        assert_eq!(sampler.last_query_stats().entries_scanned, data.len());
        assert_eq!(sampler.name(), "exact");
    }

    #[test]
    fn exact_sampler_returns_none_for_empty_neighborhood() {
        let data = toy_dataset();
        let mut sampler = ExactSampler::new(&data, SimilarityAtLeast::new(Jaccard, 0.5));
        let query = SparseSet::from_items(vec![90_000, 90_001]);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sampler.sample(&query, &mut rng).is_none());
    }

    #[test]
    fn standard_lsh_finds_a_near_point() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = StandardLsh::build(
            &MinHash,
            toy_params(data.len()),
            &data,
            SimilarityAtLeast::new(Jaccard, 0.5),
            &mut rng,
        );
        let query = data.point(PointId(0)).clone();
        let result = sampler
            .sample(&query, &mut rng)
            .expect("cluster should be found");
        assert!(result.index() < 6, "returned a far point {result:?}");
        assert!(sampler.last_query_stats().entries_scanned >= 1);
        assert_eq!(sampler.name(), "standard-lsh");
        assert!(sampler.index().num_tables() >= 1);
    }

    #[test]
    fn standard_lsh_is_deterministic_for_a_fixed_query() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = StandardLsh::build(
            &MinHash,
            toy_params(data.len()),
            &data,
            SimilarityAtLeast::new(Jaccard, 0.5),
            &mut rng,
        );
        let query = data.point(PointId(2)).clone();
        let first = sampler.sample_deterministic(&query);
        assert!(first.is_some());
        for _ in 0..20 {
            assert_eq!(sampler.sample_deterministic(&query), first);
        }
        // The randomised-order variant still only ever returns near points.
        for _ in 0..50 {
            if let Some(id) = sampler.sample(&query, &mut rng) {
                assert!(id.index() < 6);
            }
        }
    }

    #[test]
    fn naive_fair_lsh_candidates_match_exact_neighborhood() {
        let data = toy_dataset();
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut naive =
            NaiveFairLsh::build(&MinHash, toy_params(data.len()), &data, near, &mut rng);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(1)).clone();
        let mut candidates = naive.near_candidates(&query);
        candidates.sort();
        let expected = exact.neighborhood(&query);
        // With 99% recall parameters all six cluster members are found with
        // overwhelming probability for this seed.
        assert_eq!(candidates, expected);
        assert!(naive.index().total_entries() > 0);
        assert_eq!(naive.name(), "naive-fair-lsh");
    }

    #[test]
    fn naive_fair_lsh_is_close_to_uniform() {
        let data = toy_dataset();
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut naive =
            NaiveFairLsh::build(&MinHash, toy_params(data.len()), &data, near, &mut rng);
        let query = data.point(PointId(0)).clone();
        let mut counts = vec![0usize; data.len()];
        let trials = 6000;
        for _ in 0..trials {
            let id = naive.sample(&query, &mut rng).expect("non-empty");
            counts[id.index()] += 1;
        }
        for (id, &count) in counts.iter().enumerate().take(6) {
            let rate = count as f64 / trials as f64;
            assert!((rate - 1.0 / 6.0).abs() < 0.05, "rate {rate} for {id}");
        }
    }

    #[test]
    fn naive_fair_lsh_returns_none_without_near_collisions() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(7);
        let mut naive = NaiveFairLsh::build(
            &MinHash,
            toy_params(data.len()),
            &data,
            SimilarityAtLeast::new(Jaccard, 0.5),
            &mut rng,
        );
        let query = SparseSet::from_items(vec![77_777, 77_778]);
        assert!(naive.sample(&query, &mut rng).is_none());
    }
}
