//! `fairnn-obs`: the workspace's observability core — lock-free metrics,
//! scoped tracing spans, and the single audited timing seam.
//!
//! The crate sits at the very bottom of the stack (it depends on nothing,
//! std only) so every layer — `fairnn-parallel`, `fairnn-snapshot`,
//! `fairnn-lsh`, `fairnn-engine`, `fairnn-bench` — can record into it
//! without dependency cycles. Three sub-systems:
//!
//! * [`metrics`] / [`registry`] — atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log-scale [`Histogram`]s, named and rendered through the
//!   global [`MetricsRegistry`] in Prometheus text format or JSON. Per-site
//!   [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] statics keep the hot
//!   path allocation-free: one relaxed load when observability is off, one
//!   relaxed atomic add when it is on. [`HistogramShard`] is the mergeable
//!   per-thread form — merging is pure bucket-wise addition (commutative and
//!   associative, the same discipline as the KMV sketch merges), so
//!   aggregated totals are identical at any thread count and merge order.
//! * [`mod@span`] — a scoped-span facade (`span!("shard.sample", shard = i)`)
//!   writing `{name, key, value, start, duration}` events into a bounded
//!   ring buffer. Compiled down to a single relaxed load unless tracing is
//!   enabled; it never touches RNG streams or output ordering, so the
//!   seed-pinned goldens stay byte-identical with tracing on (enforced by
//!   the integration tests).
//! * [`clock`] — the injectable [`Clock`] trait (monotonic + wall). This
//!   crate is the only place in the workspace allowed to call
//!   `Instant::now()`/`SystemTime::now()` (outside the bench binaries);
//!   the `direct-instant` audit rule in `fairnn-audit` enforces exactly
//!   that, which is what keeps timing reviewable in one spot.
//!
//! Everything is gated on a single process-global switch ([`set_enabled`]):
//! disabled (the default), every instrument is one relaxed `AtomicBool`
//! load — measured well below the 3% overhead budget the bench gate
//! enforces even when *enabled*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod registry;
pub mod span;

pub use clock::{monotonic_ns, wall_unix_ns, Clock, ManualClock, SystemClock, Timer};
pub use metrics::{Counter, Gauge, Histogram, HistogramShard, BUCKETS};
pub use registry::{
    global, LazyCounter, LazyGauge, LazyHistogram, MetricKind, MetricSnapshot, MetricsRegistry,
};
pub use span::{drain_events, set_tracing_enabled, tracing_enabled, SpanEvent, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global observability switch. Off by default: all recording
/// macros and helpers collapse to one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off for the whole process.
///
/// The switch only gates *recording*; registered metrics keep their
/// accumulated values, and [`MetricsRegistry::render_prometheus`] /
/// [`MetricsRegistry::render_json`] work regardless.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_toggle_round_trips() {
        // Tests in this binary share the process-global switch; restore it.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
