//! The metrics registry: named metrics, per-site lazy handles, and the
//! Prometheus-text / JSON exporters.
//!
//! Call sites hold `static` [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`]
//! handles: a `const` name/help pair plus a `OnceLock` that registers the
//! metric in the global registry on first recording. Recording is therefore
//! one relaxed `enabled()` load when observability is off, and one
//! `OnceLock` load plus one relaxed atomic add when it is on — no locks,
//! no allocation, on any hot path.
//!
//! Rendering walks a `BTreeMap`, so exporter output is sorted by metric
//! name and stable across runs — the property the CI artifact diffing and
//! the aggregation-determinism tests rely on.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{bucket_bound, Counter, Gauge, Histogram, BUCKETS};

/// What kind of metric a registry entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-scale histogram.
    Histogram,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// A point-in-time copy of one metric, for programmatic consumers.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`snake_case`, Prometheus-compatible).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// Counter total or gauge value (histograms: observation count).
    pub value: i64,
    /// Histogram sum of observations (0 otherwise).
    pub sum: u64,
    /// Histogram `(inclusive upper bound, count)` pairs for non-empty
    /// buckets (empty otherwise).
    pub buckets: Vec<(u64, u64)>,
}

/// A named collection of metrics with exporters.
///
/// Most code uses the process-global registry via the lazy handles; a
/// fresh registry is only for tests that need isolation.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<&'static str, Entry>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        let entry = entries.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Counter(Arc::new(Counter::new())),
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is already registered as a non-counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        let entry = entries.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is already registered as a non-gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        let entry = entries.entry(name).or_insert_with(|| Entry {
            help,
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is already registered as a non-histogram"),
        }
    }

    /// A sorted point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .map(|(name, entry)| {
                let (kind, value, sum, buckets) = match &entry.metric {
                    Metric::Counter(c) => (
                        MetricKind::Counter,
                        i64::try_from(c.get()).unwrap_or(i64::MAX),
                        0,
                        Vec::new(),
                    ),
                    Metric::Gauge(g) => (MetricKind::Gauge, g.get(), 0, Vec::new()),
                    Metric::Histogram(h) => {
                        let counts = h.buckets();
                        let buckets: Vec<(u64, u64)> = (0..BUCKETS)
                            .filter(|&i| counts[i] != 0)
                            .map(|i| (bucket_bound(i), counts[i]))
                            .collect();
                        (
                            MetricKind::Histogram,
                            i64::try_from(h.count()).unwrap_or(i64::MAX),
                            h.sum(),
                            buckets,
                        )
                    }
                };
                MetricSnapshot {
                    name: name.to_string(),
                    help: entry.help.to_string(),
                    kind,
                    value,
                    sum,
                    buckets,
                }
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `_bucket{le=…}` rows for
    /// histograms), sorted by name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for m in self.snapshot() {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            match m.kind {
                MetricKind::Counter => {
                    out.push_str(&format!(
                        "# TYPE {} counter\n{} {}\n",
                        m.name, m.name, m.value
                    ));
                }
                MetricKind::Gauge => {
                    out.push_str(&format!(
                        "# TYPE {} gauge\n{} {}\n",
                        m.name, m.name, m.value
                    ));
                }
                MetricKind::Histogram => {
                    out.push_str(&format!("# TYPE {} histogram\n", m.name));
                    let mut cumulative = 0u64;
                    for (bound, count) in &m.buckets {
                        cumulative += count;
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{bound}\"}} {cumulative}\n",
                            m.name
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{{le=\"+Inf\"}} {}\n{}_sum {}\n{}_count {}\n",
                        m.name, m.value, m.name, m.sum, m.name, m.value
                    ));
                }
            }
        }
        out
    }

    /// Renders every metric as a JSON document: an object with a sorted
    /// `"metrics"` array. Histogram buckets appear as `[bound, count]`
    /// pairs for non-empty buckets only. All numbers are integers, so the
    /// encoding is exact and byte-stable.
    pub fn render_json(&self) -> String {
        let mut rows = Vec::new();
        for m in self.snapshot() {
            let kind = match m.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let mut row = format!(
                "    {{\"name\": \"{}\", \"kind\": \"{kind}\", \"help\": \"{}\", \"value\": {}",
                m.name,
                m.help.replace('"', "'"),
                m.value
            );
            if m.kind == MetricKind::Histogram {
                let buckets: Vec<String> = m
                    .buckets
                    .iter()
                    .map(|(bound, count)| format!("[{bound}, {count}]"))
                    .collect();
                row.push_str(&format!(
                    ", \"sum\": {}, \"buckets\": [{}]",
                    m.sum,
                    buckets.join(", ")
                ));
            }
            row.push('}');
            rows.push(row);
        }
        format!("{{\n  \"metrics\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
    }

    /// Resets every registered metric to zero (tests and the bench
    /// overhead harness; racing concurrent recorders lose increments).
    pub fn reset(&self) {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        for entry in entries.values() {
            match &entry.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-global registry all lazy handles register into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A per-site counter handle: `const`-constructible, registers in the
/// global registry on first recording, records only when [`crate::enabled`].
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declares a counter site (no registration until first use).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    /// The underlying counter, registering it on first call.
    pub fn metric(&self) -> &Arc<Counter> {
        self.cell
            .get_or_init(|| global().counter(self.name, self.help))
    }

    /// Adds one when observability is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` when observability is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.metric().add(n);
        }
    }
}

/// A per-site gauge handle (see [`LazyCounter`]).
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Declares a gauge site.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    /// The underlying gauge, registering it on first call.
    pub fn metric(&self) -> &Arc<Gauge> {
        self.cell
            .get_or_init(|| global().gauge(self.name, self.help))
    }

    /// Adds `n` (negative to decrease) when observability is enabled.
    #[inline]
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.metric().add(n);
        }
    }

    /// Sets the gauge when observability is enabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.metric().set(v);
        }
    }
}

/// A per-site histogram handle (see [`LazyCounter`]).
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declares a histogram site.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    /// The underlying histogram, registering it on first call.
    pub fn metric(&self) -> &Arc<Histogram> {
        self.cell
            .get_or_init(|| global().histogram(self.name, self.help))
    }

    /// Records one observation when observability is enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::enabled() {
            self.metric().record(value);
        }
    }

    /// Merges a local shard when observability is enabled.
    pub fn merge_shard(&self, shard: &crate::metrics::HistogramShard) {
        if crate::enabled() && !shard.is_empty() {
            self.metric().merge_shard(shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_creates_and_reuses_named_metrics() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("test_total", "a test counter");
        let b = reg.counter("test_total", "a test counter");
        a.add(3);
        assert_eq!(b.get(), 3, "same name returns the same counter");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_conflicts() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("conflict", "counter first");
        let _ = reg.gauge("conflict", "gauge second");
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total", "last by name").add(2);
        reg.gauge("a_depth", "first by name").set(-3);
        let h = reg.histogram("m_ns", "histogram in the middle");
        h.record(3);
        h.record(3);
        h.record(900);
        let text = reg.render_prometheus();
        let a = text.find("a_depth").expect("gauge rendered");
        let m = text.find("m_ns").expect("histogram rendered");
        let z = text.find("z_total").expect("counter rendered");
        assert!(a < m && m < z, "sorted by name:\n{text}");
        assert!(text.contains("# TYPE a_depth gauge"));
        assert!(text.contains("a_depth -3"));
        assert!(text.contains("m_ns_bucket{le=\"3\"} 2"), "{text}");
        assert!(text.contains("m_ns_bucket{le=\"1023\"} 3"), "{text}");
        assert!(text.contains("m_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("m_ns_sum 906"));
        assert!(text.contains("m_ns_count 3"));
        assert!(text.contains("z_total 2"));
    }

    #[test]
    fn json_rendering_is_stable_and_integer_only() {
        let reg = MetricsRegistry::new();
        reg.counter("hits_total", "cache hits").add(7);
        reg.histogram("lat_ns", "latency").record(100);
        let one = reg.render_json();
        let two = reg.render_json();
        assert_eq!(one, two, "rendering is a pure snapshot");
        assert!(one.contains("\"name\": \"hits_total\""));
        assert!(one.contains("\"value\": 7"));
        assert!(one.contains("\"buckets\": [[127, 1]]"), "{one}");
        assert!(!one.contains('.'), "integers only: {one}");
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", "c");
        let h = reg.histogram("h_ns", "h");
        c.add(5);
        h.record(5);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn lazy_handles_gate_on_the_enabled_switch() {
        static SITE: LazyCounter = LazyCounter::new("lazy_gate_total", "gate test");
        let before = crate::enabled();
        crate::set_enabled(false);
        SITE.inc();
        crate::set_enabled(true);
        SITE.inc();
        SITE.inc();
        crate::set_enabled(before);
        assert_eq!(SITE.metric().get(), 2, "disabled increments are dropped");
    }
}
