//! Scoped tracing spans with a bounded ring-buffer sink.
//!
//! `span!("shard.sample", shard = i)` opens a [`SpanGuard`] that records a
//! [`SpanEvent`] — name, optional `key = value` argument, start and
//! duration in monotonic nanoseconds — into a fixed-capacity ring buffer
//! when it drops. Tracing has its own switch ([`set_tracing_enabled`]),
//! separate from the metrics switch, and is off by default: a disabled
//! span is one relaxed load, no clock read, no allocation.
//!
//! The sink is deliberately lossy: the buffer keeps the most recent
//! [`RING_CAPACITY`] events and overwrites the oldest, so tracing can stay
//! on in a serving process without unbounded growth. Nothing here touches
//! RNG state or reorders work — the integration suite proves the
//! seed-pinned goldens stay byte-identical with tracing enabled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::clock::monotonic_ns;

/// Maximum number of buffered span events; older events are overwritten.
pub const RING_CAPACITY: usize = 4096;

static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span recording is currently enabled.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off for the whole process.
pub fn set_tracing_enabled(on: bool) {
    TRACING_ENABLED.store(on, Ordering::Relaxed);
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (`"shard.sample"`, `"snapshot.load"`, …).
    pub name: &'static str,
    /// Argument key from `span!(name, key = value)` (empty when none).
    pub key: &'static str,
    /// Argument value (0 when none).
    pub value: u64,
    /// Monotonic nanoseconds at span entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

static RING: Mutex<VecDeque<SpanEvent>> = Mutex::new(VecDeque::new());

fn push_event(event: SpanEvent) {
    let mut ring = RING.lock().expect("span ring poisoned");
    if ring.len() == RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(event);
}

/// Drains and returns all buffered span events, oldest first.
pub fn drain_events() -> Vec<SpanEvent> {
    RING.lock().expect("span ring poisoned").drain(..).collect()
}

/// An open span; records its event into the ring buffer on drop. Create
/// via the [`span!`](crate::span!) macro.
#[must_use = "a span measures the scope it is alive for"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    key: &'static str,
    value: u64,
    start_ns: Option<u64>,
}

impl SpanGuard {
    /// Opens a span (no-op unless tracing is enabled).
    #[inline]
    pub fn enter(name: &'static str, key: &'static str, value: u64) -> Self {
        let start_ns = tracing_enabled().then(monotonic_ns);
        Self {
            name,
            key,
            value,
            start_ns,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start_ns) = self.start_ns {
            let duration_ns = monotonic_ns().saturating_sub(start_ns);
            push_event(SpanEvent {
                name: self.name,
                key: self.key,
                value: self.value,
                start_ns,
                duration_ns,
            });
        }
    }
}

/// Opens a scoped span: `span!("shard.sample")` or
/// `span!("shard.sample", shard = i)`. Bind the result to keep the span
/// open for the scope: `let _span = span!(…);`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, "", 0)
    };
    ($name:expr, $key:ident = $value:expr) => {
        $crate::span::SpanGuard::enter($name, stringify!($key), $value as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring buffer and the tracing switch are process-global; keep the
    // assertions inside one test so parallel test threads cannot interleave.
    #[test]
    fn spans_record_only_when_enabled_and_ring_is_bounded() {
        set_tracing_enabled(false);
        {
            let _span = crate::span!("quiet.scope");
        }
        assert!(
            drain_events().is_empty(),
            "disabled spans must leave no events"
        );

        set_tracing_enabled(true);
        {
            let _span = crate::span!("shard.sample", shard = 3usize);
        }
        {
            let _span = crate::span!("plain.scope");
        }
        let events = drain_events();
        set_tracing_enabled(false);
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].name, "shard.sample");
        assert_eq!(events[0].key, "shard");
        assert_eq!(events[0].value, 3);
        assert_eq!(events[1].name, "plain.scope");
        assert_eq!(events[1].key, "");

        // Overflow keeps the newest RING_CAPACITY events.
        set_tracing_enabled(true);
        for i in 0..(RING_CAPACITY + 10) {
            let _span = crate::span!("overflow.scope", i = i);
        }
        let events = drain_events();
        set_tracing_enabled(false);
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(events[0].value, 10, "oldest events were overwritten");
        assert_eq!(events[RING_CAPACITY - 1].value, (RING_CAPACITY + 9) as u64);
    }
}
