//! Lock-free metric primitives: counters, gauges and log-scale histograms.
//!
//! Everything here is a plain set of `AtomicU64`s updated with relaxed
//! ordering — a metric is a *sum* of recorded events, and addition is
//! commutative and associative, so the total is independent of the
//! interleaving and of which thread recorded what. That is the same merge
//! discipline the KMV sketches use, and it is what makes the 1/2/8-thread
//! metrics-determinism test in `tests/` hold without any synchronisation on
//! the hot path.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets: one per power of two of the recorded value
/// (`bucket i` holds values whose highest set bit is `i - 1`, bucket 0
/// holds the value 0), covering the full `u64` range.
pub const BUCKETS: usize = 65;

/// Index of the bucket a value lands in: 0 for 0, otherwise
/// `64 - leading_zeros` (i.e. `floor(log2(v)) + 1`).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
/// Bucket 0 holds exactly the value 0; bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i - 1]`.
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Upper-bound quantile estimate from a bucket-count snapshot.
///
/// The estimate is the inclusive upper bound ([`bucket_bound`]) of the
/// first bucket whose cumulative count reaches `ceil(q · total)` (and at
/// least 1), i.e. the smallest power-of-two bound guaranteed to be ≥ the
/// true `q`-quantile of the recorded multiset. Because it reads only the
/// bucket counts — a commutative sum — the estimate is invariant under
/// shard merge order (pinned by the proptest suite).
fn quantile_from_buckets(buckets: &[u64; BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_bound(i);
        }
    }
    bucket_bound(BUCKETS - 1)
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero (tests and bench isolation only; racing
    /// with concurrent writers loses their in-flight increments).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (use a negative value to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero (tests and bench isolation only).
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A fixed-bucket log₂-scale histogram of `u64` values (latencies in
/// nanoseconds, bucket sizes, round counts).
///
/// The bucket layout is fixed at compile time ([`BUCKETS`] powers of two),
/// so recording is a single index computation plus one relaxed atomic add —
/// no allocation, no locks, and concurrent recorders from any number of
/// threads produce the exact totals of the serial run.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            // Inline-const repeat: each element is a fresh atomic
            // (`[AtomicU64::new(0); BUCKETS]` would need Copy).
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Merges a local shard into this histogram: bucket-wise addition, one
    /// atomic add per non-empty bucket.
    pub fn merge_shard(&self, shard: &HistogramShard) {
        for (i, &n) in shard.buckets.iter().enumerate() {
            if n != 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        if shard.count != 0 {
            self.count.fetch_add(shard.count, Ordering::Relaxed);
            self.sum.fetch_add(shard.sum, Ordering::Relaxed);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wraps on overflow, like Prometheus).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile of the recorded values
    /// (`q` clamped to `[0, 1]`; 0 for an empty histogram).
    ///
    /// Returns the inclusive upper bound of the first bucket whose
    /// cumulative count reaches `ceil(q · count)` — the smallest
    /// power-of-two bound guaranteed to be ≥ the true quantile. The
    /// estimate is a pure function of the bucket counts, so it is
    /// independent of recording thread count and shard merge order.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets(), q)
    }

    /// Median upper bound (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th-percentile upper bound (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper bound (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Resets all buckets (tests and bench isolation only; not atomic with
    /// respect to concurrent recorders).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A plain, single-owner histogram shard: the per-thread accumulation form.
///
/// Workers record into a local shard (plain `u64` adds, no atomics at all)
/// and merge it into the shared [`Histogram`] once at the end of their
/// chunk. [`HistogramShard::merge`] is bucket-wise addition, so shards
/// merge associatively and in any order to identical totals — the property
/// the proptest suite pins down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramShard {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramShard {
    /// Creates an empty shard.
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation (plain arithmetic, no atomics).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Merges `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramShard) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper-bound estimate of the `q`-quantile (see
    /// [`Histogram::quantile`] for the exact semantics).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets, q)
    }

    /// Median upper bound (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th-percentile upper bound (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper bound (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value lands in the bucket whose bound is the first >= it.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_bound(i), "{v} above bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn counter_and_gauge_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_records_and_summarises() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        let buckets = h.buckets();
        assert_eq!(buckets[bucket_of(0)], 1);
        assert_eq!(buckets[bucket_of(1)], 2);
        assert_eq!(buckets[bucket_of(5)], 1);
        assert_eq!(buckets[bucket_of(1000)], 1);
        assert!((h.mean() - 201.4).abs() < 1e-9);
    }

    #[test]
    fn shard_merge_matches_direct_recording() {
        let mut a = HistogramShard::new();
        let mut b = HistogramShard::new();
        let mut direct = HistogramShard::new();
        for v in [3u64, 9, 1, 0] {
            a.record(v);
            direct.record(v);
        }
        for v in [1u64, 1 << 40, 17] {
            b.record(v);
            direct.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, direct, "merge equals direct recording");
        assert_eq!(ba, direct, "merge is order-independent");
    }

    #[test]
    fn shard_flush_into_shared_histogram() {
        let h = Histogram::new();
        let mut s = HistogramShard::new();
        s.record(4);
        s.record(4096);
        h.merge_shard(&s);
        h.record(4);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 4104);
        assert_eq!(h.buckets()[bucket_of(4)], 2);
    }

    #[test]
    fn quantile_reports_upper_bucket_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        for v in 1..=100u64 {
            h.record(v);
        }
        // The true p50 is 50, which lands in bucket [32, 63]; the estimate
        // is that bucket's inclusive upper bound.
        assert_eq!(h.p50(), 63);
        assert_eq!(h.quantile(0.5), bucket_bound(bucket_of(50)));
        // p99 → rank 99 → value 99 → bucket [64, 127].
        assert_eq!(h.p99(), bucket_bound(bucket_of(99)));
        // p999 → rank ceil(99.9) = 100 → value 100, same bucket as 99.
        assert_eq!(h.p999(), bucket_bound(bucket_of(100)));
        // Extreme and out-of-range q are clamped.
        assert_eq!(h.quantile(0.0), bucket_bound(bucket_of(1)));
        assert_eq!(h.quantile(1.0), bucket_bound(bucket_of(100)));
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_never_underestimates() {
        // For every q, the estimate must be >= the true quantile of the
        // recorded multiset (upper-bucket-bound semantics).
        let values = [0u64, 1, 1, 7, 8, 9, 1 << 20, u64::MAX];
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        for (i, q) in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .enumerate()
        {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            assert!(
                h.quantile(*q) >= truth,
                "case {i}: q={q} estimate {} below true {truth}",
                h.quantile(*q)
            );
        }
    }

    #[test]
    fn shard_quantile_matches_histogram_quantile() {
        let h = Histogram::new();
        let mut s = HistogramShard::new();
        for v in [5u64, 90, 1000, 12, 3] {
            h.record(v);
            s.record(v);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), s.quantile(q));
        }
        assert_eq!(s.p50(), h.p50());
        assert_eq!(s.p99(), h.p99());
        assert_eq!(s.p999(), h.p999());
        assert_eq!(HistogramShard::new().quantile(0.9), 0);
    }

    #[test]
    fn concurrent_histogram_totals_are_exact() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let expected: u64 = (0..4000u64).sum();
        assert_eq!(h.sum(), expected);
    }
}
