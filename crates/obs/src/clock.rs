//! The injectable [`Clock`] seam: the one place in the workspace (outside
//! the bench binaries) that may read `Instant::now()`/`SystemTime::now()`.
//!
//! Every instrumented crate asks *this* module for time, through a
//! process-global `&'static dyn Clock` that tests can swap for a
//! [`ManualClock`]. The `direct-instant` rule in `fairnn-audit` denies raw
//! wall-clock reads everywhere else, so reviewing the workspace's timing
//! behaviour means reviewing this file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::registry::LazyHistogram;

/// A source of monotonic and wall time, injectable for tests.
pub trait Clock: Send + Sync {
    /// Nanoseconds on a monotonic clock with an arbitrary epoch. Only
    /// differences are meaningful.
    fn monotonic_ns(&self) -> u64;

    /// Nanoseconds since the Unix epoch on the wall clock (0 if the system
    /// clock is before the epoch).
    fn wall_unix_ns(&self) -> u64;
}

/// The real clock: `Instant` anchored at first use, `SystemTime` for wall
/// time.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

/// The `Instant` all monotonic readings are measured from, fixed at the
/// first reading so the u64 nanosecond values stay small.
static ANCHOR: OnceLock<Instant> = OnceLock::new();

impl Clock for SystemClock {
    fn monotonic_ns(&self) -> u64 {
        let anchor = *ANCHOR.get_or_init(Instant::now);
        u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn wall_unix_ns(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .ok()
            .and_then(|d| u64::try_from(d.as_nanos()).ok())
            .unwrap_or(0)
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    mono: AtomicU64,
    wall: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at monotonic 0 / wall 0.
    pub const fn new() -> Self {
        Self {
            mono: AtomicU64::new(0),
            wall: AtomicU64::new(0),
        }
    }

    /// Advances both readings by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.mono.fetch_add(ns, Ordering::Relaxed);
        self.wall.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sets the wall reading (monotonic is only ever advanced).
    pub fn set_wall_unix_ns(&self, ns: u64) {
        self.wall.store(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn monotonic_ns(&self) -> u64 {
        self.mono.load(Ordering::Relaxed)
    }

    fn wall_unix_ns(&self) -> u64 {
        self.wall.load(Ordering::Relaxed)
    }
}

/// The process-global clock. Defaults to [`SystemClock`]; settable exactly
/// once (before first use) via [`set_clock`].
static CLOCK: OnceLock<&'static dyn Clock> = OnceLock::new();

/// Injects the process-global clock. Returns `false` when a clock (or the
/// default) is already in place — callers that need a guaranteed manual
/// clock should inject it before any instrumentation runs.
pub fn set_clock(clock: &'static dyn Clock) -> bool {
    CLOCK.set(clock).is_ok()
}

fn clock() -> &'static dyn Clock {
    *CLOCK.get_or_init(|| &SystemClock)
}

/// Monotonic nanoseconds from the process-global clock.
#[inline]
pub fn monotonic_ns() -> u64 {
    clock().monotonic_ns()
}

/// Wall nanoseconds since the Unix epoch from the process-global clock.
#[inline]
pub fn wall_unix_ns() -> u64 {
    clock().wall_unix_ns()
}

/// A scoped timer recording elapsed monotonic nanoseconds into a
/// [`LazyHistogram`] on drop.
///
/// Inert when observability is disabled: no clock read on construction and
/// none on drop, so the disabled cost is one relaxed load.
#[must_use = "a timer measures the scope it is alive for"]
#[derive(Debug)]
pub struct Timer {
    target: &'static LazyHistogram,
    start_ns: Option<u64>,
}

impl Timer {
    /// Starts timing into `target` (no-op when observability is off).
    #[inline]
    pub fn start(target: &'static LazyHistogram) -> Self {
        let start_ns = crate::enabled().then(monotonic_ns);
        Self { target, start_ns }
    }

    /// Stops the timer early and records, consuming it.
    pub fn stop(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start_ns {
            let elapsed = monotonic_ns().saturating_sub(start);
            self.target.record(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock;
        let a = c.monotonic_ns();
        let b = c.monotonic_ns();
        assert!(b >= a);
        // Wall time is after 2020-01-01 on any sane build machine.
        assert!(c.wall_unix_ns() > 1_577_836_800_000_000_000);
    }

    #[test]
    fn manual_clock_advances_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.monotonic_ns(), 0);
        c.advance_ns(250);
        assert_eq!(c.monotonic_ns(), 250);
        assert_eq!(c.wall_unix_ns(), 250);
        c.set_wall_unix_ns(1_000_000);
        assert_eq!(c.wall_unix_ns(), 1_000_000);
        assert_eq!(c.monotonic_ns(), 250, "wall set leaves monotonic alone");
    }
}
