//! Property tests for the histogram-shard merge discipline.
//!
//! Per-thread shards are merged into the shared histogram with the same
//! contract the KMV sketches established for shard estimates: the merge is
//! a commutative, associative fold, so the aggregate is a pure function of
//! the *multiset* of recorded values — independent of how work was split
//! across threads and of the order the shards came back in.

use fairnn_obs::{Histogram, HistogramShard};
use proptest::prelude::*;

/// Records each slice of `groups` into its own shard.
fn shards_of(groups: &[Vec<u64>]) -> Vec<HistogramShard> {
    groups
        .iter()
        .map(|values| {
            let mut shard = HistogramShard::new();
            for &v in values {
                shard.record(v);
            }
            shard
        })
        .collect()
}

/// Folds `shards` left-to-right into one accumulator shard.
fn fold(shards: &[HistogramShard]) -> HistogramShard {
    let mut acc = HistogramShard::new();
    for shard in shards {
        acc.merge(shard);
    }
    acc
}

fn arb_groups() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..=u64::MAX, 0..40), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): shards may be combined pairwise in any
    /// grouping (e.g. a merge tree) without changing the aggregate.
    #[test]
    fn merge_is_associative(groups in proptest::collection::vec(
        proptest::collection::vec(0u64..=u64::MAX, 0..40), 3..4))
    {
        let s = shards_of(&groups);
        let mut left = s[0].clone();
        left.merge(&s[1]);
        left.merge(&s[2]);

        let mut right_tail = s[1].clone();
        right_tail.merge(&s[2]);
        let mut right = s[0].clone();
        right.merge(&right_tail);

        prop_assert_eq!(left, right);
    }

    /// Merging the shards in any permutation yields the same aggregate:
    /// thread completion order must not show up in the totals.
    #[test]
    fn merge_is_order_independent(groups in arb_groups(), rotate in 0usize..8) {
        let shards = shards_of(&groups);
        let forward = fold(&shards);

        let mut reversed: Vec<HistogramShard> = shards.clone();
        reversed.reverse();
        prop_assert_eq!(&fold(&reversed), &forward);

        let mut rotated = shards.clone();
        rotated.rotate_left(rotate % shards.len().max(1));
        prop_assert_eq!(&fold(&rotated), &forward);
    }

    /// Sharded recording is invisible: N shards merged into the shared
    /// atomic histogram equal one thread recording every value directly,
    /// bucket for bucket, regardless of how values were split into groups.
    #[test]
    fn sharded_and_direct_recording_agree(groups in arb_groups()) {
        let sharded = Histogram::new();
        for shard in &shards_of(&groups) {
            sharded.merge_shard(shard);
        }

        let direct = Histogram::new();
        for values in &groups {
            for &v in values {
                direct.record(v);
            }
        }

        prop_assert_eq!(sharded.count(), direct.count());
        prop_assert_eq!(sharded.sum(), direct.sum());
        prop_assert_eq!(sharded.buckets(), direct.buckets());
    }

    /// Quantile estimates are a pure function of the recorded multiset:
    /// merging the shards in any permutation — or recording everything
    /// directly — yields identical p50/p99/p999 and arbitrary-q answers.
    #[test]
    fn quantiles_are_merge_order_invariant(groups in arb_groups(), rotate in 0usize..8, q_permille in 0u64..=1000) {
        let q = q_permille as f64 / 1000.0;
        let shards = shards_of(&groups);
        let forward = fold(&shards);

        let mut rotated = shards.clone();
        rotated.rotate_left(rotate % shards.len().max(1));
        let mut reversed = shards.clone();
        reversed.reverse();

        for other in [fold(&rotated), fold(&reversed)] {
            prop_assert_eq!(other.quantile(q), forward.quantile(q));
            prop_assert_eq!(other.p50(), forward.p50());
            prop_assert_eq!(other.p99(), forward.p99());
            prop_assert_eq!(other.p999(), forward.p999());
        }

        // Sharded-then-merged equals one thread recording every value.
        let direct = Histogram::new();
        for values in &groups {
            for &v in values {
                direct.record(v);
            }
        }
        prop_assert_eq!(direct.quantile(q), forward.quantile(q));
    }

    /// The estimate never undershoots: for any multiset and any q, the
    /// reported bound is ≥ the true q-quantile (upper-bucket-bound
    /// semantics).
    #[test]
    fn quantile_upper_bounds_the_truth(mut values in proptest::collection::vec(0u64..=u64::MAX, 1..200), q_permille in 0u64..=1000) {
        let q = q_permille as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        prop_assert!(h.quantile(q) >= values[rank - 1]);
    }
}
