//! Property-based tests for the point types and similarity measures.

use fairnn_space::{
    Dataset, DenseVector, Euclidean, InnerProduct, Jaccard, PointId, Similarity, SparseSet,
};
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = SparseSet> {
    proptest::collection::vec(0u32..200, 0..40).prop_map(SparseSet::from_items)
}

fn arb_vector(dim: usize) -> impl Strategy<Value = DenseVector> {
    proptest::collection::vec(-10.0f64..10.0, dim).prop_map(DenseVector::new)
}

proptest! {
    #[test]
    fn jaccard_is_symmetric(a in arb_set(), b in arb_set()) {
        prop_assert!((a.jaccard(&b) - b.jaccard(&a)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_is_bounded(a in arb_set(), b in arb_set()) {
        let j = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn jaccard_self_similarity_is_one(a in arb_set()) {
        prop_assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn intersection_never_exceeds_smaller_set(a in arb_set(), b in arb_set()) {
        let inter = a.intersection_size(&b);
        prop_assert!(inter <= a.len().min(b.len()));
        prop_assert!(a.union_size(&b) >= a.len().max(b.len()));
    }

    #[test]
    fn euclidean_triangle_inequality(a in arb_vector(6), b in arb_vector(6), c in arb_vector(6)) {
        let ab = a.distance(&b);
        let bc = b.distance(&c);
        let ac = a.distance(&c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn normalized_vectors_are_unit_or_zero(v in arb_vector(8)) {
        let n = v.normalized();
        prop_assert!(n.is_unit(1e-9) || v.norm() == 0.0);
    }

    #[test]
    fn unit_vector_distance_inner_product_relation(a in arb_vector(5), b in arb_vector(5)) {
        prop_assume!(a.norm() > 1e-6 && b.norm() > 1e-6);
        let (u, w) = (a.normalized(), b.normalized());
        let lhs = u.squared_distance(&w);
        let rhs = 2.0 - 2.0 * InnerProduct.similarity(&u, &w);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn ball_size_is_monotone_in_radius(
        points in proptest::collection::vec(arb_vector(3), 1..30),
        r1 in 0.0f64..5.0,
        r2 in 0.0f64..5.0,
    ) {
        let data = Dataset::new(points.clone());
        let q = points[0].clone();
        let (small, large) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(data.ball_size(&Euclidean, &q, small) <= data.ball_size(&Euclidean, &q, large));
    }

    #[test]
    fn similar_count_is_antitone_in_threshold(
        sets in proptest::collection::vec(arb_set(), 1..30),
        t1 in 0.0f64..1.0,
        t2 in 0.0f64..1.0,
    ) {
        let data = Dataset::new(sets.clone());
        let q = sets[0].clone();
        let (low, high) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(data.similar_count(&Jaccard, &q, high) <= data.similar_count(&Jaccard, &q, low));
    }

    #[test]
    fn ball_indices_agree_with_ball_size(
        points in proptest::collection::vec(arb_vector(3), 1..25),
        r in 0.0f64..5.0,
    ) {
        let data = Dataset::new(points.clone());
        let q = points[points.len() / 2].clone();
        let ids = data.ball_indices(&Euclidean, &q, r);
        prop_assert_eq!(ids.len(), data.ball_size(&Euclidean, &q, r));
        for id in ids {
            prop_assert!(id.index() < data.len());
            prop_assert!(data.point(id).distance(&q) <= r);
        }
    }

    #[test]
    fn point_ids_are_dense_and_sorted(
        sets in proptest::collection::vec(arb_set(), 0..20),
    ) {
        let data = Dataset::new(sets);
        let ids: Vec<PointId> = data.ids().collect();
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(id.index(), i);
        }
    }
}
