//! Similarity and distance measures.
//!
//! The paper formulates neighbourhoods both in terms of distances
//! (`D(p, q) <= r`, Section 2.1) and similarities (`S(p, q) >= r`, the
//! "Comment" in Section 2.1). We model both sides with two small traits so
//! that the samplers in `fairnn-core` can be written once per orientation:
//!
//! * [`Distance`] — smaller is closer, the neighbourhood is
//!   `{p : D(p, q) <= r}`;
//! * [`Similarity`] — larger is closer, the neighbourhood is
//!   `{p : S(p, q) >= r}`.
//!
//! Implementations provided here: [`Euclidean`], [`SquaredEuclidean`] and
//! [`Hamming`] distances, and [`Jaccard`], [`InnerProduct`] and [`Cosine`]
//! similarities.

use crate::point::{BitVector, DenseVector, SparseSet};
use crate::prefilter::{ScreenRow, SetScreen, VectorScreen};

/// A dissimilarity measure: lower values mean more similar points.
pub trait Distance<P> {
    /// Distance between `a` and `b`. Must be non-negative and symmetric.
    fn distance(&self, a: &P, b: &P) -> f64;

    /// Returns `true` when `a` is within distance `r` of `b`.
    fn is_near(&self, a: &P, b: &P, r: f64) -> bool {
        self.distance(a, b) <= r
    }

    /// Precomputed screening row for [`Distance::may_be_within`], or `None`
    /// when this metric has no admissible pre-screen (the default).
    fn screen_row(&self, _point: &P) -> Option<ScreenRow> {
        None
    }

    /// Admissible candidate screen over precomputed rows: may return
    /// `false` only when `distance(a, b) <= r` is certainly false. The
    /// default accepts everything.
    fn may_be_within(&self, _a: &ScreenRow, _b: &ScreenRow, _r: f64) -> bool {
        true
    }
}

/// A similarity measure: higher values mean more similar points.
pub trait Similarity<P> {
    /// Similarity of `a` and `b`. Must be symmetric.
    fn similarity(&self, a: &P, b: &P) -> f64;

    /// Returns `true` when the similarity of `a` and `b` is at least `r`.
    fn is_near(&self, a: &P, b: &P, r: f64) -> bool {
        self.similarity(a, b) >= r
    }

    /// Precomputed screening row for [`Similarity::may_reach`], or `None`
    /// when this measure has no admissible pre-screen (the default).
    fn screen_row(&self, _point: &P) -> Option<ScreenRow> {
        None
    }

    /// Admissible candidate screen over precomputed rows: may return
    /// `false` only when `similarity(a, b) >= r` is certainly false. The
    /// default accepts everything.
    fn may_reach(&self, _a: &ScreenRow, _b: &ScreenRow, _r: f64) -> bool {
        true
    }
}

/// Euclidean (ℓ2) distance between dense vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Distance<DenseVector> for Euclidean {
    fn distance(&self, a: &DenseVector, b: &DenseVector) -> f64 {
        a.distance(b)
    }

    fn screen_row(&self, point: &DenseVector) -> Option<ScreenRow> {
        Some(ScreenRow::Vector(VectorScreen::of(point)))
    }

    fn may_be_within(&self, a: &ScreenRow, b: &ScreenRow, r: f64) -> bool {
        match (a, b) {
            (ScreenRow::Vector(a), ScreenRow::Vector(b)) => a.may_be_within(b, r),
            _ => true,
        }
    }
}

/// Squared Euclidean distance; monotone in [`Euclidean`] but cheaper to
/// evaluate, useful inside inner loops and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Distance<DenseVector> for SquaredEuclidean {
    fn distance(&self, a: &DenseVector, b: &DenseVector) -> f64 {
        a.squared_distance(b)
    }

    fn screen_row(&self, point: &DenseVector) -> Option<ScreenRow> {
        Some(ScreenRow::Vector(VectorScreen::of(point)))
    }

    fn may_be_within(&self, a: &ScreenRow, b: &ScreenRow, r: f64) -> bool {
        match (a, b) {
            (ScreenRow::Vector(a), ScreenRow::Vector(b)) => a.may_be_within_squared(b, r),
            _ => true,
        }
    }
}

/// Hamming distance between bit vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming;

impl Distance<BitVector> for Hamming {
    fn distance(&self, a: &BitVector, b: &BitVector) -> f64 {
        a.hamming(b) as f64
    }
}

/// Jaccard similarity between item sets, `|A ∩ B| / |A ∪ B|`.
///
/// This is the similarity measure of the paper's experimental evaluation
/// (Section 6): user profiles are sets of movies/artists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaccard;

impl Similarity<SparseSet> for Jaccard {
    fn similarity(&self, a: &SparseSet, b: &SparseSet) -> f64 {
        a.jaccard(b)
    }

    fn screen_row(&self, point: &SparseSet) -> Option<ScreenRow> {
        Some(ScreenRow::Set(SetScreen::of(point)))
    }

    fn may_reach(&self, a: &ScreenRow, b: &ScreenRow, r: f64) -> bool {
        match (a, b) {
            (ScreenRow::Set(a), ScreenRow::Set(b)) => a.may_reach_jaccard(b, r),
            _ => true,
        }
    }
}

/// Inner-product similarity between dense vectors.
///
/// Section 5 states its bounds for unit-length vectors under inner product;
/// for unit vectors `⟨p, q⟩ = 1 - ||p - q||² / 2`, so thresholds translate
/// directly between the two formulations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InnerProduct;

impl Similarity<DenseVector> for InnerProduct {
    fn similarity(&self, a: &DenseVector, b: &DenseVector) -> f64 {
        a.dot(b)
    }
}

/// Cosine similarity between dense vectors (inner product of the normalised
/// vectors). Equal to [`InnerProduct`] on unit-length inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Similarity<DenseVector> for Cosine {
    fn similarity(&self, a: &DenseVector, b: &DenseVector) -> f64 {
        a.cosine(b)
    }
}

/// Converts a Euclidean distance threshold `r` between unit vectors into the
/// equivalent inner-product threshold `α = 1 - r²/2`.
pub fn euclidean_radius_to_inner_product(r: f64) -> f64 {
    1.0 - r * r / 2.0
}

/// Converts an inner-product threshold `α` between unit vectors into the
/// equivalent Euclidean distance threshold `r = sqrt(2 - 2α)`.
pub fn inner_product_to_euclidean_radius(alpha: f64) -> f64 {
    (2.0 - 2.0 * alpha).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_and_squared() {
        let a = DenseVector::new(vec![0.0, 0.0]);
        let b = DenseVector::new(vec![3.0, 4.0]);
        assert_eq!(Euclidean.distance(&a, &b), 5.0);
        assert_eq!(SquaredEuclidean.distance(&a, &b), 25.0);
        assert!(Euclidean.is_near(&a, &b, 5.0));
        assert!(!Euclidean.is_near(&a, &b, 4.9));
    }

    #[test]
    fn hamming_distance() {
        let a = BitVector::from_bools(&[true, true, false]);
        let b = BitVector::from_bools(&[false, true, true]);
        assert_eq!(Hamming.distance(&a, &b), 2.0);
        assert!(Hamming.is_near(&a, &b, 2.0));
        assert!(!Hamming.is_near(&a, &b, 1.0));
    }

    #[test]
    fn jaccard_similarity_threshold() {
        let a = SparseSet::from_items(vec![1, 2, 3, 4]);
        let b = SparseSet::from_items(vec![1, 2, 3, 5]);
        let s = Jaccard.similarity(&a, &b);
        assert!((s - 0.6).abs() < 1e-12);
        assert!(Jaccard.is_near(&a, &b, 0.5));
        assert!(!Jaccard.is_near(&a, &b, 0.7));
    }

    #[test]
    fn inner_product_and_cosine_agree_on_unit_vectors() {
        let a = DenseVector::new(vec![0.6, 0.8]);
        let b = DenseVector::new(vec![1.0, 0.0]);
        assert!((InnerProduct.similarity(&a, &b) - Cosine.similarity(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn threshold_conversions_roundtrip() {
        for alpha in [0.9, 0.5, 0.0, -0.5] {
            let r = inner_product_to_euclidean_radius(alpha);
            let back = euclidean_radius_to_inner_product(r);
            assert!((alpha - back).abs() < 1e-12, "alpha={alpha} back={back}");
        }
        assert_eq!(inner_product_to_euclidean_radius(1.0), 0.0);
    }

    #[test]
    fn similarity_is_near_uses_geq() {
        let a = SparseSet::from_items(vec![1, 2]);
        let b = SparseSet::from_items(vec![1, 2]);
        assert!(Jaccard.is_near(&a, &b, 1.0));
    }
}
