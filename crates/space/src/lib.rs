//! Point types, similarity and distance measures, and exact-neighbourhood
//! datasets used throughout the fair near-neighbor search reproduction.
//!
//! The paper (Aumüller, Pagh, Silvestri, PODS 2020) works in a generic
//! metric/similarity space. Two concrete spaces are exercised by its
//! evaluation:
//!
//! * **set space with Jaccard similarity** — user profiles represented as
//!   sets of item ids (MovieLens / Last.FM experiments, Section 6);
//! * **unit vectors with inner-product similarity** — the nearly-linear
//!   space filter data structure of Section 5.
//!
//! This crate provides the corresponding point types ([`SparseSet`] and
//! [`DenseVector`]), the similarity/distance functions, and a [`Dataset`]
//! container with exact (linear-scan) neighbourhood queries. The exact
//! queries serve as ground truth for the fair samplers and directly power the
//! Figure 3 experiment (the `b_S(q, cr)/b_S(q, r)` cost ratio).
//!
//! # Quick example
//!
//! ```
//! use fairnn_space::{SparseSet, Jaccard, Similarity, Dataset};
//!
//! let users = vec![
//!     SparseSet::from_items(vec![1, 2, 3, 4]),
//!     SparseSet::from_items(vec![1, 2, 3, 9]),
//!     SparseSet::from_items(vec![7, 8]),
//! ];
//! let data = Dataset::new(users);
//! let query = SparseSet::from_items(vec![1, 2, 3, 4]);
//!
//! // Exact neighbourhood at Jaccard similarity >= 0.5.
//! let near = data.similar_indices(&Jaccard, &query, 0.5);
//! assert_eq!(near.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod metric;
pub mod point;
pub mod prefilter;
pub mod snapshot;

pub use dataset::Dataset;
pub use metric::{
    Cosine, Distance, Euclidean, Hamming, InnerProduct, Jaccard, Similarity, SquaredEuclidean,
};
pub use point::{BitVector, DenseVector, PointId, SparseSet};
pub use prefilter::{ScreenRow, SetScreen, VectorScreen};
