//! [`Codec`] implementations for the point types and measures, so the data
//! structures built over them can be persisted by `fairnn-snapshot`.
//!
//! The measures ([`Jaccard`], [`Euclidean`], …) are stateless unit structs;
//! they encode to zero bytes and exist in the format only through the
//! structure that embeds them — which keeps a snapshot's similarity
//! orientation a property of the *type* being loaded, exactly like in
//! memory.

use crate::metric::{Cosine, Euclidean, Hamming, InnerProduct, Jaccard, SquaredEuclidean};
use crate::point::{DenseVector, PointId, SparseSet};
use fairnn_snapshot::{
    decode_pod_slice, encode_pod_slice, ArcSlice, Codec, Decoder, Encoder, SliceCodec,
    SnapshotError,
};

impl Codec for PointId {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u32(self.0);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        Ok(PointId(dec.read_u32()?))
    }
}

// `PointId` is a `#[repr(transparent)]` wrapper over `u32`, so id columns
// (bucket entry arrays, shard maps) can be viewed in place from a loaded
// snapshot image instead of being decoded element by element.
fairnn_snapshot::impl_pod!(PointId, u32);

impl SliceCodec for PointId {
    fn encode_slice(items: &[Self], enc: &mut Encoder) {
        encode_pod_slice(items, enc, |enc, id| id.encode(enc));
    }

    fn decode_slice(dec: &mut Decoder<'_>) -> Result<ArcSlice<Self>, SnapshotError> {
        decode_pod_slice(dec, PointId::decode)
    }
}

impl Codec for SparseSet {
    fn encode(&self, enc: &mut Encoder) {
        let items = self.items();
        enc.write_len(items.len());
        for &item in items {
            enc.write_u32(item);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let len = dec.read_len()?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(dec.read_u32()?);
        }
        if !items.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt(
                "sparse set items are not strictly increasing".into(),
            ));
        }
        Ok(SparseSet::from_sorted(items))
    }
}

impl Codec for DenseVector {
    fn encode(&self, enc: &mut Encoder) {
        let values = self.values();
        enc.write_len(values.len());
        for &v in values {
            enc.write_f64(v);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let len = dec.read_len()?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(dec.read_f64()?);
        }
        Ok(DenseVector::new(values))
    }
}

/// Implements a zero-byte [`Codec`] for a stateless unit-struct measure.
macro_rules! impl_unit_codec {
    ($($t:ty),+ $(,)?) => {$(
        impl Codec for $t {
            fn encode(&self, _enc: &mut Encoder) {}

            fn decode(_dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
                Ok(<$t>::default())
            }
        }
    )+};
}

impl_unit_codec!(
    Jaccard,
    Euclidean,
    SquaredEuclidean,
    Hamming,
    InnerProduct,
    Cosine
);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let mut enc = Encoder::new();
        value.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(T::decode(&mut dec).expect("decode"), value);
        dec.finish().expect("fully consumed");
    }

    #[test]
    fn point_types_roundtrip() {
        roundtrip(PointId(77));
        roundtrip(SparseSet::from_items(vec![9, 2, 2, 7]));
        roundtrip(SparseSet::new());
        roundtrip(DenseVector::new(vec![0.5, -1.25, f64::NEG_INFINITY]));
        roundtrip(Jaccard);
        roundtrip(Euclidean);
    }

    #[test]
    fn unsorted_sparse_set_payload_is_corrupt() {
        let mut enc = Encoder::new();
        enc.write_len(2);
        enc.write_u32(5);
        enc.write_u32(3); // out of order
        let bytes = enc.into_bytes();
        assert!(matches!(
            SparseSet::decode(&mut Decoder::new(&bytes)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Duplicates violate the strictly-increasing invariant too.
        let mut enc = Encoder::new();
        enc.write_len(2);
        enc.write_u32(4);
        enc.write_u32(4);
        let bytes = enc.into_bytes();
        assert!(matches!(
            SparseSet::decode(&mut Decoder::new(&bytes)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn measures_encode_to_zero_bytes() {
        let mut enc = Encoder::new();
        Jaccard.encode(&mut enc);
        Euclidean.encode(&mut enc);
        assert!(enc.is_empty());
    }
}
