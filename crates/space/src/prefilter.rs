//! Admissible candidate pre-screens.
//!
//! Exact predicate evaluation — a sorted-set merge for Jaccard, a full
//! `O(d)` pass for Euclidean — is the dominant per-candidate cost of every
//! sampler walk. A [`ScreenRow`] is a small precomputed summary of a point
//! (16 saturating bucket counts for a set, a cached norm plus an 8-bit
//! quantized coordinate row for a vector) from which a *bound* on the
//! similarity or distance can be computed with far less memory traffic.
//!
//! Every screen here is **admissible by construction**: it may only answer
//! "certainly not near" when the exact predicate would also answer false.
//! Candidates that pass the screen still go through the exact evaluation,
//! so screened sampling is bit-for-bit identical to unscreened sampling —
//! the screen only removes exact evaluations that were going to fail.

use crate::point::{DenseVector, SparseSet};

/// Number of item buckets in a [`SetScreen`] histogram.
const SET_BUCKETS: usize = 16;

/// Multiplicative relative slack applied to floating-point bounds before a
/// rejection. The real-number bounds below are exact; the slack absorbs the
/// ulp-level rounding of evaluating them in `f64`, keeping rejections
/// conservative by many orders of magnitude more than the rounding error.
const FLOAT_SLACK: f64 = 1e-9;

/// A precomputed screening summary of one point. Built once per indexed
/// point (and once per query), consulted before each exact evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScreenRow {
    /// Summary of a [`SparseSet`]: see [`SetScreen`].
    Set(SetScreen),
    /// Summary of a [`DenseVector`]: see [`VectorScreen`].
    Vector(VectorScreen),
}

/// Jaccard screen for a [`SparseSet`]: the set size plus a 16-bucket
/// saturating histogram of its items (16 bytes per point).
///
/// For two sets the per-bucket minima bound the intersection size from
/// above, and Jaccard similarity is increasing in the intersection size, so
/// `Σ min(hᵃᵢ, hᵇᵢ) / (|a| + |b| − Σ min(hᵃᵢ, hᵇᵢ))` is an upper bound on
/// `J(a, b)`. A bucket where *both* counts saturate contributes the trivial
/// bound `min(|a|, |b|)` instead (a saturated count only says "at least
/// 255"), which keeps the bound admissible for arbitrarily large sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetScreen {
    len: u32,
    histogram: [u8; SET_BUCKETS],
}

impl SetScreen {
    /// Builds the screen of a set.
    pub fn of(set: &SparseSet) -> Self {
        let mut histogram = [0u8; SET_BUCKETS];
        for &item in set.items() {
            // Multiplicative mix, top 4 bits: consecutive item ids spread
            // over distinct buckets instead of piling into `item % 16`.
            let bucket = (item.wrapping_mul(0x9E37_79B9) >> 28) as usize;
            histogram[bucket] = histogram[bucket].saturating_add(1);
        }
        Self {
            len: u32::try_from(set.len()).expect("set exceeds u32 items"),
            histogram,
        }
    }

    /// An upper bound on `|a ∩ b|`.
    fn intersection_upper_bound(&self, other: &Self) -> u64 {
        let smaller = u64::from(self.len.min(other.len));
        let mut bound = 0u64;
        for (&x, &y) in self.histogram.iter().zip(other.histogram.iter()) {
            bound += if x == u8::MAX && y == u8::MAX {
                smaller
            } else {
                u64::from(x.min(y))
            };
        }
        bound.min(smaller)
    }

    /// Returns `false` only when `jaccard(a, b) >= threshold` is certainly
    /// false.
    pub fn may_reach_jaccard(&self, other: &Self, threshold: f64) -> bool {
        let total = u64::from(self.len) + u64::from(other.len);
        if total == 0 {
            return true; // two empty sets have Jaccard 1
        }
        let cap = self.intersection_upper_bound(other);
        // Jaccard is increasing in the intersection size, so the capped
        // ratio bounds it from above; union_lb = total − cap ≥ max(|a|, |b|)
        // − ... ≥ 1 whenever total ≥ 1 because cap ≤ min(|a|, |b|).
        let upper = cap as f64 / (total - cap) as f64;
        upper >= threshold
    }
}

/// Euclidean screen for a [`DenseVector`]: its cached norm plus an 8-bit
/// quantized coordinate row with the per-row dequantization parameters and
/// the *measured* maximum quantization error.
///
/// Two lower bounds on `‖a − b‖` are available from the rows alone:
/// `|‖a‖ − ‖b‖|` (reverse triangle inequality) and the coordinate-wise
/// bound `Σ max(0, |âᵢ − b̂ᵢ| − εₐ − ε_b)²` over the dequantized values —
/// each dequantized coordinate is within its row's measured `ε` of the true
/// one. If either bound exceeds the radius, the exact distance does too.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorScreen {
    norm: f64,
    lo: f64,
    step: f64,
    /// Measured `max_i |vᵢ − (lo + qᵢ·step)|` of this row — an exact bound
    /// on its dequantization error, whatever rounding produced `q`.
    eps: f64,
    q: Vec<u8>,
}

impl VectorScreen {
    /// Builds the screen of a vector.
    pub fn of(v: &DenseVector) -> Self {
        let values = v.values();
        let norm = v.norm();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in values {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // `f64::min`/`max` skip NaN operands, so `lo`/`hi` can look finite
        // for a row containing NaN — check every coordinate explicitly.
        if values.is_empty() || !values.iter().all(|x| x.is_finite()) {
            // Empty or non-finite input: a row with infinite error never
            // rejects, so the exact path keeps full authority.
            return Self {
                norm,
                lo: 0.0,
                step: 0.0,
                eps: f64::INFINITY,
                q: vec![0; values.len()],
            };
        }
        let step = (hi - lo) / f64::from(u8::MAX);
        let q: Vec<u8> = if step > 0.0 {
            values
                .iter()
                .map(|&x| ((x - lo) / step).round().clamp(0.0, 255.0) as u8)
                .collect()
        } else {
            vec![0; values.len()]
        };
        // The error bound is measured, not derived: whatever the rounding
        // above did, `eps` is exact for this row.
        let eps = values
            .iter()
            .zip(q.iter())
            .map(|(&x, &qi)| (x - (lo + f64::from(qi) * step)).abs())
            .fold(0.0f64, f64::max);
        Self {
            norm,
            lo,
            step,
            eps,
            q,
        }
    }

    /// Dequantized coordinate `i`.
    #[inline]
    fn coord(&self, i: usize) -> f64 {
        self.lo + f64::from(self.q[i]) * self.step
    }

    /// A lower bound on `‖a − b‖²`, or `0.0` when the rows are incomparable
    /// (dimension mismatch — the exact path keeps its panic behavior).
    fn squared_distance_lower_bound(&self, other: &Self) -> f64 {
        if self.q.len() != other.q.len() {
            return 0.0;
        }
        let slack = self.eps + other.eps;
        let mut acc = 0.0f64;
        for i in 0..self.q.len() {
            let gap = (self.coord(i) - other.coord(i)).abs() - slack;
            if gap > 0.0 {
                acc += gap * gap;
            }
        }
        let norm_gap = (self.norm - other.norm).abs();
        acc.max(norm_gap * norm_gap)
    }

    /// Returns `false` only when `‖a − b‖ ≤ radius` is certainly false.
    pub fn may_be_within(&self, other: &Self, radius: f64) -> bool {
        let r = radius.max(0.0);
        self.may_be_within_squared(other, r * r)
    }

    /// Returns `false` only when `‖a − b‖² ≤ squared_radius` is certainly
    /// false.
    pub fn may_be_within_squared(&self, other: &Self, squared_radius: f64) -> bool {
        let lb = self.squared_distance_lower_bound(other);
        if !lb.is_finite() {
            return true;
        }
        lb * (1.0 - FLOAT_SLACK) <= squared_radius.max(0.0) * (1.0 + FLOAT_SLACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: Vec<u32>) -> (SparseSet, SetScreen) {
        let s = SparseSet::from_items(items);
        let screen = SetScreen::of(&s);
        (s, screen)
    }

    #[test]
    fn set_screen_is_admissible_on_fixed_examples() {
        let (a, sa) = set(vec![1, 2, 3, 4]);
        let (b, sb) = set(vec![1, 2, 3, 5]);
        let (c, sc) = set(vec![900, 901, 902]);
        for threshold in [0.0, 0.3, 0.5, 0.6, 0.99, 1.0] {
            if a.jaccard(&b) >= threshold {
                assert!(sa.may_reach_jaccard(&sb, threshold));
            }
            if a.jaccard(&c) >= threshold {
                assert!(sa.may_reach_jaccard(&sc, threshold));
            }
        }
    }

    #[test]
    fn set_screen_rejects_disjoint_ranges() {
        let (_, sa) = set((0..40).collect());
        let (_, sb) = set((10_000..10_040).collect());
        // Disjoint sets with clashing histogram buckets can still pass, but
        // the size screen must at minimum reject wildly mismatched sizes.
        let (_, tiny) = set(vec![1]);
        assert!(!sa.may_reach_jaccard(&tiny, 0.5), "1/40 cannot reach 0.5");
        let _ = sb;
    }

    #[test]
    fn set_screen_saturated_buckets_stay_admissible() {
        // 600 consecutive ids saturate several buckets; identical sets have
        // Jaccard 1 and must always pass.
        let (_, s) = set((0..600).collect());
        assert!(s.may_reach_jaccard(&s, 1.0));
    }

    #[test]
    fn empty_sets_always_pass() {
        let (_, e) = set(vec![]);
        assert!(e.may_reach_jaccard(&e, 1.0));
    }

    #[test]
    fn vector_screen_is_admissible_on_fixed_examples() {
        let a = DenseVector::new(vec![0.0, 0.0, 1.0]);
        let b = DenseVector::new(vec![0.1, -0.05, 0.9]);
        let c = DenseVector::new(vec![5.0, 5.0, 5.0]);
        let (va, vb, vc) = (
            VectorScreen::of(&a),
            VectorScreen::of(&b),
            VectorScreen::of(&c),
        );
        for r in [0.0, 0.05, 0.2, 1.0, 10.0] {
            if a.distance(&b) <= r {
                assert!(va.may_be_within(&vb, r), "false reject at r={r}");
            }
            if a.distance(&c) <= r {
                assert!(va.may_be_within(&vc, r), "false reject at r={r}");
            }
        }
        // And the screen does reject what it can prove far.
        assert!(!va.may_be_within(&vc, 1.0));
    }

    #[test]
    fn vector_screen_identical_vectors_pass_radius_zero() {
        let a = DenseVector::new(vec![0.25, -0.75, 0.5, 0.125]);
        let s = VectorScreen::of(&a);
        assert!(s.may_be_within(&s.clone(), 0.0));
        assert!(s.may_be_within_squared(&s.clone(), 0.0));
    }

    #[test]
    fn vector_screen_constant_and_empty_vectors() {
        let flat = VectorScreen::of(&DenseVector::new(vec![2.0; 8]));
        assert!(flat.may_be_within(&flat.clone(), 0.0));
        let empty = VectorScreen::of(&DenseVector::new(vec![]));
        assert!(empty.may_be_within(&empty.clone(), 0.0));
    }

    #[test]
    fn vector_screen_non_finite_inputs_never_reject() {
        let weird = VectorScreen::of(&DenseVector::new(vec![f64::NAN, 1.0]));
        let normal = VectorScreen::of(&DenseVector::new(vec![0.0, 0.0]));
        assert!(weird.may_be_within(&normal, 0.0));
        assert!(normal.may_be_within(&weird, 0.0));
    }

    #[test]
    fn dimension_mismatch_never_rejects() {
        let a = VectorScreen::of(&DenseVector::new(vec![0.0, 100.0]));
        let b = VectorScreen::of(&DenseVector::new(vec![0.0]));
        assert!(a.may_be_within(&b, 0.0), "exact path owns the panic");
    }
}
