//! Dataset container with exact (linear-scan) neighbourhood queries.
//!
//! The exact queries serve two roles in the reproduction:
//!
//! 1. **Ground truth** for every fair sampler — the target distribution of
//!    the r-NNS / r-NNIS problem is uniform over the exact neighbourhood
//!    `B_S(q, r)`, which a linear scan computes trivially (at a cost the
//!    paper wants to avoid, but which is fine at test scale).
//! 2. The **Figure 3 experiment**, which reports the ratio
//!    `b_S(q, cr) / b_S(q, r)` of exact neighbourhood sizes at two
//!    thresholds.

use crate::metric::{Distance, Similarity};
use crate::point::PointId;

/// An immutable collection of points with dense [`PointId`]s `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset<P> {
    points: Vec<P>,
}

impl<P> Dataset<P> {
    /// Wraps a vector of points; point `i` gets id `PointId(i)`.
    pub fn new(points: Vec<P>) -> Self {
        assert!(
            points.len() <= u32::MAX as usize,
            "dataset too large for u32 point ids"
        );
        Self { points }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the dataset has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the point with the given id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    #[inline]
    pub fn point(&self, id: PointId) -> &P {
        &self.points[id.index()]
    }

    /// Returns the point with the given id, or `None` if out of range.
    pub fn get(&self, id: PointId) -> Option<&P> {
        self.points.get(id.index())
    }

    /// Slice of all points, indexable by `PointId::index`.
    #[inline]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Iterator over `(PointId, &P)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &P)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (PointId::from_index(i), p))
    }

    /// Iterator over all point ids.
    pub fn ids(&self) -> impl Iterator<Item = PointId> + '_ {
        (0..self.points.len()).map(PointId::from_index)
    }

    /// Exact neighbourhood under a distance: ids of all points within
    /// distance `r` of `query` (the set `B_S(q, r)` of the paper).
    pub fn ball_indices<D, Q>(&self, metric: &D, query: &Q, r: f64) -> Vec<PointId>
    where
        D: Distance<P>,
        Q: AsPoint<P>,
    {
        let q = query.as_point();
        self.iter()
            .filter(|(_, p)| metric.distance(q, p) <= r)
            .map(|(id, _)| id)
            .collect()
    }

    /// Exact neighbourhood size under a distance, `b_S(q, r)`.
    pub fn ball_size<D, Q>(&self, metric: &D, query: &Q, r: f64) -> usize
    where
        D: Distance<P>,
        Q: AsPoint<P>,
    {
        let q = query.as_point();
        self.points
            .iter()
            .filter(|p| metric.distance(q, p) <= r)
            .count()
    }

    /// Exact neighbourhood under a similarity: ids of all points with
    /// similarity at least `threshold` to `query`.
    pub fn similar_indices<S, Q>(&self, measure: &S, query: &Q, threshold: f64) -> Vec<PointId>
    where
        S: Similarity<P>,
        Q: AsPoint<P>,
    {
        let q = query.as_point();
        self.iter()
            .filter(|(_, p)| measure.similarity(q, p) >= threshold)
            .map(|(id, _)| id)
            .collect()
    }

    /// Exact neighbourhood size under a similarity.
    pub fn similar_count<S, Q>(&self, measure: &S, query: &Q, threshold: f64) -> usize
    where
        S: Similarity<P>,
        Q: AsPoint<P>,
    {
        let q = query.as_point();
        self.points
            .iter()
            .filter(|p| measure.similarity(q, p) >= threshold)
            .count()
    }

    /// All pairwise similarities between a query and every dataset point,
    /// as `(id, similarity)` pairs. Used by the experiment harness to group
    /// output frequencies by similarity level (Figure 1).
    pub fn similarities_to<S, Q>(&self, measure: &S, query: &Q) -> Vec<(PointId, f64)>
    where
        S: Similarity<P>,
        Q: AsPoint<P>,
    {
        let q = query.as_point();
        self.iter()
            .map(|(id, p)| (id, measure.similarity(q, p)))
            .collect()
    }
}

impl<P> std::ops::Index<PointId> for Dataset<P> {
    type Output = P;

    fn index(&self, id: PointId) -> &P {
        self.point(id)
    }
}

impl<P> FromIterator<P> for Dataset<P> {
    fn from_iter<T: IntoIterator<Item = P>>(iter: T) -> Self {
        Dataset::new(iter.into_iter().collect())
    }
}

/// Helper trait allowing queries to be passed either as a point value or as
/// a reference; keeps the `Dataset` query methods ergonomic for both owned
/// query points and points borrowed from another dataset.
pub trait AsPoint<P> {
    /// Borrows the underlying point.
    fn as_point(&self) -> &P;
}

impl<P> AsPoint<P> for P {
    fn as_point(&self) -> &P {
        self
    }
}

impl<P> AsPoint<P> for &P {
    fn as_point(&self) -> &P {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{Euclidean, Jaccard};
    use crate::point::{DenseVector, SparseSet};

    fn small_vector_dataset() -> Dataset<DenseVector> {
        Dataset::new(vec![
            DenseVector::new(vec![0.0, 0.0]),
            DenseVector::new(vec![1.0, 0.0]),
            DenseVector::new(vec![0.0, 2.0]),
            DenseVector::new(vec![5.0, 5.0]),
        ])
    }

    #[test]
    fn basic_accessors() {
        let data = small_vector_dataset();
        assert_eq!(data.len(), 4);
        assert!(!data.is_empty());
        assert_eq!(data.point(PointId(1)).values(), &[1.0, 0.0]);
        assert_eq!(data[PointId(1)].values(), &[1.0, 0.0]);
        assert!(data.get(PointId(10)).is_none());
        assert_eq!(data.ids().count(), 4);
        assert_eq!(data.iter().count(), 4);
    }

    #[test]
    fn ball_queries_match_manual_count() {
        let data = small_vector_dataset();
        let q = DenseVector::new(vec![0.0, 0.0]);
        let near = data.ball_indices(&Euclidean, &q, 1.5);
        assert_eq!(near, vec![PointId(0), PointId(1)]);
        assert_eq!(data.ball_size(&Euclidean, &q, 1.5), 2);
        assert_eq!(data.ball_size(&Euclidean, &q, 2.0), 3);
        assert_eq!(data.ball_size(&Euclidean, &q, 0.0), 1);
    }

    #[test]
    fn similarity_queries() {
        let data: Dataset<SparseSet> = vec![
            SparseSet::from_items(vec![1, 2, 3, 4]),
            SparseSet::from_items(vec![1, 2, 3, 9]),
            SparseSet::from_items(vec![7, 8]),
        ]
        .into_iter()
        .collect();
        let q = SparseSet::from_items(vec![1, 2, 3, 4]);
        let near = data.similar_indices(&Jaccard, &q, 0.5);
        assert_eq!(near, vec![PointId(0), PointId(1)]);
        assert_eq!(data.similar_count(&Jaccard, &q, 0.99), 1);
        let sims = data.similarities_to(&Jaccard, &q);
        assert_eq!(sims.len(), 3);
        assert_eq!(sims[0].1, 1.0);
        assert_eq!(sims[2].1, 0.0);
    }

    #[test]
    fn query_by_reference_to_dataset_point() {
        let data = small_vector_dataset();
        let q = data.point(PointId(0)).clone();
        // Query point itself is inside its own ball.
        assert!(data.ball_indices(&Euclidean, &q, 0.1).contains(&PointId(0)));
    }

    #[test]
    fn empty_dataset() {
        let data: Dataset<DenseVector> = Dataset::new(vec![]);
        assert!(data.is_empty());
        let q = DenseVector::new(vec![]);
        assert!(data.ball_indices(&Euclidean, &q, 1.0).is_empty());
    }
}
