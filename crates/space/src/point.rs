//! Concrete point representations.
//!
//! Three representations cover every experiment in the paper:
//!
//! * [`SparseSet`] — a set of item ids (Jaccard similarity, Sections 2 and 6);
//! * [`DenseVector`] — a dense real vector (inner product / Euclidean,
//!   Section 5);
//! * [`BitVector`] — a fixed-length bit string (Hamming distance, mentioned
//!   in Section 1.1 as a metric the filter structure extends to).

use std::fmt;

/// Identifier of a point inside a [`crate::Dataset`].
///
/// Point ids are dense indices in `0..n` where `n` is the dataset size. All
/// data structures in the workspace store `PointId`s rather than owning
/// copies of the points, mirroring the paper's accounting where a point is
/// stored once and referenced with constant-size pointers (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(transparent)]
pub struct PointId(pub u32);

impl PointId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PointId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`. Datasets in this workspace
    /// are far below that bound.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        PointId(u32::try_from(index).expect("point index exceeds u32::MAX"))
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PointId {
    fn from(value: u32) -> Self {
        PointId(value)
    }
}

/// A sparse set of item identifiers, stored sorted and deduplicated.
///
/// This is the representation of a user profile in the paper's experiments:
/// for MovieLens the set of movies rated at least 4, for Last.FM the top-20
/// artists. Jaccard similarity between two `SparseSet`s is computed with a
/// linear merge over the sorted id lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SparseSet {
    items: Vec<u32>,
}

impl SparseSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Builds a set from arbitrary (possibly unsorted, possibly duplicated)
    /// item ids.
    pub fn from_items(mut items: Vec<u32>) -> Self {
        items.sort_unstable();
        items.dedup();
        Self { items }
    }

    /// Builds a set from items that are already sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(items: Vec<u32>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Self { items }
    }

    /// Number of items in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the set has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorted slice of the item ids.
    #[inline]
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Returns `true` when `item` belongs to the set.
    pub fn contains(&self, item: u32) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &SparseSet) -> usize {
        // Branch-light sorted merge: every iteration advances at least one
        // cursor via arithmetic on the comparison results, so the loop has a
        // single well-predicted branch. This is the inner loop of every
        // distance evaluation the samplers perform.
        let a = &self.items;
        let b = &other.items;
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            let x = a[i];
            let y = b[j];
            count += usize::from(x == y);
            i += usize::from(x <= y);
            j += usize::from(y <= x);
        }
        count
    }

    /// Size of the union with `other`.
    pub fn union_size(&self, other: &SparseSet) -> usize {
        self.items.len() + other.items.len() - self.intersection_size(other)
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|`; defined as 1 for two empty
    /// sets. One merge pass: the union size is derived from the
    /// intersection instead of being merged a second time.
    pub fn jaccard(&self, other: &SparseSet) -> f64 {
        let intersection = self.intersection_size(other);
        let union = self.items.len() + other.items.len() - intersection;
        if union == 0 {
            return 1.0;
        }
        intersection as f64 / union as f64
    }
}

impl FromIterator<u32> for SparseSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_items(iter.into_iter().collect())
    }
}

/// A dense real-valued vector.
///
/// Used for the inner-product / Euclidean experiments of Section 5. The
/// filter data structure assumes unit-length vectors; [`DenseVector::normalized`]
/// produces that form and [`DenseVector::is_unit`] checks it.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DenseVector {
    values: Vec<f64>,
}

impl DenseVector {
    /// Wraps a raw coordinate vector.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Dimensionality of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the vector has no coordinates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw coordinates.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Inner product with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn dot(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in dot product");
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean (ℓ2) norm.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    pub fn squared_distance(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in distance");
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &DenseVector) -> f64 {
        self.squared_distance(other).sqrt()
    }

    /// Returns a unit-length copy of the vector. The zero vector is returned
    /// unchanged.
    pub fn normalized(&self) -> DenseVector {
        let norm = self.norm();
        if norm == 0.0 {
            return self.clone();
        }
        DenseVector::new(self.values.iter().map(|v| v / norm).collect())
    }

    /// Returns `true` when the norm is within `tol` of 1.
    pub fn is_unit(&self, tol: f64) -> bool {
        (self.norm() - 1.0).abs() <= tol
    }

    /// Cosine similarity with `other`; 0 when either vector is zero.
    pub fn cosine(&self, other: &DenseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        self.dot(other) / denom
    }
}

impl From<Vec<f64>> for DenseVector {
    fn from(values: Vec<f64>) -> Self {
        DenseVector::new(values)
    }
}

impl FromIterator<f64> for DenseVector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        DenseVector::new(iter.into_iter().collect())
    }
}

/// A fixed-length bit string stored as packed 64-bit words.
///
/// Supports Hamming distance, the third metric the paper mentions the filter
/// structure can be adapted to (Section 1.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitVector {
    bits: Vec<u64>,
    len: usize,
}

impl BitVector {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a bit vector from a boolean slice.
    pub fn from_bools(values: &[bool]) -> Self {
        let mut bv = Self::zeros(values.len());
        for (i, &b) in values.iter().enumerate() {
            if b {
                bv.set(i, true);
            }
        }
        bv
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the value of bit `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index out of range");
        (self.bits[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bit index out of range");
        let word = &mut self.bits[index / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn hamming(&self, other: &BitVector) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in Hamming distance");
        self.bits
            .iter()
            .zip(other.bits.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_id_roundtrip() {
        let id = PointId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, PointId(42));
        assert_eq!(format!("{id}"), "p42");
        assert_eq!(PointId::from(7u32), PointId(7));
    }

    #[test]
    fn sparse_set_sorts_and_dedups() {
        let s = SparseSet::from_items(vec![5, 1, 3, 1, 5]);
        assert_eq!(s.items(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn sparse_set_intersection_union() {
        let a = SparseSet::from_items(vec![1, 2, 3, 4]);
        let b = SparseSet::from_items(vec![3, 4, 5, 6]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 6);
        assert!((a.jaccard(&b) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_identity_and_disjoint() {
        let a = SparseSet::from_items(vec![1, 2, 3]);
        let b = SparseSet::from_items(vec![4, 5]);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.jaccard(&b), 0.0);
        let empty = SparseSet::new();
        assert_eq!(empty.jaccard(&empty), 1.0);
        assert_eq!(a.jaccard(&empty), 0.0);
    }

    #[test]
    fn sparse_set_from_iter() {
        let s: SparseSet = [9u32, 2, 2, 7].into_iter().collect();
        assert_eq!(s.items(), &[2, 7, 9]);
    }

    #[test]
    fn dense_vector_dot_and_norm() {
        let a = DenseVector::new(vec![1.0, 2.0, 2.0]);
        let b = DenseVector::new(vec![2.0, 0.0, 1.0]);
        assert_eq!(a.dot(&b), 4.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.squared_distance(&b), 1.0 + 4.0 + 1.0);
        assert!((a.distance(&b) - 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dense_vector_normalization() {
        let a = DenseVector::new(vec![3.0, 4.0]);
        let u = a.normalized();
        assert!(u.is_unit(1e-12));
        assert!((u.values()[0] - 0.6).abs() < 1e-12);
        let zero = DenseVector::new(vec![0.0, 0.0]);
        assert_eq!(zero.normalized(), zero);
        assert!(!zero.is_unit(1e-12));
    }

    #[test]
    fn dense_vector_cosine() {
        let a = DenseVector::new(vec![1.0, 0.0]);
        let b = DenseVector::new(vec![0.0, 1.0]);
        let c = DenseVector::new(vec![2.0, 0.0]);
        assert_eq!(a.cosine(&b), 0.0);
        assert!((a.cosine(&c) - 1.0).abs() < 1e-12);
        let zero = DenseVector::new(vec![0.0, 0.0]);
        assert_eq!(a.cosine(&zero), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dense_vector_dot_dim_mismatch_panics() {
        let a = DenseVector::new(vec![1.0]);
        let b = DenseVector::new(vec![1.0, 2.0]);
        let _ = a.dot(&b);
    }

    #[test]
    fn unit_relation_between_distance_and_inner_product() {
        // For unit vectors: ||p - q||^2 = 2 - 2 <p, q>   (Section 5).
        let p = DenseVector::new(vec![0.6, 0.8]);
        let q = DenseVector::new(vec![1.0, 0.0]);
        assert!(p.is_unit(1e-12) && q.is_unit(1e-12));
        let lhs = p.squared_distance(&q);
        let rhs = 2.0 - 2.0 * p.dot(&q);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn bit_vector_basics() {
        let mut bv = BitVector::zeros(70);
        assert_eq!(bv.len(), 70);
        assert!(!bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        bv.set(0, true);
        bv.set(69, true);
        assert!(bv.get(0));
        assert!(bv.get(69));
        assert!(!bv.get(35));
        assert_eq!(bv.count_ones(), 2);
        bv.set(0, false);
        assert_eq!(bv.count_ones(), 1);
    }

    #[test]
    fn bit_vector_hamming() {
        let a = BitVector::from_bools(&[true, false, true, true]);
        let b = BitVector::from_bools(&[true, true, false, true]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bit_vector_hamming_len_mismatch_panics() {
        let a = BitVector::zeros(3);
        let b = BitVector::zeros(4);
        let _ = a.hamming(&b);
    }
}
