//! Query selection.
//!
//! Section 6 of the paper selects, for each dataset, 50 queries uniformly at
//! random from the set of "interesting" users — users with at least 40 other
//! users at Jaccard similarity at least 0.2. The same procedure is
//! implemented here (the thresholds are parameters so tests and scaled-down
//! experiments can adapt them).

use fairnn_space::{Dataset, PointId, Similarity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Selects up to `count` query points uniformly at random among the points
/// that have at least `min_neighbors` *other* points with similarity at
/// least `threshold`.
///
/// Returns fewer than `count` ids when the dataset does not contain enough
/// interesting points. The selection is deterministic in `seed`.
pub fn select_interesting_queries<P, S>(
    dataset: &Dataset<P>,
    measure: &S,
    threshold: f64,
    min_neighbors: usize,
    count: usize,
    seed: u64,
) -> Vec<PointId>
where
    S: Similarity<P>,
{
    let mut interesting: Vec<PointId> = dataset
        .iter()
        .filter(|(id, p)| {
            let neighbors = dataset
                .iter()
                .filter(|(other_id, other)| {
                    other_id != id && measure.similarity(p, other) >= threshold
                })
                .count();
            neighbors >= min_neighbors
        })
        .map(|(id, _)| id)
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher–Yates shuffle to draw `count` without replacement.
    let take = count.min(interesting.len());
    for i in 0..take {
        let j = rng.random_range(i..interesting.len());
        interesting.swap(i, j);
    }
    interesting.truncate(take);
    interesting
}

/// Counts, for every point, how many other points have similarity at least
/// `threshold`; useful for inspecting dataset structure in the experiment
/// harness.
pub fn neighborhood_sizes<P, S>(dataset: &Dataset<P>, measure: &S, threshold: f64) -> Vec<usize>
where
    S: Similarity<P>,
{
    dataset
        .iter()
        .map(|(id, p)| {
            dataset
                .iter()
                .filter(|(other_id, other)| {
                    *other_id != id && measure.similarity(p, other) >= threshold
                })
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setdata::small_test_config;
    use fairnn_space::{Jaccard, SparseSet};

    #[test]
    fn selects_only_points_with_enough_neighbors() {
        let data = small_test_config().generate(11);
        let queries = select_interesting_queries(&data, &Jaccard, 0.2, 20, 10, 1);
        assert!(!queries.is_empty(), "no interesting queries found");
        assert!(queries.len() <= 10);
        for q in &queries {
            let p = data.point(*q);
            let neighbors = data
                .iter()
                .filter(|(id, other)| id != q && Jaccard.similarity(p, other) >= 0.2)
                .count();
            assert!(
                neighbors >= 20,
                "query {q:?} has only {neighbors} neighbours"
            );
        }
    }

    #[test]
    fn selection_is_deterministic_in_seed() {
        let data = small_test_config().generate(12);
        let a = select_interesting_queries(&data, &Jaccard, 0.2, 20, 5, 7);
        let b = select_interesting_queries(&data, &Jaccard, 0.2, 20, 5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_can_differ() {
        let data = small_test_config().generate(13);
        let a = select_interesting_queries(&data, &Jaccard, 0.2, 10, 20, 1);
        let b = select_interesting_queries(&data, &Jaccard, 0.2, 10, 20, 2);
        // With many candidates, two seeds almost surely pick different sets.
        assert!(a.len() == b.len());
        if a.len() >= 5 {
            assert_ne!(a, b, "different seeds produced identical selections");
        }
    }

    #[test]
    fn returns_empty_when_no_point_qualifies() {
        // Pairwise disjoint sets: nobody has neighbours.
        let data: fairnn_space::Dataset<SparseSet> = (0..20u32)
            .map(|i| SparseSet::from_items((i * 100..i * 100 + 10).collect()))
            .collect();
        let queries = select_interesting_queries(&data, &Jaccard, 0.2, 1, 5, 3);
        assert!(queries.is_empty());
    }

    #[test]
    fn neighborhood_sizes_match_manual_count() {
        let data: fairnn_space::Dataset<SparseSet> = vec![
            SparseSet::from_items(vec![1, 2, 3, 4]),
            SparseSet::from_items(vec![1, 2, 3, 5]),
            SparseSet::from_items(vec![1, 2, 3, 6]),
            SparseSet::from_items(vec![100, 200]),
        ]
        .into_iter()
        .collect();
        let sizes = neighborhood_sizes(&data, &Jaccard, 0.5);
        assert_eq!(sizes, vec![2, 2, 2, 0]);
    }

    #[test]
    fn requesting_more_queries_than_candidates_returns_all() {
        let data = small_test_config().generate(14);
        let all = select_interesting_queries(&data, &Jaccard, 0.2, 20, usize::MAX, 5);
        let some = select_interesting_queries(&data, &Jaccard, 0.2, 20, 5, 5);
        assert!(all.len() >= some.len());
    }
}
