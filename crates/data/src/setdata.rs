//! Synthetic user/item set data calibrated to the paper's rating datasets.
//!
//! The generator produces `num_users` sets over a universe of
//! `universe_size` items:
//!
//! * a fraction of the users belong to *interest clusters*: each cluster has
//!   a pool of "core" items, and a member draws most of its set from that
//!   pool, which creates groups of users with moderate-to-high mutual
//!   Jaccard similarity — exactly the structure the paper's query selection
//!   relies on ("interesting" users with at least 40 neighbours at Jaccard
//!   ≥ 0.2);
//! * the remaining users (and the non-core part of every set) are drawn from
//!   a Zipf-distributed popularity model, which reproduces the long-tail
//!   behaviour of real rating data;
//! * set sizes follow a log-normal distribution matched to the mean and
//!   standard deviation the paper reports for each dataset.

use crate::rng::lognormal_with_moments;
use crate::zipf::Zipf;
use fairnn_space::{Dataset, SparseSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic set-data generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SetDataConfig {
    /// Number of user sets to generate.
    pub num_users: usize,
    /// Number of distinct items in the universe.
    pub universe_size: u32,
    /// Target mean set size.
    pub mean_set_size: f64,
    /// Target standard deviation of the set size.
    pub std_set_size: f64,
    /// Zipf exponent of the item-popularity distribution.
    pub popularity_exponent: f64,
    /// Number of interest clusters.
    pub num_clusters: usize,
    /// Fraction of users assigned to clusters (the rest are background
    /// users with unstructured profiles).
    pub clustered_fraction: f64,
    /// Fraction of a clustered user's set drawn from the cluster's core
    /// item pool (controls the within-cluster Jaccard similarity).
    pub core_fraction: f64,
    /// Size of each cluster's core pool as a multiple of the mean set size.
    pub core_pool_factor: f64,
}

impl SetDataConfig {
    /// Validates the configuration, panicking on nonsensical values.
    fn validate(&self) {
        assert!(self.num_users > 0, "num_users must be positive");
        assert!(self.universe_size > 0, "universe_size must be positive");
        assert!(
            self.mean_set_size >= 1.0,
            "mean_set_size must be at least 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.clustered_fraction),
            "clustered_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.core_fraction),
            "core_fraction must be in [0, 1]"
        );
        assert!(self.num_clusters > 0, "num_clusters must be positive");
        assert!(
            self.core_pool_factor >= 1.0,
            "core_pool_factor must be at least 1"
        );
    }

    /// Generates the dataset deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Dataset<SparseSet> {
        self.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let popularity = Zipf::new(self.universe_size as usize, self.popularity_exponent);

        // Build the cluster core pools from the popular half of the universe
        // so clusters overlap the "realistic" items, not only the tail.
        let core_pool_size = ((self.mean_set_size * self.core_pool_factor).ceil() as usize)
            .min(self.universe_size as usize);
        let cluster_pools: Vec<Vec<u32>> = (0..self.num_clusters)
            .map(|_| {
                popularity
                    .sample_distinct(&mut rng, core_pool_size)
                    .into_iter()
                    .map(|i| i as u32)
                    .collect()
            })
            .collect();

        let num_clustered = (self.num_users as f64 * self.clustered_fraction).round() as usize;
        let mut sets = Vec::with_capacity(self.num_users);
        for user in 0..self.num_users {
            let size = self.draw_set_size(&mut rng);
            let set = if user < num_clustered {
                let cluster = user % self.num_clusters;
                self.generate_clustered_user(&mut rng, &popularity, &cluster_pools[cluster], size)
            } else {
                self.generate_background_user(&mut rng, &popularity, size)
            };
            sets.push(set);
        }
        Dataset::new(sets)
    }

    fn draw_set_size<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let raw = lognormal_with_moments(rng, self.mean_set_size, self.std_set_size);
        let clamped = raw.round().clamp(2.0, self.universe_size as f64 / 2.0);
        clamped as usize
    }

    fn generate_clustered_user<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        popularity: &Zipf,
        pool: &[u32],
        size: usize,
    ) -> SparseSet {
        let core_target = ((size as f64) * self.core_fraction).round() as usize;
        let core_target = core_target.min(pool.len()).min(size);
        let mut items: Vec<u32> = crate::rng::choose_indices(rng, pool.len(), core_target)
            .into_iter()
            .map(|i| pool[i])
            .collect();
        self.fill_with_popular(rng, popularity, &mut items, size);
        SparseSet::from_items(items)
    }

    fn generate_background_user<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        popularity: &Zipf,
        size: usize,
    ) -> SparseSet {
        let mut items = Vec::with_capacity(size);
        self.fill_with_popular(rng, popularity, &mut items, size);
        SparseSet::from_items(items)
    }

    /// Tops up `items` to `size` distinct entries using popularity-biased
    /// draws.
    fn fill_with_popular<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        popularity: &Zipf,
        items: &mut Vec<u32>,
        size: usize,
    ) {
        let mut present: std::collections::HashSet<u32> = items.iter().copied().collect();
        let mut attempts = 0usize;
        let max_attempts = size * 50 + 1000;
        while present.len() < size && attempts < max_attempts {
            let item = popularity.sample(rng) as u32;
            if present.insert(item) {
                items.push(item);
            }
            attempts += 1;
        }
        // In the (extremely unlikely) event rejection sampling stalls, pad
        // with uniform items so the requested size is still met.
        let mut next = 0u32;
        while present.len() < size && next < self.universe_size {
            if present.insert(next) {
                items.push(next);
            }
            next += 1;
        }
    }
}

/// Configuration mimicking the MovieLens (hetrec-2011) statistics quoted in
/// Section 6: 2 112 users, 65 536 movies, mean set size 178.1 (σ = 187.5).
pub fn movielens_like() -> SetDataConfig {
    SetDataConfig {
        num_users: 2112,
        universe_size: 65_536,
        mean_set_size: 178.1,
        std_set_size: 187.5,
        popularity_exponent: 1.0,
        num_clusters: 16,
        clustered_fraction: 0.7,
        core_fraction: 0.75,
        core_pool_factor: 1.25,
    }
}

/// Configuration mimicking the Last.FM (hetrec-2011) statistics quoted in
/// Section 6: 1 892 users, 18 739 artists, top-20 artists per user
/// (mean set size 19.8, σ = 1.78).
pub fn lastfm_like() -> SetDataConfig {
    SetDataConfig {
        num_users: 1892,
        universe_size: 18_739,
        mean_set_size: 19.8,
        std_set_size: 1.78,
        popularity_exponent: 0.95,
        num_clusters: 20,
        clustered_fraction: 0.75,
        core_fraction: 0.75,
        core_pool_factor: 1.2,
    }
}

/// A small configuration used by unit/integration tests and quick examples:
/// same qualitative structure, two orders of magnitude fewer points.
pub fn small_test_config() -> SetDataConfig {
    SetDataConfig {
        num_users: 300,
        universe_size: 2_000,
        mean_set_size: 25.0,
        std_set_size: 5.0,
        popularity_exponent: 1.0,
        num_clusters: 5,
        clustered_fraction: 0.8,
        core_fraction: 0.75,
        core_pool_factor: 1.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_space::{Jaccard, Similarity};

    #[test]
    fn generator_is_deterministic() {
        let cfg = small_test_config();
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.points().iter().zip(b.points().iter()) {
            assert_eq!(x, y);
        }
        let c = cfg.generate(8);
        assert!(a
            .points()
            .iter()
            .zip(c.points().iter())
            .any(|(x, y)| x != y));
    }

    #[test]
    fn set_sizes_track_configuration() {
        let cfg = small_test_config();
        let data = cfg.generate(1);
        assert_eq!(data.len(), cfg.num_users);
        let sizes: Vec<f64> = data.points().iter().map(|s| s.len() as f64).collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!(
            (mean - cfg.mean_set_size).abs() / cfg.mean_set_size < 0.25,
            "mean size {mean}, target {}",
            cfg.mean_set_size
        );
        assert!(data.points().iter().all(|s| s.len() >= 2));
    }

    #[test]
    fn items_stay_in_universe() {
        let cfg = small_test_config();
        let data = cfg.generate(2);
        for set in data.points() {
            assert!(set.items().iter().all(|&i| i < cfg.universe_size));
        }
    }

    #[test]
    fn clustered_users_have_many_moderate_similarity_neighbors() {
        let cfg = small_test_config();
        let data = cfg.generate(3);
        // The first users are clustered; they should have a healthy number
        // of neighbours at Jaccard >= 0.2 (the paper's "interesting user"
        // criterion scaled down to the smaller test dataset).
        let query = data.point(fairnn_space::PointId(0));
        let neighbors = data
            .points()
            .iter()
            .filter(|p| Jaccard.similarity(query, p) >= 0.2)
            .count();
        assert!(
            neighbors >= 20,
            "clustered user has only {neighbors} neighbours at J >= 0.2"
        );
    }

    #[test]
    fn background_users_are_mostly_dissimilar() {
        let cfg = small_test_config();
        let data = cfg.generate(4);
        // The last user is a background user; it should have few similar
        // neighbours.
        let query = data.point(fairnn_space::PointId((cfg.num_users - 1) as u32));
        let neighbors = data
            .points()
            .iter()
            .filter(|p| Jaccard.similarity(query, p) >= 0.2)
            .count();
        assert!(
            neighbors <= 10,
            "background user has {neighbors} near neighbours"
        );
    }

    #[test]
    fn paper_scale_presets_have_documented_sizes() {
        let ml = movielens_like();
        assert_eq!(ml.num_users, 2112);
        assert_eq!(ml.universe_size, 65_536);
        let lf = lastfm_like();
        assert_eq!(lf.num_users, 1892);
        assert_eq!(lf.universe_size, 18_739);
        assert!((lf.mean_set_size - 19.8).abs() < 1e-9);
    }

    #[test]
    fn lastfm_like_generates_small_tight_sets() {
        // Scaled-down check: generate a reduced Last.FM-like dataset and
        // verify sizes hover around 20.
        let mut cfg = lastfm_like();
        cfg.num_users = 200;
        let data = cfg.generate(5);
        let sizes: Vec<usize> = data.points().iter().map(|s| s.len()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((mean - 19.8).abs() < 3.0, "mean {mean}");
        assert!(
            sizes.iter().all(|&s| (10..=40).contains(&s)),
            "sizes out of range"
        );
    }

    #[test]
    #[should_panic(expected = "num_users must be positive")]
    fn zero_users_rejected() {
        let mut cfg = small_test_config();
        cfg.num_users = 0;
        let _ = cfg.generate(0);
    }
}
