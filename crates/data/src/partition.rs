//! Partitioning helpers for sharded serving.
//!
//! The sharded engine splits a dataset across shards, each of which owns its
//! own LSH tables and mergeable sketches. Because the fair samplers only
//! need the shards to be *disjoint and exhaustive* (the two-level sampler is
//! rejection-corrected, so balance affects speed, not correctness), the
//! helpers here are deliberately simple deterministic assignments over
//! `0..n`; the engine maps the returned indices to whatever point storage it
//! uses.

use fairnn_sketch::splitmix64;

/// Round-robin assignment: index `i` goes to part `i % parts`. Produces the
/// most even split possible (part sizes differ by at most one) and is the
/// engine's default.
pub fn round_robin(n: usize, parts: usize) -> Vec<Vec<usize>> {
    assert!(parts >= 1, "need at least one part");
    let mut out: Vec<Vec<usize>> = (0..parts)
        .map(|_| Vec::with_capacity(n / parts + 1))
        .collect();
    for i in 0..n {
        out[i % parts].push(i);
    }
    out
}

/// Contiguous-range assignment: part `p` gets the `p`-th chunk of `0..n`
/// (chunk sizes differ by at most one). Useful when locality of ids matters
/// more than interleaving, e.g. when shards map to storage ranges.
pub fn contiguous(n: usize, parts: usize) -> Vec<Vec<usize>> {
    assert!(parts >= 1, "need at least one part");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start..start + len).collect());
        start += len;
    }
    out
}

/// Hashed assignment: index `i` goes to part `splitmix64(seed ^ i) % parts`.
/// Statistically balanced and stable under appends (existing indices never
/// move when `n` grows), which is what an incrementally growing shard set
/// wants.
pub fn by_hash(n: usize, parts: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(parts >= 1, "need at least one part");
    let mut out: Vec<Vec<usize>> = (0..parts).map(|_| Vec::new()).collect();
    for i in 0..n {
        out[hash_part(i, parts, seed)].push(i);
    }
    out
}

/// The part `by_hash` assigns to a single index (for routing one new point
/// without materialising the whole assignment).
pub fn hash_part(index: usize, parts: usize, seed: u64) -> usize {
    assert!(parts >= 1, "need at least one part");
    (splitmix64(seed ^ index as u64) % parts as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exhaustive_and_disjoint(assignment: &[Vec<usize>], n: usize) {
        let mut seen = vec![false; n];
        for part in assignment {
            for &i in part {
                assert!(i < n, "index {i} out of range");
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index left unassigned");
    }

    #[test]
    fn round_robin_is_balanced() {
        let parts = round_robin(10, 3);
        assert_exhaustive_and_disjoint(&parts, 10);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(parts[1], vec![1, 4, 7]);
    }

    #[test]
    fn contiguous_covers_in_order() {
        let parts = contiguous(10, 4);
        assert_exhaustive_and_disjoint(&parts, 10);
        assert_eq!(parts[0], vec![0, 1, 2]);
        assert_eq!(parts[3], vec![8, 9]);
        for part in &parts {
            for w in part.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn by_hash_is_exhaustive_stable_and_roughly_balanced() {
        let n = 4000;
        let parts = by_hash(n, 8, 7);
        assert_exhaustive_and_disjoint(&parts, n);
        for part in &parts {
            // 8-way split of 4000: expect ~500 per part; allow wide slack.
            assert!(part.len() > 300 && part.len() < 700, "size {}", part.len());
        }
        // Stability under growth: the first n indices keep their parts.
        let grown = by_hash(2 * n, 8, 7);
        for (p, part) in parts.iter().enumerate() {
            for &i in part {
                assert_eq!(hash_part(i, 8, 7), p);
                assert!(grown[p].contains(&i));
            }
        }
    }

    #[test]
    fn single_part_degenerates_to_identity() {
        for f in [round_robin, contiguous] {
            let parts = f(5, 1);
            assert_eq!(parts.len(), 1);
            assert_eq!(parts[0], vec![0, 1, 2, 3, 4]);
        }
        assert_eq!(by_hash(5, 1, 0)[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        let _ = round_robin(3, 0);
    }

    #[test]
    fn empty_input_yields_empty_parts() {
        let parts = round_robin(0, 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(Vec::is_empty));
    }
}
