//! Zipf-distributed item popularity.
//!
//! Real rating datasets (MovieLens, Last.FM) have heavily skewed item
//! popularity: a few blockbusters appear in many user profiles while the
//! long tail appears rarely. The synthetic generators reproduce this with a
//! Zipf distribution over the item universe; sampling uses a precomputed
//! cumulative table with binary search, which is simple, exact and fast
//! enough for universes of ~10⁵ items.

use rand::Rng;

/// A Zipf distribution over `{0, 1, ..., n-1}` where item `i` has
/// probability proportional to `1 / (i + 1)^exponent`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the exponent is negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        // Normalise to a proper CDF ending exactly at 1.
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative }
    }

    /// Number of items in the universe.
    pub fn universe(&self) -> usize {
        self.cumulative.len()
    }

    /// Probability of item `i`.
    pub fn probability(&self, i: usize) -> f64 {
        assert!(i < self.cumulative.len(), "item out of range");
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }

    /// Draws one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF values are finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }

    /// Draws `k` *distinct* items (rejection sampling; `k` must not exceed
    /// the universe size).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(
            k <= self.universe(),
            "cannot draw {k} distinct items from a universe of {}",
            self.universe()
        );
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        // Rejection sampling is fine while k is a small fraction of the
        // universe (the generators keep it below ~1%); fall back to a sweep
        // when k gets close to the universe size.
        if k * 4 >= self.universe() {
            let mut all: Vec<usize> = (0..self.universe()).collect();
            // Weighted shuffle approximation: sort by u^(1/w) keys
            // (Efraimidis–Spirakis) to keep popularity bias.
            let mut keyed: Vec<(f64, usize)> = all
                .drain(..)
                .map(|i| {
                    let w = self.probability(i).max(f64::MIN_POSITIVE);
                    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                    (u.powf(1.0 / w), i)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
            return keyed.into_iter().take(k).map(|(_, i)| i).collect();
        }
        while out.len() < k {
            let item = self.sample(rng);
            if chosen.insert(item) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.0);
        let sum: f64 = (0..100).map(|i| z.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(z.universe(), 100);
    }

    #[test]
    fn lower_ranked_items_are_more_popular() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(10) > z.probability(100));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(50, 0.0);
        for i in 0..50 {
            assert!((z.probability(i) - 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let item = z.sample(&mut rng);
            assert!(item < 1000);
            if item < 10 {
                head += 1;
            }
        }
        // The top-10 items should receive far more than the uniform 1% share.
        assert!(
            head as f64 / n as f64 > 0.2,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn empirical_frequency_matches_probability_for_top_item() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let count = (0..n).filter(|_| z.sample(&mut rng) == 0).count();
        let rate = count as f64 / n as f64;
        assert!(
            (rate - z.probability(0)).abs() < 0.01,
            "rate {rate}, prob {}",
            z.probability(0)
        );
    }

    #[test]
    fn sample_distinct_returns_distinct_items() {
        let z = Zipf::new(500, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let items = z.sample_distinct(&mut rng, 50);
        assert_eq!(items.len(), 50);
        assert_eq!(items.iter().collect::<HashSet<_>>().len(), 50);
    }

    #[test]
    fn sample_distinct_near_universe_size_still_works() {
        let z = Zipf::new(40, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let items = z.sample_distinct(&mut rng, 35);
        assert_eq!(items.len(), 35);
        assert_eq!(items.iter().collect::<HashSet<_>>().len(), 35);
        assert!(items.iter().all(|&i| i < 40));
    }

    #[test]
    #[should_panic(expected = "distinct items")]
    fn sample_distinct_rejects_oversized_request() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = z.sample_distinct(&mut rng, 11);
    }

    #[test]
    #[should_panic(expected = "non-empty universe")]
    fn empty_universe_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
