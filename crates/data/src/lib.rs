//! Synthetic workload generators for the fair near-neighbor experiments.
//!
//! The paper's evaluation (Section 6) uses two real-world datasets from the
//! hetrec-2011 collection, converted to set representation:
//!
//! * **MovieLens** — 2 112 users, 65 536 unique movies; a user's set is the
//!   movies they rated at least 4; mean set size 178.1 (σ = 187.5);
//! * **Last.FM** — 1 892 users, 18 739 unique artists; a user's set is their
//!   top-20 artists; mean set size 19.8 (σ = 1.78).
//!
//! Those files are not available in this environment, so this crate provides
//! synthetic generators calibrated to the same statistics
//! ([`setdata::movielens_like`], [`setdata::lastfm_like`]): Zipf-distributed
//! item popularity, log-normal set sizes and planted interest clusters that
//! create the "interesting users" the paper selects as queries (at least 40
//! neighbours at Jaccard ≥ 0.2). See `DESIGN.md` for the substitution
//! argument.
//!
//! The crate also contains:
//!
//! * [`adversarial`] — the exact Section 6.2 instance (universe `{1..30}`,
//!   sets `X`, `Y`, `Z` and the family `M` of large subsets of `Y`) used to
//!   show that *approximate neighbourhood* sampling is unfair;
//! * [`vectors`] — dense unit-vector workloads with planted neighbours for
//!   the Section 5 filter structure;
//! * [`partition`] — deterministic shard-assignment helpers (round-robin,
//!   contiguous, hashed) used by the `fairnn-engine` serving layer;
//! * [`queries`] — query selection ("interesting" users);
//! * [`rng`] and [`zipf`] — the random-variate plumbing (log-normal, Zipf)
//!   implemented locally to stay inside the approved dependency set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod partition;
pub mod queries;
pub mod rng;
pub mod setdata;
pub mod vectors;
pub mod zipf;

pub use adversarial::AdversarialInstance;
pub use queries::select_interesting_queries;
pub use setdata::{lastfm_like, movielens_like, SetDataConfig};
pub use vectors::{random_unit_vectors, PlantedInstance, PlantedInstanceConfig};
pub use zipf::Zipf;
