//! Random-variate helpers (normal, log-normal, sampling without
//! replacement).
//!
//! Implemented locally so that the workspace only depends on `rand` itself
//! and not on `rand_distr`; the generators only need a handful of standard
//! transforms.

use rand::Rng;

/// Draws one standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Draws a log-normal variate parameterised by the **mean and standard
/// deviation of the resulting distribution** (not of the underlying
/// normal). This matches how the paper reports set-size statistics
/// (mean 178.1, σ = 187.5 for MovieLens).
pub fn lognormal_with_moments<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(mean > 0.0, "log-normal mean must be positive");
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    if std_dev == 0.0 {
        return mean;
    }
    let variance_ratio = (std_dev / mean).powi(2);
    let sigma2 = (1.0 + variance_ratio).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * standard_normal(rng)).exp()
}

/// Samples `k` distinct values uniformly from `0..universe` (Floyd's
/// algorithm). Returns fewer than `k` values only if `k > universe`.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, universe: u32, k: usize) -> Vec<u32> {
    let k = k.min(universe as usize);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    // Floyd's algorithm: for j in (universe - k)..universe, pick t in 0..=j.
    for j in (universe as usize - k)..universe as usize {
        let t = rng.random_range(0..=j as u32);
        let value = if chosen.contains(&t) { j as u32 } else { t };
        chosen.insert(value);
        out.push(value);
    }
    out
}

/// Chooses `k` distinct indices from `0..n` by partial Fisher–Yates shuffle.
pub fn choose_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut indices: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        indices.swap(i, j);
    }
    indices.truncate(k);
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_matches_requested_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let (target_mean, target_std) = (178.1, 187.5);
        let samples: Vec<f64> = (0..n)
            .map(|_| lognormal_with_moments(&mut rng, target_mean, target_std))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (mean - target_mean).abs() / target_mean < 0.05,
            "mean {mean}"
        );
        assert!(
            (var.sqrt() - target_std).abs() / target_std < 0.1,
            "std {}",
            var.sqrt()
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_degenerate_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(lognormal_with_moments(&mut rng, 20.0, 0.0), 20.0);
    }

    #[test]
    fn sample_distinct_produces_distinct_values_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let sample = sample_distinct(&mut rng, 1000, 100);
            assert_eq!(sample.len(), 100);
            let set: HashSet<u32> = sample.iter().copied().collect();
            assert_eq!(set.len(), 100, "duplicates in sample");
            assert!(sample.iter().all(|&v| v < 1000));
        }
    }

    #[test]
    fn sample_distinct_caps_at_universe() {
        let mut rng = StdRng::seed_from_u64(5);
        let sample = sample_distinct(&mut rng, 10, 50);
        let set: HashSet<u32> = sample.iter().copied().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn choose_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let picked = choose_indices(&mut rng, 30, 10);
        assert_eq!(picked.len(), 10);
        let set: HashSet<usize> = picked.iter().copied().collect();
        assert_eq!(set.len(), 10);
        assert!(picked.iter().all(|&i| i < 30));
        assert_eq!(choose_indices(&mut rng, 5, 100).len(), 5);
    }

    #[test]
    fn choose_indices_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            for &i in &choose_indices(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        // Each index should be picked about 3/10 of the time.
        for &c in &counts {
            let rate = c as f64 / 20_000.0;
            assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        }
    }
}
