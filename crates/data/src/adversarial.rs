//! The Section 6.2 adversarial instance ("clustered neighbourhood").
//!
//! The paper constructs a tiny dataset showing that the *approximate
//! neighbourhood* notion of fairness (sampling uniformly from a set `S'`
//! that may include (c, r)-near points) can be extremely unfair:
//!
//! * universe `U = {1, ..., 30}`;
//! * `X = {16, ..., 30}`   (Jaccard similarity 0.5 with the query),
//! * `Y = {1, ..., 18}`    (similarity 0.6),
//! * `Z = {1, ..., 27}`    (similarity 0.9 — the nearest neighbour),
//! * `M` = all subsets of `Y` with at least 15 elements, excluding `Y`
//!   itself (987 sets with similarities between 0.5 and ~0.57);
//! * query `Q = {1, ..., 30}`, thresholds `r = 0.9`, `cr = 0.5`.
//!
//! Because every member of `M` is almost identical to `Y`, the buckets that
//! contain `Y` are crowded: conditioned on `Y` being retrieved, the sample
//! space is large and `Y` is rarely the point returned. `X`, by contrast,
//! has an empty neighbourhood and is returned with constant probability —
//! the paper reports a factor of more than 50 between the two, despite `Y`
//! being more similar to the query (Figure 2).

use fairnn_space::{Dataset, PointId, SparseSet};

/// The constructed instance together with the ids of its named sets.
#[derive(Debug, Clone)]
pub struct AdversarialInstance {
    /// The dataset: `X`, `Y`, `Z`, followed by all members of `M`.
    pub dataset: Dataset<SparseSet>,
    /// The query `Q = {1, ..., 30}`.
    pub query: SparseSet,
    /// Id of the set `X` (similarity 0.5, isolated neighbourhood).
    pub x: PointId,
    /// Id of the set `Y` (similarity 0.6, crowded neighbourhood).
    pub y: PointId,
    /// Id of the set `Z` (similarity 0.9, the nearest neighbour).
    pub z: PointId,
    /// Ids of the members of `M` (subsets of `Y` with ≥ 15 elements).
    pub m: Vec<PointId>,
    /// Near threshold used by the paper: r = 0.9 (Jaccard similarity).
    pub near_threshold: f64,
    /// Far threshold used by the paper: cr = 0.5.
    pub far_threshold: f64,
}

impl AdversarialInstance {
    /// Builds the instance exactly as described in Section 6.2.
    pub fn build() -> Self {
        let x = SparseSet::from_items((16..=30).collect());
        let y_items: Vec<u32> = (1..=18).collect();
        let y = SparseSet::from_items(y_items.clone());
        let z = SparseSet::from_items((1..=27).collect());
        let query = SparseSet::from_items((1..=30).collect());

        let mut sets = vec![x.clone(), y.clone(), z.clone()];
        let mut m_ids = Vec::new();

        // M = all subsets of Y with at least 15 of its 18 elements,
        // excluding Y itself: sizes 15, 16 and 17.
        for size in 15..=17usize {
            for subset in combinations(&y_items, size) {
                m_ids.push(PointId::from_index(sets.len()));
                sets.push(SparseSet::from_items(subset));
            }
        }

        let dataset = Dataset::new(sets);
        Self {
            dataset,
            query,
            x: PointId(0),
            y: PointId(1),
            z: PointId(2),
            m: m_ids,
            near_threshold: 0.9,
            far_threshold: 0.5,
        }
    }

    /// Number of points in the instance (3 named sets + |M|).
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Returns `true` if the instance is empty (it never is; provided for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }
}

impl Default for AdversarialInstance {
    fn default() -> Self {
        Self::build()
    }
}

/// All size-`k` subsets of `items` (items are returned in their original
/// order inside each subset).
fn combinations(items: &[u32], k: usize) -> Vec<Vec<u32>> {
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(k);
    combine_rec(items, k, 0, &mut current, &mut result);
    result
}

fn combine_rec(
    items: &[u32],
    k: usize,
    start: usize,
    current: &mut Vec<u32>,
    result: &mut Vec<Vec<u32>>,
) {
    if current.len() == k {
        result.push(current.clone());
        return;
    }
    let needed = k - current.len();
    // Prune: not enough items left.
    for i in start..=items.len().saturating_sub(needed) {
        current.push(items[i]);
        combine_rec(items, k, i + 1, current, result);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_space::{Jaccard, Similarity};

    fn binomial(n: u64, k: u64) -> u64 {
        let k = k.min(n - k);
        let mut num = 1u64;
        let mut den = 1u64;
        for i in 0..k {
            num *= n - i;
            den *= i + 1;
        }
        num / den
    }

    #[test]
    fn combinations_count_matches_binomial() {
        let items: Vec<u32> = (0..8).collect();
        assert_eq!(combinations(&items, 3).len() as u64, binomial(8, 3));
        assert_eq!(combinations(&items, 0).len(), 1);
        assert_eq!(combinations(&items, 8).len(), 1);
        for c in combinations(&items, 3) {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn instance_has_expected_size() {
        let inst = AdversarialInstance::build();
        // |M| = C(18,15) + C(18,16) + C(18,17) = 816 + 153 + 18 = 987.
        assert_eq!(inst.m.len(), 987);
        assert_eq!(inst.len(), 990);
        assert!(!inst.is_empty());
    }

    #[test]
    fn named_sets_have_paper_similarities() {
        let inst = AdversarialInstance::build();
        let q = &inst.query;
        let x = inst.dataset.point(inst.x);
        let y = inst.dataset.point(inst.y);
        let z = inst.dataset.point(inst.z);
        assert!((Jaccard.similarity(q, x) - 0.5).abs() < 1e-12);
        assert!((Jaccard.similarity(q, y) - 0.6).abs() < 1e-12);
        assert!((Jaccard.similarity(q, z) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn m_sets_sit_between_half_and_057_similarity() {
        let inst = AdversarialInstance::build();
        for &id in &inst.m {
            let s = Jaccard.similarity(&inst.query, inst.dataset.point(id));
            assert!(s >= 0.5 - 1e-12, "similarity {s} below 0.5");
            assert!(s <= 17.0 / 30.0 + 1e-12, "similarity {s} above 17/30");
        }
    }

    #[test]
    fn only_z_is_within_the_near_threshold() {
        let inst = AdversarialInstance::build();
        let near = inst
            .dataset
            .similar_indices(&Jaccard, &inst.query, inst.near_threshold);
        assert_eq!(near, vec![inst.z]);
        // Everything in the dataset is within the far (cr = 0.5) threshold.
        let far_count = inst
            .dataset
            .similar_count(&Jaccard, &inst.query, inst.far_threshold);
        assert_eq!(far_count, inst.len());
    }

    #[test]
    fn m_members_are_subsets_of_y() {
        let inst = AdversarialInstance::build();
        let y = inst.dataset.point(inst.y);
        for &id in &inst.m {
            let s = inst.dataset.point(id);
            assert!(s.len() >= 15 && s.len() <= 17);
            assert_eq!(
                s.intersection_size(y),
                s.len(),
                "member of M not a subset of Y"
            );
        }
    }

    #[test]
    fn default_builds_the_same_instance() {
        let a = AdversarialInstance::default();
        let b = AdversarialInstance::build();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.x, b.x);
    }
}
