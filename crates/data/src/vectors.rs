//! Dense unit-vector workloads for the Section 5 filter structure.
//!
//! The filter data structure is analysed for inner-product similarity over
//! unit vectors. To exercise it we need workloads where a query has a known
//! neighbourhood at inner product ≥ α and a controllable number of
//! "(α, β)-near" points in the annulus between β and α. The planted-instance
//! generator produces exactly that: background points drawn uniformly from
//! the sphere (inner product concentrated around 0), plus points planted at
//! prescribed inner products with the query.

use crate::rng::standard_normal;
use fairnn_space::{Dataset, DenseVector, PointId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `count` uniformly random unit vectors in `dim` dimensions.
pub fn random_unit_vectors(count: usize, dim: usize, seed: u64) -> Dataset<DenseVector> {
    assert!(dim > 0, "dimension must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..count).map(|_| random_unit(&mut rng, dim)).collect();
    Dataset::new(points)
}

fn random_unit<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> DenseVector {
    loop {
        let v = DenseVector::new((0..dim).map(|_| standard_normal(rng)).collect());
        if v.norm() > 1e-9 {
            return v.normalized();
        }
    }
}

/// Returns a unit vector with inner product exactly `target` with `query`
/// (up to floating-point error), random in the orthogonal complement.
pub fn planted_at_inner_product<R: Rng + ?Sized>(
    rng: &mut R,
    query: &DenseVector,
    target: f64,
) -> DenseVector {
    assert!(
        (-1.0..=1.0).contains(&target),
        "inner product target must be in [-1, 1]"
    );
    let dim = query.dim();
    assert!(dim >= 2, "planting requires dimension at least 2");
    // Draw a random direction orthogonal to the query.
    let ortho = loop {
        let raw = random_unit(rng, dim);
        // Gram–Schmidt step against the query.
        let proj = raw.dot(query);
        let values: Vec<f64> = raw
            .values()
            .iter()
            .zip(query.values().iter())
            .map(|(r, q)| r - proj * q)
            .collect();
        let candidate = DenseVector::new(values);
        if candidate.norm() > 1e-9 {
            break candidate.normalized();
        }
    };
    let ortho_scale = (1.0 - target * target).max(0.0).sqrt();
    let values: Vec<f64> = query
        .values()
        .iter()
        .zip(ortho.values().iter())
        .map(|(q, o)| target * q + ortho_scale * o)
        .collect();
    DenseVector::new(values).normalized()
}

/// Configuration of a planted inner-product instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedInstanceConfig {
    /// Dimensionality of the vectors.
    pub dim: usize,
    /// Number of background points (uniform on the sphere).
    pub background: usize,
    /// Number of points planted at inner product ≥ `alpha` with the query.
    pub near: usize,
    /// Number of points planted in the annulus `[beta, alpha)`.
    pub mid: usize,
    /// Near inner-product threshold α.
    pub alpha: f64,
    /// Far inner-product threshold β < α.
    pub beta: f64,
}

impl Default for PlantedInstanceConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            background: 1000,
            near: 20,
            mid: 100,
            alpha: 0.8,
            beta: 0.5,
        }
    }
}

/// A planted instance: a dataset, a query and the ids of the planted groups.
#[derive(Debug, Clone)]
pub struct PlantedInstance {
    /// The dataset (near points first, then mid points, then background).
    pub dataset: Dataset<DenseVector>,
    /// The query vector (unit length).
    pub query: DenseVector,
    /// Ids of the points planted at inner product ≥ α.
    pub near_ids: Vec<PointId>,
    /// Ids of the points planted in `[β, α)`.
    pub mid_ids: Vec<PointId>,
    /// The configuration used to build the instance.
    pub config: PlantedInstanceConfig,
}

impl PlantedInstance {
    /// Generates an instance deterministically from a seed.
    pub fn generate(config: PlantedInstanceConfig, seed: u64) -> Self {
        assert!(config.dim >= 2, "dimension must be at least 2");
        assert!(
            -1.0 < config.beta && config.beta < config.alpha && config.alpha < 1.0,
            "thresholds must satisfy -1 < beta < alpha < 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let query = random_unit(&mut rng, config.dim);

        let mut points = Vec::with_capacity(config.background + config.near + config.mid);
        let mut near_ids = Vec::with_capacity(config.near);
        let mut mid_ids = Vec::with_capacity(config.mid);

        for _ in 0..config.near {
            // Spread the near points in [alpha, (alpha + 1)/2].
            let target = config.alpha + rng.random::<f64>() * (1.0 - config.alpha) * 0.5;
            near_ids.push(PointId::from_index(points.len()));
            points.push(planted_at_inner_product(&mut rng, &query, target));
        }
        for _ in 0..config.mid {
            let span = config.alpha - config.beta;
            let target = config.beta + rng.random::<f64>() * span * 0.95;
            mid_ids.push(PointId::from_index(points.len()));
            points.push(planted_at_inner_product(&mut rng, &query, target));
        }
        for _ in 0..config.background {
            points.push(random_unit(&mut rng, config.dim));
        }

        Self {
            dataset: Dataset::new(points),
            query,
            near_ids,
            mid_ids,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_space::{InnerProduct, Similarity};

    #[test]
    fn random_unit_vectors_are_unit_and_deterministic() {
        let a = random_unit_vectors(50, 16, 3);
        let b = random_unit_vectors(50, 16, 3);
        assert_eq!(a.len(), 50);
        for (x, y) in a.points().iter().zip(b.points().iter()) {
            assert_eq!(x, y);
            assert!(x.is_unit(1e-9));
        }
    }

    #[test]
    fn planted_vector_hits_target_inner_product() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = random_unit(&mut rng, 24);
        for &target in &[0.9, 0.5, 0.0, -0.4] {
            let p = planted_at_inner_product(&mut rng, &q, target);
            assert!(p.is_unit(1e-9));
            assert!(
                (p.dot(&q) - target).abs() < 1e-9,
                "inner product {} for target {target}",
                p.dot(&q)
            );
        }
    }

    #[test]
    fn planted_instance_group_membership_is_correct() {
        let config = PlantedInstanceConfig {
            dim: 16,
            background: 200,
            near: 10,
            mid: 30,
            alpha: 0.8,
            beta: 0.5,
        };
        let inst = PlantedInstance::generate(config, 9);
        assert_eq!(inst.dataset.len(), 240);
        assert_eq!(inst.near_ids.len(), 10);
        assert_eq!(inst.mid_ids.len(), 30);
        for &id in &inst.near_ids {
            let s = InnerProduct.similarity(&inst.query, inst.dataset.point(id));
            assert!(s >= config.alpha - 1e-9, "near point at inner product {s}");
        }
        for &id in &inst.mid_ids {
            let s = InnerProduct.similarity(&inst.query, inst.dataset.point(id));
            assert!(
                s >= config.beta - 1e-9 && s < config.alpha,
                "mid point at {s}"
            );
        }
    }

    #[test]
    fn background_points_rarely_reach_alpha() {
        let config = PlantedInstanceConfig {
            dim: 64,
            background: 500,
            near: 5,
            mid: 5,
            alpha: 0.8,
            beta: 0.5,
        };
        let inst = PlantedInstance::generate(config, 10);
        let accidental_near = inst
            .dataset
            .points()
            .iter()
            .skip(10)
            .filter(|p| InnerProduct.similarity(&inst.query, p) >= config.alpha)
            .count();
        assert_eq!(accidental_near, 0, "background points crossed alpha");
    }

    #[test]
    #[should_panic(expected = "beta < alpha")]
    fn invalid_thresholds_rejected() {
        let config = PlantedInstanceConfig {
            alpha: 0.4,
            beta: 0.6,
            ..Default::default()
        };
        let _ = PlantedInstance::generate(config, 1);
    }
}
