//! Std-only deterministic scoped parallelism.
//!
//! Every structure in this workspace promises *bit-for-bit identical output
//! at any thread count*: the engine's `run_batch` established the discipline
//! for queries, and the build path follows it here. The helpers in this
//! crate make that easy to uphold, because they only ever parallelize work
//! whose result is a pure function of the input partition:
//!
//! * [`map_slices`] / [`map_indexed`] split a slice (or an index range)
//!   into **contiguous chunks in order**, run one scoped worker per chunk
//!   (`std::thread::scope`), and concatenate the results **in chunk
//!   order** — so the output is exactly the serial output regardless of how
//!   the OS schedules the workers;
//! * [`for_each_mut`] does the same over disjoint `&mut` chunks;
//! * nested calls run serially (a thread spawned by one helper never spawns
//!   more), so fan-out is bounded by one level and builders can compose
//!   freely — a sharded build parallelizes across shards while each shard's
//!   inner index build runs inline on its worker.
//!
//! How many workers the helpers use is controlled by the process-wide
//! [`set_build_threads`] knob (default: [`available_parallelism`]). The
//! knob only moves chunk boundaries, never results, so it is safe to flip
//! at any time — benches sweep it to measure build scaling.
//!
//! The crate also owns [`ThreadPool`], the fixed worker pool the serving
//! engine dispatches query batches on (hoisted here so the build and serve
//! layers share one threading substrate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::ThreadPool;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Per-chunk wall time of the fork/join helpers. Each worker times its own
/// chunk, so the histogram shows the balance of the split (a wide spread
/// means chunk sizes or per-item costs are skewed). Recording is atomic and
/// commutative, so totals are identical at any thread count.
static CHUNK_NS: fairnn_obs::LazyHistogram = fairnn_obs::LazyHistogram::new(
    "parallel_chunk_ns",
    "per-chunk wall time of the fork/join build helpers in nanoseconds",
);

/// Process-wide build-parallelism knob; 0 means "auto" (use
/// [`available_parallelism`]).
static BUILD_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set on worker threads spawned by the helpers below, so nested calls
    /// run serially instead of oversubscribing the machine.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Number of hardware threads (1 when the query fails).
pub fn available_parallelism() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the number of worker threads construction helpers may use.
/// `0` restores the default (one per hardware thread). Because every helper
/// is deterministic, changing this never changes any build output — only
/// how fast it is produced.
pub fn set_build_threads(threads: usize) {
    BUILD_THREADS.store(threads, Ordering::Relaxed);
}

/// The resolved build-parallelism level (the knob, or the hardware thread
/// count when the knob is unset).
pub fn build_threads() -> usize {
    match BUILD_THREADS.load(Ordering::Relaxed) {
        0 => available_parallelism(),
        n => n,
    }
}

/// Whether the current thread is already a helper worker (nested calls run
/// serially).
fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

/// Balanced contiguous chunk boundaries: `len` items over at most
/// `build_threads()` chunks of at least `min_per_chunk` items each.
/// Returns `(start, end)` pairs covering `0..len` in order.
fn chunk_bounds(len: usize, min_per_chunk: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let max_chunks = len / min_per_chunk.max(1);
    let chunks = build_threads().min(max_chunks).max(1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let end = start + base + usize::from(i < extra);
        bounds.push((start, end));
        start = end;
    }
    bounds
}

/// Runs `f` over balanced contiguous sub-ranges of `0..len` — in parallel
/// when more than one chunk is warranted — and returns the per-chunk
/// results **in range order**. With `f` a pure function of its range, the
/// concatenated output is identical at every thread count.
///
/// `min_per_chunk` bounds the split so tiny inputs are not smeared across
/// threads (spawn latency would dominate).
pub fn map_ranges<R, F>(len: usize, min_per_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let bounds = chunk_bounds(len, min_per_chunk);
    if bounds.len() <= 1 || in_parallel_region() {
        return bounds
            .into_iter()
            .map(|(start, end)| {
                let _timer = fairnn_obs::Timer::start(&CHUNK_NS);
                f(start..end)
            })
            .collect();
    }
    thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|(start, end)| {
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    let _timer = fairnn_obs::Timer::start(&CHUNK_NS);
                    f(start..end)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel build worker panicked"))
            .collect()
    })
}

/// The slice form of [`map_ranges`]: runs `f(start, &items[start..end])`
/// over balanced contiguous chunks of `items` and returns the per-chunk
/// results in chunk order.
pub fn map_slices<T, R, F>(items: &[T], min_per_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_ranges(items.len(), min_per_chunk, |range| {
        f(range.start, &items[range])
    })
}

/// Maps `f` over `0..len` — in parallel chunks — returning the results in
/// index order. This is the per-item form of [`map_ranges`] for work keyed
/// by an index (one LSH table, one shard, one snapshot section).
pub fn map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunks = map_ranges(len, 1, |range| range.map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Runs `f(index, &mut item)` for every item — in parallel over disjoint
/// contiguous chunks. The mutations commute by construction (each item is
/// touched by exactly one worker), so the post-state is identical at every
/// thread count.
pub fn for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let bounds = chunk_bounds(items.len(), 1);
    if bounds.len() <= 1 || in_parallel_region() {
        let _timer = fairnn_obs::Timer::start(&CHUNK_NS);
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    thread::scope(|scope| {
        let f = &f;
        let mut rest = items;
        let mut consumed = 0;
        for (start, end) in bounds {
            let (chunk, tail) = rest.split_at_mut(end - consumed);
            rest = tail;
            consumed = end;
            scope.spawn(move || {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                let _timer = fairnn_obs::Timer::start(&CHUNK_NS);
                for (offset, item) in chunk.iter_mut().enumerate() {
                    f(start + offset, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The knob is process-global; tests that sweep it take this lock so
    /// they do not observe each other's settings.
    static KNOB: Mutex<()> = Mutex::new(());

    #[test]
    fn knob_roundtrips_and_zero_means_auto() {
        let _guard = KNOB.lock().unwrap();
        set_build_threads(3);
        assert_eq!(build_threads(), 3);
        set_build_threads(0);
        assert_eq!(build_threads(), available_parallelism());
    }

    #[test]
    fn chunk_bounds_cover_the_range_in_order() {
        let _guard = KNOB.lock().unwrap();
        set_build_threads(4);
        let bounds = chunk_bounds(10, 1);
        assert!(bounds.len() <= 4);
        assert_eq!(bounds.first().map(|b| b.0), Some(0));
        assert_eq!(bounds.last().map(|b| b.1), Some(10));
        for pair in bounds.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "chunks must be contiguous");
        }
        assert!(chunk_bounds(0, 1).is_empty());
        // A large minimum collapses to one chunk.
        assert_eq!(chunk_bounds(10, 100), vec![(0, 10)]);
        set_build_threads(0);
    }

    #[test]
    fn map_slices_is_order_preserving_at_every_thread_count() {
        let _guard = KNOB.lock().unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<Vec<u64>> = vec![items.iter().map(|x| x * 3).collect()];
        let serial: Vec<u64> = serial.into_iter().flatten().collect();
        for threads in [1, 2, 5, 8] {
            set_build_threads(threads);
            let mapped: Vec<u64> = map_slices(&items, 1, |_, chunk| {
                chunk.iter().map(|x| x * 3).collect::<Vec<u64>>()
            })
            .into_iter()
            .flatten()
            .collect();
            assert_eq!(mapped, serial, "threads = {threads}");
        }
        set_build_threads(0);
    }

    #[test]
    fn map_indexed_preserves_index_order() {
        let _guard = KNOB.lock().unwrap();
        for threads in [1, 3, 8] {
            set_build_threads(threads);
            let out = map_indexed(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        set_build_threads(0);
        assert!(map_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let _guard = KNOB.lock().unwrap();
        for threads in [1, 4] {
            set_build_threads(threads);
            let mut items = vec![0usize; 101];
            for_each_mut(&mut items, |i, slot| *slot += i + 1);
            assert_eq!(
                items,
                (0..101).map(|i| i + 1).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
        set_build_threads(0);
    }

    #[test]
    fn nested_calls_run_serially_and_stay_correct() {
        let _guard = KNOB.lock().unwrap();
        set_build_threads(4);
        let outer: Vec<Vec<usize>> = map_indexed(6, |i| map_indexed(5, move |j| i * 10 + j));
        for (i, inner) in outer.iter().enumerate() {
            assert_eq!(inner, &(0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
        set_build_threads(0);
    }
}
