//! A minimal fixed-size thread pool (std-only; the workspace has no
//! dependency budget for an executor).
//!
//! Hoisted from the serving engine so every layer shares one threading
//! substrate: the engine dispatches query batches on a [`ThreadPool`], the
//! build path uses the scoped fork/join helpers of the crate root. Jobs are
//! executed in submission order per worker but with no cross-worker ordering
//! guarantee — callers that need deterministic output tag jobs and reorder
//! results, exactly as `QueryEngine::run_batch` does.

use std::sync::{mpsc, Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Jobs submitted but not yet started: the serving pool's backlog. A
/// persistently positive depth means batches arrive faster than the
/// workers drain them.
static QUEUE_DEPTH: fairnn_obs::LazyGauge = fairnn_obs::LazyGauge::new(
    "parallel_pool_queue_depth",
    "jobs submitted to the serving thread pool and not yet started",
);

/// A fixed set of worker threads consuming jobs from one shared queue.
/// Dropping the pool closes the queue and joins every worker.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads >= 1` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                thread::spawn(move || loop {
                    let job = receiver.lock().expect("pool receiver poisoned").recv();
                    match job {
                        Ok(job) => {
                            QUEUE_DEPTH.add(-1);
                            job()
                        }
                        Err(_) => break, // pool dropped
                    }
                })
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Enqueues one job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        QUEUE_DEPTH.add(1);
        self.sender
            .as_ref()
            .expect("pool is live")
            .send(Box::new(job))
            .expect("workers alive while pool is live");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job_and_joins_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins the workers
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }
}
