//! Output-frequency histograms.
//!
//! [`FrequencyHistogram`] counts how often each point id was returned by a
//! sampler over repeated queries. [`SimilarityProfile`] aggregates those
//! counts by similarity level — the quantity plotted in Figure 1 of the
//! paper, where each marker is "the average relative frequency among all
//! points having this similarity for a fixed query point".

use fairnn_space::PointId;
use std::collections::BTreeMap;

/// Frequency counts of returned point ids (plus the count of `⊥`/no-result
/// outcomes), typically accumulated over many repetitions of one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrequencyHistogram {
    counts: BTreeMap<u32, u64>,
    none_count: u64,
    total: u64,
}

impl FrequencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sampler outcome (`Some(id)` or `None` for `⊥`).
    pub fn record(&mut self, outcome: Option<PointId>) {
        self.total += 1;
        match outcome {
            Some(id) => *self.counts.entry(id.0).or_insert(0) += 1,
            None => self.none_count += 1,
        }
    }

    /// Records an id directly.
    pub fn record_id(&mut self, id: PointId) {
        self.record(Some(id));
    }

    /// Total number of recorded outcomes (including `⊥`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of `⊥` outcomes.
    pub fn none_count(&self) -> u64 {
        self.none_count
    }

    /// Number of distinct ids that were returned at least once.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Count of a specific id.
    pub fn count(&self, id: PointId) -> u64 {
        self.counts.get(&id.0).copied().unwrap_or(0)
    }

    /// Relative frequency of a specific id (0 when nothing was recorded).
    pub fn relative_frequency(&self, id: PointId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(id) as f64 / self.total as f64
        }
    }

    /// Iterator over `(id, count)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, u64)> + '_ {
        self.counts.iter().map(|(&id, &c)| (PointId(id), c))
    }

    /// The empirical probability vector over a given support (ids not in the
    /// support are ignored; callers that want strict checking should compare
    /// [`FrequencyHistogram::support_size`] with the expected support first).
    pub fn empirical_distribution(&self, support: &[PointId]) -> Vec<f64> {
        let denom = self.total.max(1) as f64;
        support
            .iter()
            .map(|id| self.count(*id) as f64 / denom)
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &FrequencyHistogram) {
        for (id, c) in other.counts.iter() {
            *self.counts.entry(*id).or_insert(0) += c;
        }
        self.none_count += other.none_count;
        self.total += other.total;
    }
}

/// One point of a Figure 1-style scatter: all neighbourhood members at (or
/// near) the same similarity to the query, averaged together.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityBucket {
    /// Representative similarity of the bucket (the rounded value shared by
    /// its members).
    pub similarity: f64,
    /// Number of neighbourhood points at this similarity.
    pub num_points: usize,
    /// Average relative frequency with which these points were reported.
    pub mean_relative_frequency: f64,
    /// Smallest relative frequency among the points in the bucket.
    pub min_relative_frequency: f64,
    /// Largest relative frequency among the points in the bucket.
    pub max_relative_frequency: f64,
}

/// Aggregation of an output histogram by the similarity of each returned
/// point to the query (Figure 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimilarityProfile {
    buckets: Vec<SimilarityBucket>,
}

impl SimilarityProfile {
    /// Builds the profile from an output histogram and the similarities of
    /// the neighbourhood points.
    ///
    /// `members` lists every point of the true neighbourhood together with
    /// its similarity to the query; points that were never reported
    /// contribute zero frequency (this is essential — a biased sampler is
    /// detected precisely because some members are under-reported).
    /// Similarities are grouped after rounding to `decimals` decimal places.
    pub fn from_histogram(
        histogram: &FrequencyHistogram,
        members: &[(PointId, f64)],
        decimals: u32,
    ) -> Self {
        let scale = 10f64.powi(decimals as i32);
        let mut groups: BTreeMap<i64, Vec<(PointId, f64)>> = BTreeMap::new();
        for (id, sim) in members {
            let key = (sim * scale).round() as i64;
            groups.entry(key).or_default().push((*id, *sim));
        }
        let buckets = groups
            .into_iter()
            .map(|(key, ids)| {
                let freqs: Vec<f64> = ids
                    .iter()
                    .map(|(id, _)| histogram.relative_frequency(*id))
                    .collect();
                let sum: f64 = freqs.iter().sum();
                let min = freqs.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = freqs.iter().cloned().fold(0.0, f64::max);
                SimilarityBucket {
                    similarity: key as f64 / scale,
                    num_points: ids.len(),
                    mean_relative_frequency: sum / ids.len() as f64,
                    min_relative_frequency: if min.is_finite() { min } else { 0.0 },
                    max_relative_frequency: max,
                }
            })
            .collect();
        Self { buckets }
    }

    /// The aggregated buckets, ordered by increasing similarity.
    pub fn buckets(&self) -> &[SimilarityBucket] {
        &self.buckets
    }

    /// Returns `true` when there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Pearson correlation between similarity and mean relative frequency
    /// across buckets. A fair sampler should have correlation near zero;
    /// the standard LSH baseline has a clearly positive correlation (bias
    /// towards the most similar points), which is the qualitative finding of
    /// Figure 1.
    pub fn similarity_frequency_correlation(&self) -> f64 {
        let n = self.buckets.len();
        if n < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.buckets.iter().map(|b| b.similarity).collect();
        let ys: Vec<f64> = self
            .buckets
            .iter()
            .map(|b| b.mean_relative_frequency)
            .collect();
        correlation(&xs, &ys)
    }
}

/// Pearson correlation of two equal-length slices; 0 when either side has no
/// variance.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal-length inputs");
    let n = xs.len() as f64;
    if xs.is_empty() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_frequencies() {
        let mut h = FrequencyHistogram::new();
        h.record_id(PointId(1));
        h.record_id(PointId(1));
        h.record_id(PointId(2));
        h.record(None);
        assert_eq!(h.total(), 4);
        assert_eq!(h.none_count(), 1);
        assert_eq!(h.count(PointId(1)), 2);
        assert_eq!(h.count(PointId(3)), 0);
        assert_eq!(h.support_size(), 2);
        assert!((h.relative_frequency(PointId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(h.iter().count(), 2);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = FrequencyHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.relative_frequency(PointId(0)), 0.0);
        assert_eq!(
            h.empirical_distribution(&[PointId(0), PointId(1)]),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FrequencyHistogram::new();
        a.record_id(PointId(1));
        let mut b = FrequencyHistogram::new();
        b.record_id(PointId(1));
        b.record_id(PointId(2));
        b.record(None);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(PointId(1)), 2);
        assert_eq!(a.count(PointId(2)), 1);
        assert_eq!(a.none_count(), 1);
    }

    #[test]
    fn empirical_distribution_over_support() {
        let mut h = FrequencyHistogram::new();
        for _ in 0..6 {
            h.record_id(PointId(0));
        }
        for _ in 0..4 {
            h.record_id(PointId(5));
        }
        let dist = h.empirical_distribution(&[PointId(0), PointId(5), PointId(9)]);
        assert_eq!(dist, vec![0.6, 0.4, 0.0]);
    }

    #[test]
    fn similarity_profile_groups_by_rounded_similarity() {
        let mut h = FrequencyHistogram::new();
        for _ in 0..8 {
            h.record_id(PointId(0));
        }
        for _ in 0..2 {
            h.record_id(PointId(1));
        }
        // Point 2 was never reported.
        let members = vec![(PointId(0), 0.601), (PointId(1), 0.599), (PointId(2), 0.30)];
        let profile = SimilarityProfile::from_histogram(&h, &members, 1);
        assert_eq!(profile.buckets().len(), 2);
        let low = &profile.buckets()[0];
        assert_eq!(low.similarity, 0.3);
        assert_eq!(low.num_points, 1);
        assert_eq!(low.mean_relative_frequency, 0.0);
        let high = &profile.buckets()[1];
        assert_eq!(high.similarity, 0.6);
        assert_eq!(high.num_points, 2);
        assert!((high.mean_relative_frequency - 0.5).abs() < 1e-12);
        assert!((high.max_relative_frequency - 0.8).abs() < 1e-12);
        assert!((high.min_relative_frequency - 0.2).abs() < 1e-12);
    }

    #[test]
    fn biased_output_has_positive_similarity_correlation() {
        // Frequencies increasing with similarity => positive correlation.
        let mut h = FrequencyHistogram::new();
        let members: Vec<(PointId, f64)> = (0..10)
            .map(|i| (PointId(i), 0.1 + 0.05 * i as f64))
            .collect();
        for (i, (id, _)) in members.iter().enumerate() {
            for _ in 0..=(i * 3) {
                h.record_id(*id);
            }
        }
        let profile = SimilarityProfile::from_histogram(&h, &members, 2);
        assert!(profile.similarity_frequency_correlation() > 0.8);
    }

    #[test]
    fn uniform_output_has_near_zero_similarity_correlation() {
        let mut h = FrequencyHistogram::new();
        let members: Vec<(PointId, f64)> = (0..10)
            .map(|i| (PointId(i), 0.1 + 0.05 * i as f64))
            .collect();
        for (id, _) in &members {
            for _ in 0..50 {
                h.record_id(*id);
            }
        }
        let profile = SimilarityProfile::from_histogram(&h, &members, 2);
        assert!(profile.similarity_frequency_correlation().abs() < 1e-9);
    }

    #[test]
    fn correlation_edge_cases() {
        assert_eq!(correlation(&[], &[]), 0.0);
        assert_eq!(correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert!((correlation(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((correlation(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn correlation_rejects_mismatched_lengths() {
        let _ = correlation(&[1.0], &[1.0, 2.0]);
    }
}
