//! Fairness and uniformity statistics for sampled near-neighbor outputs.
//!
//! The paper's evaluation (Section 6) measures *unfairness* of a near
//! neighbor data structure by repeatedly querying it and comparing the
//! empirical distribution of returned points against the uniform
//! distribution over the true neighbourhood `B_S(q, r)`. This crate provides
//! the measurement machinery:
//!
//! * [`histogram`] — frequency counting of sampled point ids, and the
//!   per-similarity aggregation plotted in Figure 1 (average relative
//!   frequency of all points at the same similarity level);
//! * [`uniformity`] — divergence measures between the empirical and uniform
//!   distributions (total variation distance, KL divergence, chi-square
//!   statistic, min/max frequency ratio);
//! * [`summary`] — simple summaries (mean, standard deviation, quartiles)
//!   used e.g. for the error bars of Figure 2;
//! * [`table`] — plain-text table rendering for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod summary;
pub mod table;
pub mod uniformity;

pub use histogram::{FrequencyHistogram, SimilarityProfile};
pub use summary::Summary;
pub use table::TextTable;
pub use uniformity::UniformityReport;
