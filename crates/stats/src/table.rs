//! Plain-text table rendering.
//!
//! The experiment binaries print their results as aligned text tables (one
//! per figure/table of the paper). Keeping the renderer here lets the
//! binaries stay focused on the experimental logic and gives the integration
//! tests something cheap to assert against.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. The number of cells must match the number of headers.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable values.
    pub fn add_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_line = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, "{:<width$}", cell, width = widths[i] + 2);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", render_line(&self.headers, &widths));
        let total_width: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total_width.max(4)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_line(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a float with a fixed number of decimals (helper shared by the
/// experiment binaries).
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    if value.is_infinite() {
        return "inf".to_string();
    }
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_and_rows() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_display_row(&[123, 456]);
        assert_eq!(t.num_rows(), 2);
        let rendered = t.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("name"));
        assert!(rendered.contains("alpha"));
        assert!(rendered.contains("456"));
        assert_eq!(rendered, format!("{t}"));
    }

    #[test]
    fn columns_are_aligned() {
        let mut t = TextTable::new("", &["a", "bbbb"]);
        t.add_row(vec!["xxxxxx".into(), "1".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        // Header line and row line should place the second column at the
        // same offset.
        let header = lines[0];
        let row = lines[2];
        let header_pos = header.find("bbbb").unwrap();
        let row_pos = row.find('1').unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn mismatched_row_length_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_f64_handles_infinity() {
        assert_eq!(fmt_f64(f64::INFINITY, 2), "inf");
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(1.0, 0), "1");
    }
}
