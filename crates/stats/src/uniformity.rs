//! Divergence of an empirical output distribution from uniform.
//!
//! The fairness guarantee of Definitions 1 and 2 is that every point of the
//! true neighbourhood is returned with probability `1/|B_S(q, r)|`. Given an
//! output histogram over repeated queries, [`UniformityReport`] quantifies
//! the deviation from that target with several standard measures; the
//! integration tests and experiment binaries use it to assert that the fair
//! samplers are (statistically) uniform while the standard LSH baseline is
//! not.

use crate::histogram::FrequencyHistogram;
use fairnn_space::PointId;

/// Deviation measures of an empirical distribution from the uniform
/// distribution over a fixed support.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformityReport {
    /// Size of the support (the true neighbourhood size `b_S(q, r)`).
    pub support_size: usize,
    /// Number of samples the report is based on.
    pub samples: u64,
    /// Total variation distance `½ Σ |p̂_i − 1/n|` ∈ [0, 1].
    pub total_variation: f64,
    /// KL divergence `Σ p̂_i ln(p̂_i n)` (natural log, 0 ln 0 = 0).
    pub kl_divergence: f64,
    /// Pearson chi-square statistic `Σ (o_i − e)² / e` with `e = samples/n`.
    pub chi_square: f64,
    /// Degrees of freedom of the chi-square statistic (`n − 1`).
    pub degrees_of_freedom: usize,
    /// Ratio of the largest to the smallest empirical frequency
    /// (`+∞` when some support point was never returned).
    pub max_min_ratio: f64,
    /// Fraction of samples that fell outside the support (should be 0 for a
    /// correct sampler; positive values indicate the sampler returned
    /// non-neighbours or `⊥`).
    pub out_of_support: f64,
}

impl UniformityReport {
    /// Builds the report from a histogram and the true neighbourhood.
    ///
    /// # Panics
    ///
    /// Panics when `support` is empty.
    pub fn from_histogram(histogram: &FrequencyHistogram, support: &[PointId]) -> Self {
        assert!(!support.is_empty(), "support must not be empty");
        let n = support.len() as f64;
        let samples = histogram.total();
        let in_support: u64 = support.iter().map(|id| histogram.count(*id)).sum();
        let out_of_support = if samples == 0 {
            0.0
        } else {
            (samples - in_support) as f64 / samples as f64
        };

        let denom = samples.max(1) as f64;
        let freqs: Vec<f64> = support
            .iter()
            .map(|id| histogram.count(*id) as f64 / denom)
            .collect();
        let uniform = 1.0 / n;

        let total_variation =
            0.5 * freqs.iter().map(|p| (p - uniform).abs()).sum::<f64>() + 0.5 * out_of_support;

        let kl_divergence = freqs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * (p * n).ln())
            .sum::<f64>();

        let expected = denom / n;
        let chi_square = support
            .iter()
            .map(|id| {
                let observed = histogram.count(*id) as f64;
                (observed - expected) * (observed - expected) / expected
            })
            .sum::<f64>();

        let max = freqs.iter().cloned().fold(0.0, f64::max);
        let min = freqs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_min_ratio = if min > 0.0 { max / min } else { f64::INFINITY };

        Self {
            support_size: support.len(),
            samples,
            total_variation,
            kl_divergence,
            chi_square,
            degrees_of_freedom: support.len().saturating_sub(1),
            max_min_ratio,
            out_of_support,
        }
    }

    /// Approximate upper tail probability of the chi-square statistic under
    /// the uniform null hypothesis (Wilson–Hilferty normal approximation).
    /// Small values (< 0.01, say) indicate a significant departure from
    /// uniformity.
    pub fn chi_square_p_value(&self) -> f64 {
        let k = self.degrees_of_freedom as f64;
        if k == 0.0 {
            return 1.0;
        }
        let x = self.chi_square;
        // Wilson–Hilferty: (X/k)^(1/3) is approximately normal with mean
        // 1 − 2/(9k) and variance 2/(9k).
        let z = ((x / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
        1.0 - standard_normal_cdf(z)
    }

    /// A conventional yes/no verdict: the empirical distribution is
    /// "consistent with uniform" when the chi-square test does not reject at
    /// the given significance level and no sample fell outside the support.
    pub fn is_consistent_with_uniform(&self, significance: f64) -> bool {
        self.out_of_support == 0.0 && self.chi_square_p_value() >= significance
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erfc approximation.
fn standard_normal_cdf(x: f64) -> f64 {
    let z = x.abs() / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.5 * z);
    let erfc = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    let upper_half = 0.5 * erfc;
    if x >= 0.0 {
        1.0 - upper_half
    } else {
        upper_half
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_histogram(n: u32, per_point: u64) -> (FrequencyHistogram, Vec<PointId>) {
        let mut h = FrequencyHistogram::new();
        let support: Vec<PointId> = (0..n).map(PointId).collect();
        for id in &support {
            for _ in 0..per_point {
                h.record_id(*id);
            }
        }
        (h, support)
    }

    #[test]
    fn perfectly_uniform_distribution_scores_zero() {
        let (h, support) = uniform_histogram(10, 100);
        let report = UniformityReport::from_histogram(&h, &support);
        assert_eq!(report.support_size, 10);
        assert_eq!(report.samples, 1000);
        assert!(report.total_variation < 1e-12);
        assert!(report.kl_divergence.abs() < 1e-12);
        assert!(report.chi_square < 1e-12);
        assert!((report.max_min_ratio - 1.0).abs() < 1e-12);
        assert_eq!(report.out_of_support, 0.0);
        assert!(report.is_consistent_with_uniform(0.01));
    }

    #[test]
    fn degenerate_distribution_scores_high() {
        let mut h = FrequencyHistogram::new();
        let support: Vec<PointId> = (0..10).map(PointId).collect();
        for _ in 0..1000 {
            h.record_id(PointId(0));
        }
        let report = UniformityReport::from_histogram(&h, &support);
        assert!((report.total_variation - 0.9).abs() < 1e-12);
        assert!((report.kl_divergence - (10f64).ln()).abs() < 1e-9);
        assert!(report.chi_square > 1000.0);
        assert_eq!(report.max_min_ratio, f64::INFINITY);
        assert!(!report.is_consistent_with_uniform(0.01));
        assert!(report.chi_square_p_value() < 1e-6);
    }

    #[test]
    fn out_of_support_samples_are_flagged() {
        let mut h = FrequencyHistogram::new();
        let support = vec![PointId(0), PointId(1)];
        for _ in 0..50 {
            h.record_id(PointId(0));
            h.record_id(PointId(1));
        }
        for _ in 0..100 {
            h.record_id(PointId(99)); // non-neighbour
        }
        let report = UniformityReport::from_histogram(&h, &support);
        assert!((report.out_of_support - 0.5).abs() < 1e-12);
        assert!(!report.is_consistent_with_uniform(0.01));
    }

    #[test]
    fn sampling_noise_is_tolerated_by_the_chi_square_test() {
        // Simulate genuine uniform sampling with a simple LCG so the test is
        // deterministic, and check the verdict is "consistent".
        let support: Vec<PointId> = (0..20).map(PointId).collect();
        let mut h = FrequencyHistogram::new();
        let mut state = 0x12345678u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = (state >> 33) % 20;
            h.record_id(PointId(pick as u32));
        }
        let report = UniformityReport::from_histogram(&h, &support);
        assert!(report.total_variation < 0.05);
        assert!(
            report.is_consistent_with_uniform(0.001),
            "chi2 = {}, p = {}",
            report.chi_square,
            report.chi_square_p_value()
        );
    }

    #[test]
    fn mild_bias_is_detected_with_enough_samples() {
        // Point 0 gets double the probability of everyone else.
        let support: Vec<PointId> = (0..10).map(PointId).collect();
        let mut h = FrequencyHistogram::new();
        for _round in 0..2000u64 {
            for id in &support {
                h.record_id(*id);
            }
            h.record_id(PointId(0)); // extra mass on point 0
        }
        let report = UniformityReport::from_histogram(&h, &support);
        assert!(report.max_min_ratio > 1.5);
        assert!(!report.is_consistent_with_uniform(0.01));
    }

    #[test]
    fn p_value_is_in_unit_interval() {
        let (h, support) = uniform_histogram(5, 17);
        let report = UniformityReport::from_histogram(&h, &support);
        let p = report.chi_square_p_value();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic(expected = "support must not be empty")]
    fn empty_support_rejected() {
        let h = FrequencyHistogram::new();
        let _ = UniformityReport::from_histogram(&h, &[]);
    }

    #[test]
    fn single_point_support() {
        let mut h = FrequencyHistogram::new();
        for _ in 0..10 {
            h.record_id(PointId(3));
        }
        let report = UniformityReport::from_histogram(&h, &[PointId(3)]);
        assert_eq!(report.degrees_of_freedom, 0);
        assert_eq!(report.chi_square_p_value(), 1.0);
        assert!(report.is_consistent_with_uniform(0.05));
    }
}
