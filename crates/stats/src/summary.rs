//! Simple numeric summaries (mean, standard deviation, quantiles).
//!
//! Used by the experiment harness for the error bars of Figure 2 (25 % and
//! 75 % quartiles of empirical sampling probabilities) and for the cost
//! tables.

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// 25 % quantile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75 % quantile.
    pub q75: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice of values. Returns an all-zero
    /// summary for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                q25: 0.0,
                median: 0.0,
                q75: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Self {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            q25: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q75: quantile(&sorted, 0.75),
            max: sorted[n - 1],
        }
    }

    /// Interquartile range `q75 − q25`.
    pub fn iqr(&self) -> f64 {
        self.q75 - self.q25
    }
}

/// Linear-interpolation quantile of an already-sorted slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        sorted[lower]
    } else {
        let frac = pos - lower as f64;
        sorted[lower] * (1.0 - frac) + sorted[upper] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
        assert_eq!(s.iqr(), 2.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.q25, 7.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile(&sorted, 0.0), 0.0);
        assert_eq!(quantile(&sorted, 1.0), 10.0);
        assert_eq!(quantile(&sorted, 0.5), 5.0);
        assert_eq!(quantile(&sorted, 0.25), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn quantile_of_empty_slice_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn quantile_out_of_range_panics() {
        let _ = quantile(&[1.0], 1.5);
    }
}
