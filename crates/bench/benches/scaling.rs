//! Scaling ablation: how the query cost of the fair samplers grows with the
//! dataset size `n` — the empirical counterpart of the
//! `O((n^ρ + b_cr/b_r) polylog n)` bounds of Theorems 1 and 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairnn_bench::figures::paper_lsh_params;
use fairnn_bench::{SetWorkload, WorkloadKind};
use fairnn_core::{FairNnis, FairNns, NeighborSampler, SimilarityAtLeast};
use fairnn_lsh::OneBitMinHash;
use fairnn_space::Jaccard;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const R: f64 = 0.2;

fn bench_query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_scaling");
    group.sample_size(20);
    for scale in [0.05f64, 0.1, 0.2] {
        let w = SetWorkload::generate(WorkloadKind::LastFm, scale, 4, 1);
        if w.queries.is_empty() {
            continue;
        }
        let n = w.dataset.len();
        let params = paper_lsh_params(n, R);
        let near = SimilarityAtLeast::new(Jaccard, R);
        let queries = w.query_points();
        let mut rng = StdRng::seed_from_u64(9);
        let mut nns = FairNns::build(&OneBitMinHash, params, &w.dataset, near, &mut rng);
        let mut nnis = FairNnis::build(&OneBitMinHash, params, &w.dataset, near, &mut rng);

        group.bench_with_input(BenchmarkId::new("fair_nns", n), &queries, |b, queries| {
            let mut rng = StdRng::seed_from_u64(10);
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(nns.sample(q, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("fair_nnis", n), &queries, |b, queries| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(nnis.sample(q, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_query_scaling
}
criterion_main!(benches);
