//! Micro-benchmarks of the LSH substrate: MinHash evaluation, index
//! construction and collision queries (the `n^ρ` part of every query bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairnn_bench::{SetWorkload, WorkloadKind};
use fairnn_lsh::{LshHasher, LshIndex, MinHasher, OneBitMinHash, OneBitMinHasher, ParamsBuilder};
use std::hint::black_box;

fn bench_minhash_eval(c: &mut Criterion) {
    let workload = SetWorkload::generate(WorkloadKind::LastFm, 0.1, 2, 1);
    let set = workload.dataset.point(fairnn_space::PointId(0)).clone();
    let hasher = MinHasher::from_seed(3);
    let one_bit = OneBitMinHasher::from_seed(3);
    let mut group = c.benchmark_group("minhash_eval");
    group.bench_function("full_minhash", |b| {
        b.iter(|| black_box(hasher.hash(black_box(&set))))
    });
    group.bench_function("one_bit_minhash", |b| {
        b.iter(|| black_box(one_bit.hash(black_box(&set))))
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_index_build");
    group.sample_size(10);
    for scale in [0.05f64, 0.1] {
        let workload = SetWorkload::generate(WorkloadKind::LastFm, scale, 2, 1);
        let n = workload.dataset.len();
        // Moderate-recall parameters keep the bench affordable while still
        // exercising the K x L structure.
        let params = ParamsBuilder::new(n, 0.3, 0.1)
            .with_recall(0.9)
            .empirical(&OneBitMinHash);
        group.bench_with_input(BenchmarkId::new("one_bit_minhash", n), &workload, |b, w| {
            b.iter(|| {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                black_box(LshIndex::build(
                    &OneBitMinHash,
                    params,
                    w.dataset.points(),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

/// Batched (`hash_all`) vs per-row evaluation of a full `K × L` bank of
/// MinHash rows — the hashing half of every query.
fn bench_hash_all(c: &mut Criterion) {
    use fairnn_bench::figures::paper_lsh_params;
    use fairnn_lsh::QueryScratch;
    use rand::SeedableRng;
    let workload = SetWorkload::generate(WorkloadKind::LastFm, 0.05, 5, 1);
    let n = workload.dataset.len();
    let params = paper_lsh_params(n, 0.2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let index = LshIndex::build(&OneBitMinHash, params, workload.dataset.points(), &mut rng);
    let queries = workload.query_points();
    let mut group = c.benchmark_group("hash_keys");
    let mut scratch = QueryScratch::new();
    group.bench_function("batched_hash_all", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            index.query_keys_into(q, &mut scratch.keys);
            black_box(scratch.keys.last().copied())
        })
    });
    group.bench_function("per_row_hash", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            scratch.keys.clear();
            scratch
                .keys
                .extend(index.hashers().iter().map(|h| h.hash(q)));
            black_box(scratch.keys.last().copied())
        })
    });
    group.finish();
}

fn bench_collision_query(c: &mut Criterion) {
    use rand::SeedableRng;
    let workload = SetWorkload::generate(WorkloadKind::LastFm, 0.1, 5, 1);
    let n = workload.dataset.len();
    let params = ParamsBuilder::new(n, 0.3, 0.1)
        .with_recall(0.95)
        .empirical(&OneBitMinHash);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let index = LshIndex::build(&OneBitMinHash, params, workload.dataset.points(), &mut rng);
    let queries = workload.query_points();
    let mut group = c.benchmark_group("lsh_collision_query");
    group.bench_function("colliding_ids", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(index.colliding_ids(q))
        })
    });
    group.bench_function("query_buckets", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(index.query_buckets(q).len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_minhash_eval, bench_hash_all, bench_index_build, bench_collision_query
}
criterion_main!(benches);
