//! Micro-benchmarks of the count-distinct sketches (Section 2.3 / Section 4
//! substrate) and of the alternative estimators used in the ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairnn_sketch::{
    BottomKSketch, CardinalityEstimator, DistinctSketch, DistinctSketchParams, HyperLogLog,
};
use std::hint::black_box;

fn params() -> DistinctSketchParams {
    DistinctSketchParams {
        epsilon: 0.5,
        delta: 1e-4,
        universe: 1 << 20,
    }
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_insert_10k");
    group.bench_function("distinct_sketch", |b| {
        b.iter(|| {
            let mut s = DistinctSketch::new(1, params());
            for x in 0..10_000u64 {
                s.insert(black_box(x));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("bottom_k", |b| {
        b.iter(|| {
            let mut s = BottomKSketch::new(1, 256);
            for x in 0..10_000u64 {
                s.insert(black_box(x));
            }
            black_box(s.estimate())
        })
    });
    group.bench_function("hyperloglog", |b| {
        b.iter(|| {
            let mut s = HyperLogLog::new(1, 12);
            for x in 0..10_000u64 {
                s.insert(black_box(x));
            }
            black_box(s.estimate())
        })
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    // Merging L bucket sketches is the first step of every Section 4 query.
    let mut group = c.benchmark_group("sketch_merge");
    for num_sketches in [8usize, 32, 128] {
        let sketches: Vec<DistinctSketch> = (0..num_sketches)
            .map(|i| {
                DistinctSketch::from_elements(7, params(), (0..500u64).map(|x| x + 313 * i as u64))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("distinct_sketch", num_sketches),
            &sketches,
            |b, sketches| {
                b.iter(|| {
                    let mut merged = DistinctSketch::new(7, params());
                    for s in sketches {
                        merged.merge(s);
                    }
                    black_box(merged.estimate())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_insert, bench_merge
}
criterion_main!(benches);
