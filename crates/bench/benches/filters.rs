//! Benchmarks of the Section 5 / Appendix B filter structures: build cost,
//! (α, β)-NN query cost and α-NNIS sampling cost on planted inner-product
//! workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairnn_core::{FilterConfig, FilterNnis, NeighborSampler, TensorFilter};
use fairnn_data::{PlantedInstance, PlantedInstanceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(background: usize) -> PlantedInstance {
    PlantedInstance::generate(
        PlantedInstanceConfig {
            dim: 32,
            background,
            near: 15,
            mid: 60,
            alpha: 0.8,
            beta: 0.5,
        },
        7,
    )
}

fn config() -> FilterConfig {
    FilterConfig::new(0.8, 0.5)
        .with_epsilon(0.05)
        .with_repetitions(8)
}

fn bench_tensor_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_filter");
    group.sample_size(20);
    for background in [500usize, 2000] {
        let inst = instance(background);
        group.bench_with_input(BenchmarkId::new("build", background), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(TensorFilter::build(config(), &inst.dataset, &mut rng))
            })
        });
        let mut rng = StdRng::seed_from_u64(2);
        let filter = TensorFilter::build(config(), &inst.dataset, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("ann_query", background),
            &inst,
            |b, inst| b.iter(|| black_box(filter.solve_ann(&inst.dataset, &inst.query))),
        );
        group.bench_with_input(
            BenchmarkId::new("candidate_enumeration", background),
            &inst,
            |b, inst| b.iter(|| black_box(filter.query_candidates(&inst.query).len())),
        );
    }
    group.finish();
}

fn bench_filter_nnis(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_nnis");
    group.sample_size(20);
    for background in [500usize, 2000] {
        let inst = instance(background);
        group.bench_with_input(BenchmarkId::new("build", background), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                black_box(FilterNnis::build(config(), &inst.dataset, &mut rng))
            })
        });
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = FilterNnis::build(config(), &inst.dataset, &mut rng);
        group.bench_with_input(BenchmarkId::new("sample", background), &inst, |b, inst| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(sampler.sample(&inst.query, &mut rng)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_tensor_filter, bench_filter_nnis
}
criterion_main!(benches);
