//! Per-query cost of the fair samplers and baselines (the quantities behind
//! the paper's running-time theorems and the Section 6.3 discussion).

use criterion::{criterion_group, criterion_main, Criterion};
use fairnn_bench::figures::paper_lsh_params;
use fairnn_bench::{SetWorkload, WorkloadKind};
use fairnn_core::{
    ExactSampler, FairNnis, FairNns, NaiveFairLsh, NeighborSampler, RankSwapSampler,
    SimilarityAtLeast, StandardLsh,
};
use fairnn_lsh::OneBitMinHash;
use fairnn_space::Jaccard;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const R: f64 = 0.2;

fn workload() -> SetWorkload {
    SetWorkload::generate(WorkloadKind::LastFm, 0.1, 5, 1)
}

fn bench_sampler_queries(c: &mut Criterion) {
    let w = workload();
    let n = w.dataset.len();
    let params = paper_lsh_params(n, R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let queries = w.query_points();
    let mut rng = StdRng::seed_from_u64(7);

    let mut exact = ExactSampler::new(&w.dataset, near);
    let mut standard = StandardLsh::build(&OneBitMinHash, params, &w.dataset, near, &mut rng);
    let mut naive = NaiveFairLsh::build(&OneBitMinHash, params, &w.dataset, near, &mut rng);
    let mut nns = FairNns::build(&OneBitMinHash, params, &w.dataset, near, &mut rng);
    let mut rank_swap = RankSwapSampler::build(&OneBitMinHash, params, &w.dataset, near, &mut rng);
    let mut nnis = FairNnis::build(&OneBitMinHash, params, &w.dataset, near, &mut rng);

    let mut group = c.benchmark_group("sampler_query");
    group.sample_size(30);

    macro_rules! bench_one {
        ($name:literal, $sampler:expr) => {
            group.bench_function($name, |b| {
                let mut rng = StdRng::seed_from_u64(11);
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box($sampler.sample(q, &mut rng))
                })
            });
        };
    }

    bench_one!("exact_scan", exact);
    bench_one!("standard_lsh", standard);
    bench_one!("naive_fair_lsh", naive);
    bench_one!("fair_nns_section3", nns);
    bench_one!("rank_swap_appendix_a", rank_swap);
    bench_one!("fair_nnis_section4", nnis);
    group.finish();
}

fn bench_structure_build(c: &mut Criterion) {
    let w = workload();
    let n = w.dataset.len();
    let params = paper_lsh_params(n, R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let mut group = c.benchmark_group("sampler_build");
    group.sample_size(10);
    group.bench_function("fair_nns_section3", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(FairNns::build(
                &OneBitMinHash,
                params,
                &w.dataset,
                near,
                &mut rng,
            ))
        })
    });
    group.bench_function("fair_nnis_section4", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(FairNnis::build(
                &OneBitMinHash,
                params,
                &w.dataset,
                near,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_sampler_queries, bench_structure_build
}
criterion_main!(benches);
