//! Micro-benchmarks of the sharded serving engine: the two-level pipeline
//! across shard counts, batch throughput across thread counts, and the
//! rank-swap cache fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairnn_bench::figures::paper_lsh_params;
use fairnn_bench::{SetWorkload, WorkloadKind};
use fairnn_core::SimilarityAtLeast;
use fairnn_engine::{EngineConfig, QueryEngine, ShardedIndex, ShardedIndexConfig};
use fairnn_lsh::OneBitMinHash;
use fairnn_space::{Jaccard, SparseSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const R: f64 = 0.2;

fn workload() -> SetWorkload {
    SetWorkload::generate(WorkloadKind::LastFm, 0.15, 5, 9)
}

fn bench_two_level_pipeline(c: &mut Criterion) {
    let w = workload();
    let params = paper_lsh_params(w.dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let queries = w.query_points();
    let mut group = c.benchmark_group("engine_two_level_sample");
    for shards in [1usize, 4, 8] {
        let index = ShardedIndex::build(
            &OneBitMinHash,
            params,
            &w.dataset,
            near,
            ShardedIndexConfig::with_shards(shards).seeded(5),
        );
        group.bench_with_input(BenchmarkId::from_parameter(shards), &index, |b, index| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(index.sample(black_box(q), &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let w = workload();
    let params = paper_lsh_params(w.dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let batch: Vec<SparseSet> = (0..256)
        .map(|i| w.dataset.points()[i % w.dataset.len()].clone())
        .collect();
    let mut group = c.benchmark_group("engine_run_batch_256");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let mut engine = QueryEngine::build(
            &OneBitMinHash,
            params,
            &w.dataset,
            near,
            EngineConfig::default()
                .with_threads(threads)
                .with_shards(4)
                .with_seed(7)
                .with_cache_capacity(0),
        );
        group.bench_with_input(BenchmarkId::from_parameter(threads), &(), |b, ()| {
            b.iter(|| black_box(engine.run_batch(black_box(&batch))))
        });
    }
    group.finish();
}

fn bench_cache_fast_path(c: &mut Criterion) {
    let w = workload();
    let params = paper_lsh_params(w.dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let hot: Vec<SparseSet> = (0..256)
        .map(|i| w.dataset.points()[i % 4].clone())
        .collect();
    let mut engine = QueryEngine::build(
        &OneBitMinHash,
        params,
        &w.dataset,
        near,
        EngineConfig::default().with_shards(4).with_seed(11),
    );
    let _ = engine.run_batch(&hot); // warm the cache
    let mut group = c.benchmark_group("engine_rank_swap_fast_path_256");
    group.sample_size(20);
    group.bench_function("hot_batch", |b| {
        b.iter(|| black_box(engine.run_batch(black_box(&hot))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_two_level_pipeline,
    bench_batch_throughput,
    bench_cache_fast_path
);
criterion_main!(benches);
