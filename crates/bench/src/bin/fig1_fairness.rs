//! Figure 1 reproduction: output distribution of standard LSH vs fair LSH.
//!
//! For each dataset (Last.FM-like at r = 0.15, MovieLens-like at r = 0.2,
//! as in the paper) and each selected query, the binary repeatedly queries
//! the standard LSH structure (first near point found) and the fair LSH
//! structure (uniform over all collected near points), then reports the
//! average relative output frequency per similarity level, the
//! total-variation distance from uniform, and the similarity/frequency
//! correlation.
//!
//! With `--shards N` (N > 1) the sharded two-level engine of
//! `fairnn-engine` is additionally run through the same uniformity battery,
//! distributing queries over `--threads` workers.
//!
//! Usage: `cargo run -p fairnn-bench --release --bin fig1_fairness --
//!         [--scale 0.25] [--repetitions 2000] [--queries 10] [--paper-scale]
//!         [--threads 1] [--shards 1]`

use fairnn_bench::figures::{run_engine_distribution, run_output_distribution};
use fairnn_bench::{CommonArgs, SetWorkload, WorkloadKind};
use fairnn_stats::{table::fmt_f64, TextTable};

fn main() {
    let args = CommonArgs::from_env();
    println!("Figure 1 — (un)fairness of standard LSH vs fair LSH");
    println!(
        "scale = {}, repetitions = {}, queries = {}, seed = {}{}\n",
        args.scale,
        args.repetitions,
        args.queries,
        args.seed,
        args.engine_suffix()
    );

    let settings = [
        (WorkloadKind::LastFm, 0.15_f64),
        (WorkloadKind::MovieLens, 0.2_f64),
    ];

    for (kind, r) in settings {
        let workload = SetWorkload::generate(kind, args.scale, args.queries, args.seed);
        println!(
            "{} — {} users, {} usable queries, r = {r}",
            kind.name(),
            workload.dataset.len(),
            workload.queries.len()
        );
        let result = run_output_distribution(&workload, r, args.repetitions, args.seed + 1);

        let mut per_query = TextTable::new(
            format!(
                "{} (r = {r}): per-query deviation from uniform",
                kind.name()
            ),
            &[
                "query",
                "b_r",
                "TV standard",
                "TV fair",
                "corr standard",
                "corr fair",
            ],
        );
        for q in &result.per_query {
            per_query.add_row(vec![
                format!("{}", q.query),
                q.neighborhood_size.to_string(),
                fmt_f64(q.standard.report.total_variation, 3),
                fmt_f64(q.fair.report.total_variation, 3),
                fmt_f64(q.standard.correlation, 3),
                fmt_f64(q.fair.correlation, 3),
            ]);
        }
        println!("{per_query}");

        // The Figure 1 scatter itself: average relative frequency per
        // similarity level, for the first few queries.
        let mut scatter = TextTable::new(
            format!(
                "{} (r = {r}): relative frequency by similarity (first 3 queries)",
                kind.name()
            ),
            &["query", "similarity", "points", "standard LSH", "fair LSH"],
        );
        for q in result.per_query.iter().take(3) {
            for (std_bucket, fair_bucket) in q
                .standard
                .profile
                .buckets()
                .iter()
                .zip(q.fair.profile.buckets().iter())
            {
                scatter.add_row(vec![
                    format!("{}", q.query),
                    fmt_f64(std_bucket.similarity, 2),
                    std_bucket.num_points.to_string(),
                    fmt_f64(std_bucket.mean_relative_frequency, 4),
                    fmt_f64(fair_bucket.mean_relative_frequency, 4),
                ]);
            }
        }
        println!("{scatter}");

        println!(
            "summary: mean TV standard = {:.3}, mean TV fair = {:.3}, mean corr standard = {:.3}, mean corr fair = {:.3}\n",
            result.mean_standard_tv(),
            result.mean_fair_tv(),
            result.mean_standard_correlation(),
            result.mean_fair_correlation()
        );

        // The sharded engine against the same battery (only when sharding
        // was requested, so the default output stays identical).
        if args.shards > 1 {
            let engine = run_engine_distribution(
                &workload,
                r,
                args.shards,
                args.threads,
                args.repetitions,
                args.seed + 1,
            );
            let mut table = TextTable::new(
                format!(
                    "{} (r = {r}): sharded engine ({} shards) vs uniform",
                    kind.name(),
                    args.shards
                ),
                &["query", "b_r", "TV engine", "chi2 p", "consistent"],
            );
            for q in &engine.per_query {
                table.add_row(vec![
                    format!("{}", q.query),
                    q.neighborhood_size.to_string(),
                    fmt_f64(q.report.total_variation, 3),
                    fmt_f64(q.report.chi_square_p_value(), 3),
                    q.report.is_consistent_with_uniform(0.01).to_string(),
                ]);
            }
            println!("{table}");
            println!(
                "engine summary: mean TV sharded = {:.3} (fair LSH above: {:.3})\n",
                engine.mean_tv(),
                result.mean_fair_tv()
            );
        }
    }
}
