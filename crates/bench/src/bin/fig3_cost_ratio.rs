//! Figure 3 reproduction: the additional cost factor `b_S(q, cr)/b_S(q, r)`.
//!
//! All fair data structures in the paper carry an additive
//! `Õ(b_S(q, cr)/b_S(q, r))` term in their query time. This binary measures
//! that ratio exactly (by linear scan) on both synthetic datasets for
//! `r ∈ {0.15, 0.2, 0.25}` and `c ∈ {1/5, 1/4, 1/3, 1/2, 2/3}`, matching the
//! grid of the paper's Figure 3.
//!
//! Usage: `cargo run -p fairnn-bench --release --bin fig3_cost_ratio --
//!         [--scale 0.25] [--queries 10] [--seed 42] [--threads 1]`
//! (`--threads` distributes the exact `(r, c)` grid over workers without
//! changing the result.)

use fairnn_bench::figures::run_cost_ratio_threaded;
use fairnn_bench::{CommonArgs, SetWorkload, WorkloadKind};
use fairnn_stats::{table::fmt_f64, TextTable};

fn main() {
    let args = CommonArgs::from_env();
    println!("Figure 3 — cost ratio b_S(q, cr) / b_S(q, r)");
    println!(
        "scale = {}, queries = {}, seed = {}{}\n",
        args.scale,
        args.queries,
        args.seed,
        args.engine_suffix()
    );

    let rs = [0.15, 0.2, 0.25];
    let cs = [0.2, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0];

    for kind in [WorkloadKind::LastFm, WorkloadKind::MovieLens] {
        let workload = SetWorkload::generate(kind, args.scale, args.queries, args.seed);
        println!(
            "{} — {} users, {} queries",
            kind.name(),
            workload.dataset.len(),
            workload.queries.len()
        );
        let rows =
            run_cost_ratio_threaded(&workload.dataset, &workload.queries, &rs, &cs, args.threads);
        let mut table = TextTable::new(
            format!(
                "{}: ratio of |similarity >= c*r| to |similarity >= r|",
                kind.name()
            ),
            &["r", "c", "mean ratio", "median", "max"],
        );
        for row in rows {
            table.add_row(vec![
                fmt_f64(row.r, 2),
                fmt_f64(row.c, 2),
                fmt_f64(row.ratio.mean, 1),
                fmt_f64(row.ratio.median, 1),
                fmt_f64(row.ratio.max, 1),
            ]);
        }
        println!("{table}");
    }
}
