//! End-to-end serving throughput of `fairnn-server` over loopback TCP.
//!
//! Boots a real engine (Last.FM-like workload), serves it on an
//! ephemeral port, and drives it with `--threads` closed-loop keep-alive
//! clients, each recording per-request wall latency into its own
//! [`HistogramShard`]. The shards merge into one distribution — the
//! merge-order-invariant path the obs proptests pin — and the report is
//! queries/sec plus p50/p99/p999 tails.
//!
//! The run doubles as the CI smoke test for the server: it asserts
//! `/healthz` and `/metrics` answer, every measured query returns `200`
//! with a decodable [`BatchResponse`], a `/v1/commit` publishes a new
//! generation mid-run, and the final `/admin/drain` + join finishes
//! within its deadline with nothing force-closed.
//!
//! Usage: `cargo run -p fairnn-bench --release --bin server_throughput --
//!         [--scale 0.25] [--repetitions 2000] [--seed 42] [--threads 4]
//!         [--shards 4] [--json BENCH_server.json]`
//! (`--repetitions` is the total request count across all clients.)

use fairnn_bench::figures::paper_lsh_params;
use fairnn_bench::{json_fixed, CommonArgs, SetWorkload, WorkloadKind};
use fairnn_core::SimilarityAtLeast;
use fairnn_engine::{BatchResponse, EngineWriter, QueryRequest, ShardedIndexConfig, WriteBatch};
use fairnn_lsh::OneBitMinHash;
use fairnn_obs::HistogramShard;
use fairnn_server::{read_response, serve, ClientResponse, ServerConfig};
use fairnn_snapshot::{Codec, Decoder, Encoder};
use fairnn_space::{Jaccard, SparseSet};
use fairnn_stats::table::fmt_f64;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

const R: f64 = 0.2;

fn encode<T: Codec>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

fn request_bytes(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// One request/response exchange on a fresh connection (control plane).
fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&request_bytes(method, path, body))
        .expect("send");
    read_response(&mut stream).expect("response")
}

fn main() {
    let args = CommonArgs::from_env();
    let clients = args.threads.max(1);
    let total_requests = args.repetitions.max(clients);
    let per_client = total_requests / clients;
    println!("Server throughput — closed-loop keep-alive clients over loopback TCP");
    println!(
        "scale = {}, clients = {clients}, requests = {} ({per_client}/client), seed = {}, shards = {}\n",
        args.scale,
        per_client * clients,
        args.seed,
        args.shards
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Clients, server workers, and the accept thread all need cores of
    // their own before the q/s figure measures the server rather than
    // the scheduler.
    let hardware_limited = cores < 2 * clients + 1;
    if hardware_limited {
        println!(
            "note: only {cores} hardware thread(s) for {clients} client(s) + {clients} worker(s); \
             the tail latencies will include scheduling noise\n"
        );
    }

    let workload = SetWorkload::generate(WorkloadKind::LastFm, args.scale, args.queries, args.seed);
    let dataset = &workload.dataset;
    let params = paper_lsh_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);

    let dir = std::env::temp_dir().join(format!(
        "fairnn-bench-server-{}-{}",
        args.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let writer: EngineWriter<SparseSet, _, _> = EngineWriter::bootstrap(
        &OneBitMinHash,
        params,
        dataset,
        near,
        ShardedIndexConfig::with_shards(args.shards).seeded(args.seed),
        &dir,
    )
    .expect("bootstrap serving engine");

    let config = ServerConfig::default()
        .with_workers(clients)
        .with_max_connections(clients + 4)
        .with_deadlines_ms(0, 60_000)
        .with_drain_deadline_ms(10_000);
    let handle = serve(writer, config, ("127.0.0.1", 0)).expect("server binds");
    let addr = handle.addr();
    println!("serving on {addr} with {clients} worker(s)");

    // Smoke: the control plane answers before any load is applied.
    let health = roundtrip(addr, "GET", "/healthz", b"");
    assert_eq!(health.status, 200, "healthz must answer before the run");
    assert_eq!(roundtrip(addr, "GET", "/metrics", b"").status, 200);

    // Each client cycles the dataset as queries, two per batch, with a
    // unique batch number per request so every exchange exercises the
    // full (uncached) pipeline deterministically.
    let queries_per_request = 2usize;
    let pool = fairnn_parallel::ThreadPool::new(clients);
    let (tx, rx) = std::sync::mpsc::channel::<(HistogramShard, u64, u64)>();
    let points: Vec<SparseSet> = dataset.points().to_vec();

    let start = Instant::now();
    for client in 0..clients {
        let tx = tx.clone();
        let points = points.clone();
        pool.execute(move || {
            let mut shard = HistogramShard::new();
            let mut ok = 0u64;
            let mut errors = 0u64;
            let mut stream = TcpStream::connect(addr).expect("client connect");
            for i in 0..per_client {
                let base = (client * per_client + i) * queries_per_request;
                let queries: Vec<SparseSet> = (0..queries_per_request)
                    .map(|j| points[(base + j) % points.len()].clone())
                    .collect();
                let request =
                    QueryRequest::new(queries).with_batch((client * per_client + i) as u64);
                let bytes = request_bytes("POST", "/v1/query", &encode(&request));
                let sent = Instant::now();
                stream.write_all(&bytes).expect("send query");
                let response = read_response(&mut stream).expect("read answer");
                shard.record(sent.elapsed().as_nanos() as u64);
                if response.status == 200 {
                    let mut dec = Decoder::new(&response.body);
                    match BatchResponse::decode(&mut dec) {
                        Ok(decoded) if decoded.answers.len() == queries_per_request => ok += 1,
                        _ => errors += 1,
                    }
                } else {
                    errors += 1;
                }
            }
            tx.send((shard, ok, errors)).expect("report client results");
        });
    }
    drop(tx);

    let mut merged = HistogramShard::new();
    let mut ok = 0u64;
    let mut errors = 0u64;
    for (shard, client_ok, client_errors) in rx.iter() {
        merged.merge(&shard);
        ok += client_ok;
        errors += client_errors;
    }
    let measured_s = start.elapsed().as_secs_f64();
    drop(pool);

    let requests = ok + errors;
    let qps = requests as f64 / measured_s;
    let (p50, p99, p999) = (merged.p50(), merged.p99(), merged.p999());
    println!(
        "\nserved {requests} requests in {} s: {} q/s, p50 {} µs, p99 {} µs, p999 {} µs ({errors} error(s))",
        fmt_f64(measured_s, 3),
        fmt_f64(qps, 0),
        fmt_f64(p50 as f64 / 1e3, 1),
        fmt_f64(p99 as f64 / 1e3, 1),
        fmt_f64(p999 as f64 / 1e3, 1),
    );
    assert_eq!(errors, 0, "every measured request must succeed end to end");

    // Smoke: a live commit publishes a new generation under load
    // tooling's eyes, visible through healthz.
    let batch = WriteBatch::new().insert(points[0].clone());
    let receipt = roundtrip(addr, "POST", "/v1/commit", &encode(&batch));
    assert_eq!(receipt.status, 200, "commit must succeed");
    let health = roundtrip(addr, "GET", "/healthz", b"");
    let health_text = String::from_utf8(health.body).expect("healthz is JSON text");
    assert!(
        health_text.contains("\"generation\":1"),
        "commit must publish generation 1: {health_text}"
    );

    // Smoke: graceful drain over the wire, then a clean join.
    assert_eq!(roundtrip(addr, "POST", "/admin/drain", b"").status, 202);
    let report = handle.join();
    assert!(
        report.completed_within_deadline && report.forced_connections == 0,
        "drain must complete cleanly: {report:?}"
    );
    println!("drain completed cleanly; all server threads joined");
    let _ = std::fs::remove_dir_all(&dir);

    // Machine-readable report for CI's perf-trajectory artifact.
    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"bench\": \"server_throughput\",\n  \"scale\": {},\n  \"seed\": {},\n  \"shards\": {},\n  \"clients\": {clients},\n  \"available_parallelism\": {cores},\n  \"dataset_points\": {},\n  \"server\": {{\"qps\": {}, \"p50_ns\": {p50}, \"p99_ns\": {p99}, \"p999_ns\": {p999}, \"requests\": {requests}, \"errors\": {errors}, \"measured_s\": {}, \"hardware_limited\": {hardware_limited}}}\n}}\n",
            args.scale,
            args.seed,
            args.shards,
            dataset.len(),
            json_fixed(qps, 1),
            json_fixed(measured_s, 3),
        );
        std::fs::write(path, json).expect("write JSON report");
        println!("wrote machine-readable report to {path}");
    }
}
