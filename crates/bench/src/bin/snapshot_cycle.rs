//! Build-once/serve-many: what does a snapshot buy over a rebuild?
//!
//! For each of several dataset scales, this binary builds the two heaviest
//! structures of the workspace — the Section 4 [`FairNnis`] sampler and the
//! full serving [`QueryEngine`] — then measures the snapshot cycle:
//!
//! 1. **build** — wall time to construct the structure from raw points;
//! 2. **save** — wall time to write the versioned snapshot, plus its size;
//! 3. **load** — wall time to restore the structure from the snapshot;
//! 4. **verify** — the restored structure must answer a probe workload
//!    bit-for-bit identically to the one it was saved from (the binary
//!    aborts otherwise, so CI catches roundtrip drift).
//!
//! The `build / load` ratio is the multiplier a warm restart, a CI job
//! attaching a prebuilt fixture, or an extra serving replica gains from
//! attaching state instead of reconstructing it.
//!
//! Usage: `cargo run --release -p fairnn-bench --bin snapshot_cycle --
//!         [--scale 0.25] [--seed 42] [--threads 2] [--shards 4]
//!         [--json BENCH_snapshot.json]`
//! (three scales are exercised: ½×, 1× and 2× the `--scale` value, clamped
//! to the valid range).

use fairnn_bench::figures::paper_lsh_params;
use fairnn_bench::{json_fixed, CommonArgs, SetWorkload, WorkloadKind};
use fairnn_core::{FairNnis, NeighborSampler, SimilarityAtLeast};
use fairnn_engine::{EngineConfig, QueryEngine};
use fairnn_lsh::{ConcatenatedHasher, OneBitMinHash, OneBitMinHasher};
use fairnn_snapshot::CountingAlloc;
use fairnn_space::{Jaccard, SparseSet};
use fairnn_stats::{table::fmt_f64, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Meters ≥ 64 KiB allocations so the load phase can assert the image
/// path's O(1)-large-allocation promise in the emitted report.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const R: f64 = 0.2;

type SetNnis = FairNnis<SparseSet, ConcatenatedHasher<OneBitMinHasher>, SimilarityAtLeast<Jaccard>>;
type SetEngine =
    QueryEngine<SparseSet, ConcatenatedHasher<OneBitMinHasher>, SimilarityAtLeast<Jaccard>>;

/// One measured build → save → load → verify cycle.
struct Cycle {
    scale: f64,
    structure: &'static str,
    dataset_points: usize,
    build_s: f64,
    save_s: f64,
    load_s: f64,
    /// Allocations of at least [`fairnn_snapshot::LARGE_ALLOC_THRESHOLD`]
    /// bytes during the load call — O(1) under the one-buffer image path.
    load_large_allocs: u64,
    snapshot_bytes: u64,
}

impl Cycle {
    fn build_over_load(&self) -> f64 {
        if self.load_s > 0.0 {
            self.build_s / self.load_s
        } else {
            f64::INFINITY
        }
    }
}

fn snapshot_path(structure: &str, scale: f64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fairnn-snapshot-cycle-{}-{structure}-{scale}.snap",
        std::process::id()
    ))
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// One cycle for the Section 4 sampler: the verification draws a sample
/// sequence from the original and the restored sampler with identical RNG
/// streams and requires bit-for-bit equality.
fn cycle_fair_nnis(workload: &SetWorkload, scale: f64, seed: u64) -> Cycle {
    let dataset = &workload.dataset;
    let params = paper_lsh_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let (mut sampler, build_s) = timed(|| -> SetNnis {
        let mut rng = StdRng::seed_from_u64(seed);
        FairNnis::build(&OneBitMinHash, params, dataset, near, &mut rng)
    });

    let path = snapshot_path("fair-nnis", scale);
    let ((), save_s) = timed(|| sampler.save(&path).expect("save fair-nnis snapshot"));
    let snapshot_bytes = std::fs::metadata(&path).expect("stat snapshot").len();
    CountingAlloc::reset();
    let (mut loaded, load_s) = timed(|| SetNnis::load(&path).expect("load fair-nnis snapshot"));
    let load_large_allocs = CountingAlloc::large_allocs();
    let _ = std::fs::remove_file(&path);

    let queries = workload.query_points();
    let mut rng_a = StdRng::seed_from_u64(seed ^ 0xA5A5);
    let mut rng_b = StdRng::seed_from_u64(seed ^ 0xA5A5);
    for query in queries.iter().cycle().take(64) {
        assert_eq!(
            sampler.sample(query, &mut rng_a),
            loaded.sample(query, &mut rng_b),
            "restored fair-nnis diverged from the saved sampler"
        );
    }

    Cycle {
        scale,
        structure: "fair-nnis",
        dataset_points: dataset.len(),
        build_s,
        save_s,
        load_s,
        load_large_allocs,
        snapshot_bytes,
    }
}

/// One cycle for the serving engine: the verification runs the same batch
/// through the original and the restored engine and requires identical
/// answers (the engine's own determinism contract, now across a snapshot).
fn cycle_engine(workload: &SetWorkload, scale: f64, args: &CommonArgs) -> Cycle {
    let dataset = &workload.dataset;
    let params = paper_lsh_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    let config = EngineConfig::default()
        .with_threads(args.threads)
        .with_shards(args.shards)
        .with_seed(args.seed);
    let (mut engine, build_s) = timed(|| -> SetEngine {
        QueryEngine::build(&OneBitMinHash, params, dataset, near, config)
    });

    // Warm the cache so the snapshot covers serving state, not just the
    // freshly built index.
    let batch: Vec<SparseSet> = (0..256)
        .map(|i| dataset.points()[i % dataset.len()].clone())
        .collect();
    let _ = engine.run_batch(&batch);

    let path = snapshot_path("query-engine", scale);
    let ((), save_s) = timed(|| engine.save(&path).expect("save engine snapshot"));
    let snapshot_bytes = std::fs::metadata(&path).expect("stat snapshot").len();
    CountingAlloc::reset();
    let (mut loaded, load_s) = timed(|| SetEngine::load(&path).expect("load engine snapshot"));
    let load_large_allocs = CountingAlloc::large_allocs();
    let _ = std::fs::remove_file(&path);

    for _ in 0..2 {
        assert_eq!(
            engine.run_batch(&batch),
            loaded.run_batch(&batch),
            "restored engine diverged from the saved engine"
        );
    }

    Cycle {
        scale,
        structure: "query-engine",
        dataset_points: dataset.len(),
        build_s,
        save_s,
        load_s,
        load_large_allocs,
        snapshot_bytes,
    }
}

fn main() {
    let args = CommonArgs::from_env();
    // Builds and snapshot encode/decode run on the build workers; the
    // outputs are bit-identical at any thread count (the roundtrip
    // verification below re-checks that on every run).
    fairnn_parallel::set_build_threads(args.threads);
    let cores = fairnn_parallel::available_parallelism();
    println!("Snapshot cycle — build-once/serve-many frozen indexes");
    println!(
        "base scale = {}, seed = {}, threads = {}, shards = {}, {cores} hardware thread(s), format v{}\n",
        args.scale,
        args.seed,
        args.threads,
        args.shards,
        fairnn_snapshot::FORMAT_VERSION
    );

    let mut scales: Vec<f64> = [0.5, 1.0, 2.0]
        .iter()
        .map(|m| (args.scale * m).clamp(0.01, 1.0))
        .collect();
    scales.dedup();

    let mut cycles: Vec<Cycle> = Vec::new();
    for &scale in &scales {
        let workload = SetWorkload::generate(WorkloadKind::LastFm, scale, args.queries, args.seed);
        println!(
            "scale {scale}: {} users, verifying roundtrips ...",
            workload.dataset.len()
        );
        cycles.push(cycle_fair_nnis(&workload, scale, args.seed));
        cycles.push(cycle_engine(&workload, scale, &args));
    }

    let mut table = TextTable::new(
        "snapshot cycle (build vs load, roundtrips verified bit-for-bit)",
        &[
            "scale",
            "structure",
            "points",
            "build s",
            "save s",
            "load s",
            "lg allocs",
            "bytes",
            "build/load",
        ],
    );
    for c in &cycles {
        table.add_row(vec![
            format!("{}", c.scale),
            c.structure.to_string(),
            c.dataset_points.to_string(),
            fmt_f64(c.build_s, 3),
            fmt_f64(c.save_s, 3),
            fmt_f64(c.load_s, 3),
            c.load_large_allocs.to_string(),
            c.snapshot_bytes.to_string(),
            fmt_f64(c.build_over_load(), 1),
        ]);
    }
    println!("{table}");

    if let Some(path) = &args.json {
        // A run asking for more threads than the runner has measures
        // scheduling noise, not parallel speedup; annotate the rows so the
        // gate and dashboards can skip them — the same `hardware_limited`
        // convention `engine_throughput` and `build_scaling` use.
        let hardware_limited = args.threads > cores;
        let rows: Vec<String> = cycles
            .iter()
            .map(|c| {
                format!(
                    "    {{\"scale\": {}, \"structure\": \"{}\", \"dataset_points\": {}, \"threads\": {}, \"build_s\": {}, \"save_s\": {}, \"load_s\": {}, \"load_ns\": {}, \"load_large_allocs\": {}, \"snapshot_bytes\": {}, \"build_over_load\": {}, \"hardware_limited\": {}}}",
                    c.scale,
                    c.structure,
                    c.dataset_points,
                    args.threads,
                    json_fixed(c.build_s, 6),
                    json_fixed(c.save_s, 6),
                    json_fixed(c.load_s, 6),
                    json_fixed(c.load_s * 1e9, 1),
                    c.load_large_allocs,
                    c.snapshot_bytes,
                    json_fixed(c.build_over_load(), 1),
                    hardware_limited,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"snapshot_cycle\",\n  \"base_scale\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"shards\": {},\n  \"available_parallelism\": {cores},\n  \"format_version\": {},\n  \"cycles\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.seed,
            args.threads,
            args.shards,
            fairnn_snapshot::FORMAT_VERSION,
            rows.join(",\n"),
        );
        std::fs::write(path, json).expect("write JSON report");
        println!("wrote machine-readable report to {path}");
    }
}
