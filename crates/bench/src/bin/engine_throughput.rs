//! Serving throughput of the sharded, concurrent query engine.
//!
//! Three measurements on the Last.FM-like workload:
//!
//! 1. **Baselines** — single-thread queries/sec of the unsharded fair
//!    samplers and the sharded sampler, all driven through the object-safe
//!    `FairSampler` trait (the interface the engine dispatches over);
//! 2. **Pipeline scaling** — batch throughput of the engine at 1 thread vs
//!    `--threads` threads with the result cache disabled (every query runs
//!    the full two-level pipeline), including a bit-for-bit determinism
//!    check: identical seeds must yield identical answers across thread
//!    counts;
//! 3. **Rank-swap fast path** — batch throughput on a repeated-query
//!    workload with the cache enabled (Theorem 5 path);
//! 4. **Observability overhead** — the cache-disabled pipeline with
//!    `fairnn-obs` metrics and span tracing fully enabled vs fully
//!    disabled. The CI gate requires the instrumented engine to stay
//!    within 3 % of the uninstrumented one, and the answers are asserted
//!    bit-identical (instrumentation must not perturb RNG streams or
//!    commit order). `--metrics-json <path>` additionally dumps the full
//!    metrics registry collected during the instrumented runs;
//! 5. **Concurrent churn** — `--threads` reader threads pin epochs and
//!    run batches through `EngineReader` while the main thread commits
//!    generational `WriteBatch`es through `EngineWriter` (WAL append,
//!    fsync, publish). Reports sustained reader queries/sec under churn
//!    and the mean commit→publish latency; `hardware_limited` when the
//!    runner has fewer cores than readers + writer.
//!
//! Usage: `cargo run -p fairnn-bench --release --bin engine_throughput --
//!         [--scale 0.25] [--repetitions 2000] [--seed 42]
//!         [--threads 8] [--shards 4]`
//! (`--repetitions` is reused as the batch size.)

use fairnn_bench::figures::{paper_lsh_params, SetShardedSampler};
use fairnn_bench::{json_fixed, CommonArgs, SetWorkload, WorkloadKind};
use fairnn_core::{FairNnis, FairNns, FairSampler, NaiveFairLsh, SimilarityAtLeast};
use fairnn_engine::{
    EngineConfig, EngineWriter, QueryEngine, QueryRequest, ShardedIndexConfig, WriteBatch,
};
use fairnn_lsh::{LshHasher, LshIndex, OneBitMinHash, QueryScratch};
use fairnn_space::{Jaccard, SparseSet};
use fairnn_stats::{table::fmt_f64, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const R: f64 = 0.2;

/// Hashing cost of the full `K × L` bank per point, in nanoseconds:
/// batched (`hash_all`, single pass) vs per-row evaluation.
fn measure_hash_ns(
    index: &LshIndex<fairnn_lsh::ConcatenatedHasher<fairnn_lsh::OneBitMinHasher>>,
    batch: &[SparseSet],
) -> (f64, f64) {
    let mut scratch = QueryScratch::new();
    let start = Instant::now();
    for point in batch {
        index.query_keys_into(point, &mut scratch.keys);
    }
    let batched = start.elapsed().as_secs_f64() * 1e9 / batch.len() as f64;
    let start = Instant::now();
    for point in batch {
        scratch.keys.clear();
        scratch
            .keys
            .extend(index.hashers().iter().map(|h| h.hash(point)));
    }
    let per_row = start.elapsed().as_secs_f64() * 1e9 / batch.len() as f64;
    (batched, per_row)
}

fn main() {
    let args = CommonArgs::from_env();
    let batch_size = args.repetitions;
    println!("Engine throughput — sharded, concurrent, batched fair sampling");
    println!(
        "scale = {}, batch = {batch_size}, seed = {}, threads = {}, shards = {}\n",
        args.scale, args.seed, args.threads, args.shards
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < args.threads {
        println!(
            "note: only {cores} hardware thread(s) available; speedup at {} threads will be bounded by the hardware\n",
            args.threads
        );
    }

    let workload = SetWorkload::generate(WorkloadKind::LastFm, args.scale, args.queries, args.seed);
    let dataset = &workload.dataset;
    let params = paper_lsh_params(dataset.len(), R);
    let near = SimilarityAtLeast::new(Jaccard, R);
    println!(
        "Last.FM-like: {} users, r = {R}, K = {}, L = {}",
        dataset.len(),
        params.k,
        params.l
    );

    // A distinct-work batch: cycle the dataset points as queries.
    let batch: Vec<SparseSet> = (0..batch_size)
        .map(|i| dataset.points()[i % dataset.len()].clone())
        .collect();

    // 0. Raw hashing cost of the query pipeline's first stage.
    let hash_index = {
        let mut rng = StdRng::seed_from_u64(args.seed);
        LshIndex::build(&OneBitMinHash, params, dataset.points(), &mut rng)
    };
    let (hash_batched_ns, hash_per_row_ns) = measure_hash_ns(&hash_index, &batch);
    println!(
        "hash (K x L = {} rows/point): batched hash_all {} ns/point, per-row {} ns/point\n",
        params.k * params.l,
        fmt_f64(hash_batched_ns, 0),
        fmt_f64(hash_per_row_ns, 0),
    );
    drop(hash_index);

    // 1. Single-thread baselines through the object-safe FairSampler trait.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut baseline_qps: Vec<(String, f64)> = Vec::new();
    let mut baselines: Vec<Box<dyn FairSampler<SparseSet>>> = vec![
        Box::new(NaiveFairLsh::build(
            &OneBitMinHash,
            params,
            dataset,
            near,
            &mut rng,
        )),
        Box::new(FairNns::build(
            &OneBitMinHash,
            params,
            dataset,
            near,
            &mut rng,
        )),
        Box::new(FairNnis::build(
            &OneBitMinHash,
            params,
            dataset,
            near,
            &mut rng,
        )),
        Box::new(SetShardedSampler::build(
            &OneBitMinHash,
            params,
            dataset,
            near,
            ShardedIndexConfig::with_shards(args.shards).seeded(args.seed),
        )),
    ];
    let mut table = TextTable::new(
        "single-thread baselines (dyn FairSampler dispatch)",
        &["sampler", "queries/sec"],
    );
    for sampler in &mut baselines {
        let mut rng = StdRng::seed_from_u64(args.seed + 1);
        let start = Instant::now();
        for query in &batch {
            let _ = sampler.sample_dyn(query, &mut rng);
        }
        let qps = batch.len() as f64 / start.elapsed().as_secs_f64();
        table.add_row(vec![sampler.sampler_name().to_string(), fmt_f64(qps, 0)]);
        baseline_qps.push((sampler.sampler_name().to_string(), qps));
    }
    println!("{table}");

    // 2. Engine pipeline scaling, cache disabled, determinism check.
    let engine_config = |threads: usize| {
        EngineConfig::default()
            .with_threads(threads)
            .with_shards(args.shards)
            .with_seed(args.seed)
            .with_cache_capacity(0)
    };
    let mut serial = QueryEngine::build(&OneBitMinHash, params, dataset, near, engine_config(1));
    let mut threaded = QueryEngine::build(
        &OneBitMinHash,
        params,
        dataset,
        near,
        engine_config(args.threads),
    );

    // Warm both engines (allocator, page faults, pool spin-up) off the clock.
    let warmup: Vec<SparseSet> = batch.iter().take(64).cloned().collect();
    let _ = serial.run_batch(&warmup);
    let _ = threaded.run_batch(&warmup);

    let start = Instant::now();
    let serial_answers = serial.run_batch(&batch);
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let threaded_answers = threaded.run_batch(&batch);
    let threaded_secs = start.elapsed().as_secs_f64();
    let serial_qps = batch.len() as f64 / serial_secs;
    let threaded_qps = batch.len() as f64 / threaded_secs;

    // On a runner with fewer cores than requested threads the multi-thread
    // row measures the same serial execution plus scheduling noise; mark it
    // so downstream tooling (the CI bench gate) knows to skip it.
    let hardware_limited = cores < args.threads;
    let mut table = TextTable::new(
        "engine pipeline (cache disabled)",
        &["threads", "queries/sec", "speedup", "note"],
    );
    table.add_row(vec![
        "1".to_string(),
        fmt_f64(serial_qps, 0),
        "1.0".to_string(),
        String::new(),
    ]);
    table.add_row(vec![
        args.threads.to_string(),
        fmt_f64(threaded_qps, 0),
        fmt_f64(threaded_qps / serial_qps, 2),
        if hardware_limited {
            format!("hardware-limited ({cores} core(s))")
        } else {
            String::new()
        },
    ]);
    println!("{table}");
    assert_eq!(
        serial_answers, threaded_answers,
        "determinism violated: identical seeds must yield identical answers across thread counts"
    );
    println!(
        "determinism check: {} answers identical across thread counts (seed {})\n",
        serial_answers.len(),
        args.seed
    );

    // 3. The rank-swap fast path on a repeated-query workload.
    let mut cached = QueryEngine::build(
        &OneBitMinHash,
        params,
        dataset,
        near,
        EngineConfig::default()
            .with_threads(args.threads)
            .with_shards(args.shards)
            .with_seed(args.seed),
    );
    let hot: Vec<SparseSet> = (0..batch_size)
        .map(|i| dataset.points()[i % 4].clone())
        .collect();
    let _ = cached.run_batch(&hot); // warm the cache
    let start = Instant::now();
    let answers = cached.run_batch(&hot);
    let hot_secs = start.elapsed().as_secs_f64();
    let (hits, misses) = cached.cache_stats();
    let rank_swap_qps = hot.len() as f64 / hot_secs;
    println!(
        "rank-swap fast path: {} queries/sec on a 4-hot-query batch ({} cache hits, {} misses, {} via cache)",
        fmt_f64(rank_swap_qps, 0),
        hits,
        misses,
        answers.iter().filter(|a| a.via_cache).count()
    );

    // 4. Observability overhead: two fresh cache-disabled engines driven
    //    through identical call sequences, one with fairnn-obs fully off,
    //    one with metrics + span tracing fully on. Identical seeds and call
    //    order mean the answers must match bit for bit; best-of-rounds
    //    throughput feeds the CI gate's 3 % overhead budget.
    let mut plain_engine = QueryEngine::build(
        &OneBitMinHash,
        params,
        dataset,
        near,
        engine_config(args.threads),
    );
    let mut instr_engine = QueryEngine::build(
        &OneBitMinHash,
        params,
        dataset,
        near,
        engine_config(args.threads),
    );
    let _ = plain_engine.run_batch(&warmup);
    fairnn_obs::set_enabled(true);
    fairnn_obs::set_tracing_enabled(true);
    let _ = instr_engine.run_batch(&warmup);
    fairnn_obs::set_enabled(false);
    fairnn_obs::set_tracing_enabled(false);

    const OBS_ROUNDS: usize = 3;
    let mut plain_best_qps = 0.0f64;
    let mut instr_best_qps = 0.0f64;
    let mut obs_measured_s = 0.0f64;
    for _ in 0..OBS_ROUNDS {
        let start = Instant::now();
        let plain_answers = plain_engine.run_batch(&batch);
        let plain_secs = start.elapsed().as_secs_f64();

        fairnn_obs::set_enabled(true);
        fairnn_obs::set_tracing_enabled(true);
        let start = Instant::now();
        let instr_answers = instr_engine.run_batch(&batch);
        let instr_secs = start.elapsed().as_secs_f64();
        fairnn_obs::set_enabled(false);
        fairnn_obs::set_tracing_enabled(false);

        assert_eq!(
            plain_answers, instr_answers,
            "instrumentation perturbed the engine output: identical seeds must \
             yield identical answers with metrics and tracing enabled"
        );
        plain_best_qps = plain_best_qps.max(batch.len() as f64 / plain_secs);
        instr_best_qps = instr_best_qps.max(batch.len() as f64 / instr_secs);
        obs_measured_s += plain_secs + instr_secs;
    }
    let obs_overhead_pct = (1.0 - instr_best_qps / plain_best_qps) * 100.0;
    println!(
        "\nobservability overhead (metrics + tracing on): uninstrumented {} q/s, \
         instrumented {} q/s, overhead {}% (answers bit-identical over {OBS_ROUNDS} rounds)",
        fmt_f64(plain_best_qps, 0),
        fmt_f64(instr_best_qps, 0),
        fmt_f64(obs_overhead_pct, 2),
    );

    // 5. Concurrent churn: reader threads pin epochs and run batches while
    //    the main thread commits write batches (WAL append + fsync +
    //    generation publish). The readers never block on the writer — each
    //    iteration pins whatever generation is current — so this measures
    //    the query path's immunity to live updates, plus the full
    //    durability cost of a commit.
    let reader_threads = args.threads.max(1);
    let churn_dir = std::env::temp_dir().join(format!(
        "fairnn-bench-churn-{}-{}",
        args.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&churn_dir);
    let mut writer: EngineWriter<SparseSet, _, _> = EngineWriter::bootstrap(
        &OneBitMinHash,
        params,
        dataset,
        near,
        ShardedIndexConfig::with_shards(args.shards).seeded(args.seed),
        &churn_dir,
    )
    .expect("bootstrap churn engine");
    let reader = writer.reader();
    let churn_batch: Vec<SparseSet> = (0..64)
        .map(|i| dataset.points()[i % dataset.len()].clone())
        .collect();

    const MIN_CHURN_COMMITS: usize = 32;
    const MIN_CHURN_WINDOW_S: f64 = 0.2;
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pool = fairnn_parallel::ThreadPool::new(reader_threads);
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    for worker in 0..reader_threads {
        let reader = reader.clone();
        let churn_batch = churn_batch.clone();
        let stop = std::sync::Arc::clone(&stop);
        let tx = tx.clone();
        pool.execute(move || {
            let mut served = 0u64;
            let mut round = worker as u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let request = QueryRequest::new(churn_batch.clone()).with_batch(round);
                let pin = reader.pin();
                served += pin.run_batch(&request).answers.len() as u64;
                round += reader_threads as u64;
            }
            tx.send(served).expect("report served count");
        });
    }
    drop(tx);

    let churn_start = Instant::now();
    let mut commits = 0usize;
    let mut commit_secs = 0.0f64;
    let mut last_inserted = None;
    while commits < MIN_CHURN_COMMITS || churn_start.elapsed().as_secs_f64() < MIN_CHURN_WINDOW_S {
        // Alternate insert / delete-what-we-inserted so the index size (and
        // therefore per-commit work) stays bounded over the whole window.
        let batch = match last_inserted.take() {
            None => WriteBatch::new().insert(dataset.points()[commits % dataset.len()].clone()),
            Some(id) => WriteBatch::new().delete(id),
        };
        let start = Instant::now();
        let receipt = writer.commit(batch).expect("churn commit");
        commit_secs += start.elapsed().as_secs_f64();
        last_inserted = receipt.assigned.first().copied();
        commits += 1;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let served: u64 = rx.iter().sum();
    let churn_secs = churn_start.elapsed().as_secs_f64();
    drop(pool);
    let _ = std::fs::remove_dir_all(&churn_dir);

    let churn_qps = served as f64 / churn_secs;
    let publish_ms = commit_secs / commits as f64 * 1e3;
    // Readers + the committing main thread need cores of their own for the
    // q/s figure to measure the engine rather than the scheduler.
    let churn_limited = cores < reader_threads + 1;
    println!(
        "\nconcurrent churn: {} reader thread(s) sustained {} q/s over {} commits \
         (mean commit→publish {} ms, final generation {}{})",
        reader_threads,
        fmt_f64(churn_qps, 0),
        commits,
        fmt_f64(publish_ms, 3),
        writer.generation(),
        if churn_limited {
            format!("; hardware-limited, {cores} core(s)")
        } else {
            String::new()
        },
    );

    // Full metrics registry dump collected during the instrumented runs.
    if let Some(path) = &args.metrics_json {
        std::fs::write(path, fairnn_obs::global().render_json()).expect("write metrics JSON");
        println!("wrote metrics registry dump to {path}");
    }

    // Machine-readable report for CI's perf-trajectory artifact.
    if let Some(path) = &args.json {
        // Canonical fixed precision for every timing row: q/s and ns at one
        // decimal, percentages at two, seconds at three (see `json_fixed`).
        let baselines_json: Vec<String> = baseline_qps
            .iter()
            .map(|(name, qps)| {
                format!(
                    "    {{\"sampler\": \"{name}\", \"qps\": {}}}",
                    json_fixed(*qps, 1)
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"engine_throughput\",\n  \"scale\": {},\n  \"batch\": {},\n  \"seed\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \"available_parallelism\": {cores},\n  \"dataset_points\": {},\n  \"k\": {},\n  \"l\": {},\n  \"hash_ns_per_point\": {{\"batched\": {}, \"per_row\": {}}},\n  \"baselines_qps\": [\n{}\n  ],\n  \"pipeline_qps\": [\n    {{\"threads\": 1, \"qps\": {}, \"hardware_limited\": false}},\n    {{\"threads\": {}, \"qps\": {}, \"hardware_limited\": {}}}\n  ],\n  \"rank_swap_qps\": {},\n  \"churn\": {{\"reader_threads\": {}, \"commits\": {}, \"qps\": {}, \"publish_ms\": {}, \"hardware_limited\": {}}},\n  \"obs_overhead\": {{\"uninstrumented_qps\": {}, \"instrumented_qps\": {}, \"overhead_pct\": {}, \"measured_s\": {}}}\n}}\n",
            args.scale,
            batch_size,
            args.seed,
            args.shards,
            args.threads,
            dataset.len(),
            params.k,
            params.l,
            json_fixed(hash_batched_ns, 1),
            json_fixed(hash_per_row_ns, 1),
            baselines_json.join(",\n"),
            json_fixed(serial_qps, 1),
            args.threads,
            json_fixed(threaded_qps, 1),
            hardware_limited,
            json_fixed(rank_swap_qps, 1),
            reader_threads,
            commits,
            json_fixed(churn_qps, 1),
            json_fixed(publish_ms, 3),
            churn_limited,
            json_fixed(plain_best_qps, 1),
            json_fixed(instr_best_qps, 1),
            json_fixed(obs_overhead_pct, 2),
            json_fixed(obs_measured_s, 3),
        );
        std::fs::write(path, json).expect("write JSON report");
        println!("\nwrote machine-readable report to {path}");
    }
}
