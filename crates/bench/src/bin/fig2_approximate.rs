//! Figure 2 reproduction: unfairness of the *approximate neighbourhood*
//! notion on the Section 6.2 adversarial instance.
//!
//! The instance contains the sets `X` (similarity 0.5, isolated), `Y`
//! (similarity 0.6, surrounded by 987 near-identical sets) and `Z`
//! (similarity 0.9). Sampling uniformly from the approximate neighbourhood
//! `S'` makes `X` far more likely to be reported than `Y`, although `Y` is
//! more similar to the query — the paper reports a factor above 50.
//!
//! Usage: `cargo run -p fairnn-bench --release --bin fig2_approximate --
//!         [--repetitions 2000] [--queries 20] [--seed 42] [--threads 1]`
//! (`--queries` is reused as the number of independent builds; `--threads`
//! distributes the builds over workers without changing the result.)

use fairnn_bench::figures::run_adversarial_experiment_threaded;
use fairnn_bench::CommonArgs;
use fairnn_stats::{table::fmt_f64, Summary, TextTable};

fn main() {
    let args = CommonArgs::from_env();
    let builds = args.queries.max(100);
    println!("Figure 2 — approximate neighbourhood sampling on the adversarial instance");
    println!(
        "builds = {builds}, repetitions per build = {}, seed = {}{}\n",
        args.repetitions,
        args.seed,
        args.engine_suffix()
    );

    let result =
        run_adversarial_experiment_threaded(builds, args.repetitions, args.seed, args.threads);

    let mut table = TextTable::new(
        "Empirical sampling probabilities (quartiles over builds)",
        &["set", "similarity", "mean", "q25", "median", "q75"],
    );
    let mut add = |name: &str, sim: f64, s: &Summary| {
        table.add_row(vec![
            name.to_string(),
            fmt_f64(sim, 2),
            fmt_f64(s.mean, 4),
            fmt_f64(s.q25, 4),
            fmt_f64(s.median, 4),
            fmt_f64(s.q75, 4),
        ]);
    };
    add("X", 0.5, &result.x_probability);
    add("Y", 0.6, &result.y_probability);
    add("Z", 0.9, &result.z_probability);
    println!("{table}");

    println!(
        "X is sampled {} as often as Y (paper: more than 50x), despite Y being more similar to the query.",
        if result.x_over_y.is_finite() {
            format!("{:.1}x", result.x_over_y)
        } else {
            "infinitely more".to_string()
        }
    );
}
