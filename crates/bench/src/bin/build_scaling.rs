//! Deterministic parallel build: wall time vs build threads.
//!
//! PR 3/PR 4 made the *query* path fast; the *build* path dominates every
//! cold start, reshard and compaction (`snapshot_cycle` measures a cold
//! build at 7–10× a snapshot load). This binary measures how construction
//! scales on the `fairnn-parallel` build workers: for each of three dataset
//! scales it builds the two heaviest structures — the Section 4
//! [`FairNnis`] sampler and the full serving [`QueryEngine`] — at a sweep
//! of thread counts, verifying at every step that the parallel build is
//! **bit-for-bit identical** to the serial one (the binary aborts
//! otherwise, so CI catches determinism drift).
//!
//! The single-thread rows double as the build-throughput figures the CI
//! bench gate tracks (`points_per_s` against `BENCH_baseline.json`), so a
//! serial build regression fails the gate even on a 1-core runner; rows
//! with more threads than cores are annotated `hardware_limited` and
//! skipped by the gate, exactly like the engine pipeline rows.
//!
//! Usage: `cargo run --release -p fairnn-bench --bin build_scaling --
//!         [--scale 0.1] [--seed 42] [--threads 4] [--shards 4]
//!         [--json BENCH_build.json]`
//! (three scales are exercised: ½×, 1× and 2× the `--scale` value, clamped
//! to the valid range; thread counts swept are 1, 2 and `--threads`.)

use fairnn_bench::figures::paper_lsh_params;
use fairnn_bench::{CommonArgs, SetWorkload, WorkloadKind};
use fairnn_core::{FairNnis, SimilarityAtLeast};
use fairnn_engine::{EngineConfig, QueryEngine};
use fairnn_lsh::{ConcatenatedHasher, OneBitMinHash, OneBitMinHasher};
use fairnn_snapshot::{to_bytes, SnapshotKind};
use fairnn_space::{Jaccard, SparseSet};
use fairnn_stats::{table::fmt_f64, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const R: f64 = 0.2;

type SetNnis = FairNnis<SparseSet, ConcatenatedHasher<OneBitMinHasher>, SimilarityAtLeast<Jaccard>>;
type SetEngine =
    QueryEngine<SparseSet, ConcatenatedHasher<OneBitMinHasher>, SimilarityAtLeast<Jaccard>>;

/// One measured build.
struct BuildRow {
    scale: f64,
    structure: &'static str,
    dataset_points: usize,
    threads: usize,
    build_s: f64,
    speedup_vs_serial: f64,
    hardware_limited: bool,
}

impl BuildRow {
    fn points_per_s(&self) -> f64 {
        if self.build_s > 0.0 {
            self.dataset_points as f64 / self.build_s
        } else {
            f64::INFINITY
        }
    }
}

/// Builds per timed measurement: the reported wall time is the best of
/// these runs (the first doubles as warm-up), which keeps the smoke-scale
/// rows stable enough for the 35 % CI gate on shared runners.
const RUNS_PER_ROW: usize = 3;

/// Runs `f` [`RUNS_PER_ROW`] times; returns the last value and the minimum
/// wall time.
fn timed_best<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut value = None;
    for _ in 0..RUNS_PER_ROW {
        let start = Instant::now();
        value = Some(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (value.expect("at least one run"), best)
}

fn main() {
    let args = CommonArgs::from_env();
    let cores = fairnn_parallel::available_parallelism();
    println!("Build scaling — deterministic parallel index construction");
    println!(
        "base scale = {}, seed = {}, max threads = {}, shards = {}, {cores} hardware thread(s)\n",
        args.scale, args.seed, args.threads, args.shards
    );

    let mut thread_counts = vec![1usize, 2, args.threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut scales: Vec<f64> = [0.5, 1.0, 2.0]
        .iter()
        .map(|m| (args.scale * m).clamp(0.01, 1.0))
        .collect();
    scales.dedup();

    let mut rows: Vec<BuildRow> = Vec::new();
    for &scale in &scales {
        let workload = SetWorkload::generate(WorkloadKind::LastFm, scale, args.queries, args.seed);
        let dataset = &workload.dataset;
        let params = paper_lsh_params(dataset.len(), R);
        let near = SimilarityAtLeast::new(Jaccard, R);
        println!(
            "scale {scale}: {} users, verifying parallel ≡ serial ...",
            dataset.len()
        );

        // Section 4 sampler.
        let mut serial_image: Option<Vec<u8>> = None;
        let mut serial_s = 0.0;
        for &threads in &thread_counts {
            fairnn_parallel::set_build_threads(threads);
            let (sampler, build_s) = timed_best(|| -> SetNnis {
                let mut rng = StdRng::seed_from_u64(args.seed);
                FairNnis::build(&OneBitMinHash, params, dataset, near, &mut rng)
            });
            let image = to_bytes(SnapshotKind::FairNnis, &sampler);
            match &serial_image {
                None => {
                    serial_image = Some(image);
                    serial_s = build_s;
                }
                Some(reference) => assert_eq!(
                    &image, reference,
                    "{threads}-thread fair-nnis build diverged from the serial build"
                ),
            }
            rows.push(BuildRow {
                scale,
                structure: "fair-nnis",
                dataset_points: dataset.len(),
                threads,
                build_s,
                speedup_vs_serial: serial_s / build_s.max(f64::MIN_POSITIVE),
                hardware_limited: threads > cores,
            });
        }

        // Full serving engine (shards build concurrently too).
        let mut serial_image: Option<Vec<u8>> = None;
        let mut serial_s = 0.0;
        for &threads in &thread_counts {
            fairnn_parallel::set_build_threads(threads);
            let config = EngineConfig::default()
                .with_shards(args.shards)
                .with_seed(args.seed);
            let (engine, build_s) = timed_best(|| -> SetEngine {
                QueryEngine::build(&OneBitMinHash, params, dataset, near, config)
            });
            let image = to_bytes(SnapshotKind::QueryEngine, &engine);
            match &serial_image {
                None => {
                    serial_image = Some(image);
                    serial_s = build_s;
                }
                Some(reference) => assert_eq!(
                    &image, reference,
                    "{threads}-thread engine build diverged from the serial build"
                ),
            }
            rows.push(BuildRow {
                scale,
                structure: "query-engine",
                dataset_points: dataset.len(),
                threads,
                build_s,
                speedup_vs_serial: serial_s / build_s.max(f64::MIN_POSITIVE),
                hardware_limited: threads > cores,
            });
        }
    }
    fairnn_parallel::set_build_threads(0);

    let mut table = TextTable::new(
        "build scaling (parallel ≡ serial verified bit-for-bit)",
        &[
            "scale",
            "structure",
            "points",
            "threads",
            "build s",
            "points/s",
            "speedup",
            "note",
        ],
    );
    for row in &rows {
        table.add_row(vec![
            format!("{}", row.scale),
            row.structure.to_string(),
            row.dataset_points.to_string(),
            row.threads.to_string(),
            fmt_f64(row.build_s, 3),
            fmt_f64(row.points_per_s(), 0),
            fmt_f64(row.speedup_vs_serial, 2),
            if row.hardware_limited {
                format!("hardware-limited ({cores} core(s))")
            } else {
                String::new()
            },
        ]);
    }
    println!("{table}");

    if let Some(path) = &args.json {
        let build_rows: Vec<String> = rows
            .iter()
            .map(|row| {
                format!(
                    "    {{\"scale\": {}, \"structure\": \"{}\", \"dataset_points\": {}, \"threads\": {}, \"build_s\": {:.6}, \"points_per_s\": {:.1}, \"speedup_vs_serial\": {:.2}, \"hardware_limited\": {}}}",
                    row.scale,
                    row.structure,
                    row.dataset_points,
                    row.threads,
                    row.build_s,
                    row.points_per_s(),
                    row.speedup_vs_serial,
                    row.hardware_limited,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"build_scaling\",\n  \"base_scale\": {},\n  \"seed\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \"available_parallelism\": {cores},\n  \"builds\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.seed,
            args.shards,
            args.threads,
            build_rows.join(",\n"),
        );
        std::fs::write(path, json).expect("write JSON report");
        println!("wrote machine-readable report to {path}");
    }
}
