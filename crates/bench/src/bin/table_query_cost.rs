//! Section 6.3 companion experiment: the per-query work of each sampler.
//!
//! The paper discusses the additional computational cost of guaranteeing
//! fairness but does not tabulate per-structure costs; this binary makes the
//! comparison explicit by measuring, on the same workload, the per-query
//! bucket entries read, similarity computations, wall-clock time and `⊥`
//! rate of: the exact scan, standard LSH, naive fair LSH, the Section 3
//! r-NNS structure and the Section 4 r-NNIS structure.
//!
//! With `--shards N` (N > 1) the sharded two-level engine is measured as an
//! additional row.
//!
//! Usage: `cargo run -p fairnn-bench --release --bin table_query_cost --
//!         [--scale 0.25] [--repetitions 20] [--queries 10] [--shards 1]`

use fairnn_bench::figures::run_query_cost;
use fairnn_bench::{CommonArgs, SetWorkload, WorkloadKind};
use fairnn_stats::{table::fmt_f64, TextTable};

fn main() {
    let mut args = CommonArgs::from_env();
    // Per-query repetitions; the default Figure 1 count would be overkill here.
    if args.repetitions > 200 {
        args.repetitions = 20;
    }
    println!("Query-cost comparison (Section 6.3 companion)");
    println!(
        "scale = {}, repetitions per query = {}, queries = {}, seed = {}{}\n",
        args.scale,
        args.repetitions,
        args.queries,
        args.seed,
        args.engine_suffix()
    );

    for (kind, r) in [(WorkloadKind::LastFm, 0.2), (WorkloadKind::MovieLens, 0.2)] {
        let workload = SetWorkload::generate(kind, args.scale, args.queries, args.seed);
        println!(
            "{} — {} users, {} queries, r = {r}",
            kind.name(),
            workload.dataset.len(),
            workload.queries.len()
        );
        let costs = run_query_cost(&workload, r, args.repetitions, args.seed + 7, args.shards);
        let mut table = TextTable::new(
            format!("{}: mean per-query work", kind.name()),
            &[
                "sampler",
                "entries",
                "similarity evals",
                "time (us)",
                "bottom rate",
            ],
        );
        for c in costs {
            table.add_row(vec![
                c.name.to_string(),
                fmt_f64(c.mean_entries, 1),
                fmt_f64(c.mean_distance_computations, 1),
                fmt_f64(c.mean_micros, 1),
                fmt_f64(c.failure_rate, 3),
            ]);
        }
        println!("{table}");
    }
}
