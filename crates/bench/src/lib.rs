//! Experiment harness reproducing the paper's evaluation (Section 6).
//!
//! The paper's evaluation has three figures and a running-cost discussion;
//! each has a binary in `src/bin/` that prints the corresponding table:
//!
//! | Experiment | Binary | Library entry point |
//! |---|---|---|
//! | Figure 1 — output distribution of standard vs fair LSH | `fig1_fairness` | [`figures::run_output_distribution`] |
//! | Figure 2 — unfairness of approximate-neighbourhood sampling | `fig2_approximate` | [`figures::run_adversarial_experiment`] |
//! | Figure 3 — cost ratio `b_S(q, cr)/b_S(q, r)` | `fig3_cost_ratio` | [`figures::run_cost_ratio`] |
//! | Section 6.3 cost discussion | `table_query_cost` | [`figures::run_query_cost`] |
//!
//! The binaries accept `--scale` (fraction of the paper-sized dataset),
//! `--repetitions` and `--seed` flags so that both a quick smoke run and a
//! paper-scale run are possible; see `EXPERIMENTS.md` at the workspace root
//! for the recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod figures;
pub mod report;
pub mod workload;

pub use args::CommonArgs;
pub use report::json_fixed;
pub use workload::{SetWorkload, WorkloadKind};
