//! Canonical number formatting for the machine-readable JSON reports.
//!
//! Every timing figure the binaries emit goes through [`json_fixed`], so
//! reports carry one fixed precision per figure kind and never contain
//! `NaN`/`inf` tokens (which are not valid JSON and would break the CI
//! gate's parser).

/// Formats `value` with exactly `places` decimal places for a JSON report.
///
/// Non-finite values (a zero-duration measurement divides by zero) become
/// `0.0` so the report stays parseable; the gate treats a zero figure as a
/// missing measurement rather than crashing on `NaN`.
pub fn json_fixed(value: f64, places: usize) -> String {
    if value.is_finite() {
        format!("{value:.places$}")
    } else {
        format!("{:.places$}", 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_precision_is_canonical() {
        assert_eq!(json_fixed(1234.567, 1), "1234.6");
        assert_eq!(json_fixed(0.5, 2), "0.50");
        assert_eq!(json_fixed(-3.65432, 3), "-3.654");
        assert_eq!(json_fixed(7.0, 0), "7");
    }

    #[test]
    fn non_finite_values_stay_valid_json() {
        assert_eq!(json_fixed(f64::NAN, 1), "0.0");
        assert_eq!(json_fixed(f64::INFINITY, 2), "0.00");
        assert_eq!(json_fixed(f64::NEG_INFINITY, 1), "0.0");
    }
}
