//! Minimal command-line argument handling shared by the experiment
//! binaries (kept dependency-free on purpose).

/// Arguments understood by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Fraction of the paper-sized dataset to generate (1.0 = the full
    /// 2112/1892 users of the paper; the default is a smaller smoke-test
    /// scale so the binaries finish in seconds).
    pub scale: f64,
    /// Number of repetitions per query (the paper uses 26 000 for Figure 1).
    pub repetitions: usize,
    /// Number of queries (the paper uses 50).
    pub queries: usize,
    /// Base random seed.
    pub seed: u64,
    /// Worker threads for the serving-engine paths (1 = the historical
    /// single-threaded behaviour).
    pub threads: usize,
    /// Shards for the serving-engine paths (1 = the historical monolithic
    /// index).
    pub shards: usize,
    /// When set, the binary additionally writes a machine-readable JSON
    /// report to this path (`--json <path>`); used by CI to track the
    /// performance trajectory as build artifacts.
    pub json: Option<String>,
    /// When set, the binary dumps the full `fairnn-obs` metrics registry
    /// (counters, gauges, histogram buckets) as JSON to this path after
    /// its instrumented runs (`--metrics-json <path>`).
    pub metrics_json: Option<String>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            repetitions: 2000,
            queries: 10,
            seed: 42,
            threads: 1,
            shards: 1,
            json: None,
            metrics_json: None,
        }
    }
}

impl CommonArgs {
    /// Parses `--scale`, `--repetitions`, `--queries` and `--seed` from an
    /// iterator of argument strings (unknown arguments are ignored so the
    /// binaries stay forgiving).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--repetitions" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.repetitions = v;
                    }
                }
                "--queries" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.queries = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.threads = v;
                    }
                }
                "--shards" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.shards = v;
                    }
                }
                "--json" => {
                    out.json = iter.next();
                }
                "--metrics-json" => {
                    out.metrics_json = iter.next();
                }
                "--paper-scale" => {
                    out.scale = 1.0;
                    out.repetitions = 26_000;
                    out.queries = 50;
                }
                _ => {}
            }
        }
        assert!(
            out.scale > 0.0 && out.scale <= 1.0,
            "--scale must be in (0, 1]"
        );
        assert!(out.repetitions > 0, "--repetitions must be positive");
        assert!(out.queries > 0, "--queries must be positive");
        assert!(out.threads > 0, "--threads must be positive");
        assert!(out.shards > 0, "--shards must be positive");
        out
    }

    /// A suffix like `", threads = 2, shards = 4"` for the binaries'
    /// parameter headers — empty at the defaults so the historical output
    /// is preserved byte for byte.
    pub fn engine_suffix(&self) -> String {
        if self.threads == 1 && self.shards == 1 {
            String::new()
        } else {
            format!(", threads = {}, shards = {}", self.threads, self.shards)
        }
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_are_sane() {
        let a = CommonArgs::default();
        assert!(a.scale > 0.0 && a.scale <= 1.0);
        assert!(a.repetitions > 0);
        assert!(a.queries > 0);
    }

    #[test]
    fn parses_known_flags() {
        let a = CommonArgs::parse(to_args(&[
            "--scale",
            "0.5",
            "--repetitions",
            "123",
            "--queries",
            "7",
            "--seed",
            "99",
            "--threads",
            "8",
            "--shards",
            "4",
        ]));
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.repetitions, 123);
        assert_eq!(a.queries, 7);
        assert_eq!(a.seed, 99);
        assert_eq!(a.threads, 8);
        assert_eq!(a.shards, 4);
    }

    #[test]
    fn engine_defaults_preserve_historical_behaviour() {
        let a = CommonArgs::default();
        assert_eq!(a.threads, 1);
        assert_eq!(a.shards, 1);
        assert_eq!(a.engine_suffix(), "");
        let b = CommonArgs::parse(to_args(&["--shards", "4"]));
        assert_eq!(b.engine_suffix(), ", threads = 1, shards = 4");
    }

    #[test]
    #[should_panic(expected = "--threads must be positive")]
    fn rejects_zero_threads() {
        let _ = CommonArgs::parse(to_args(&["--threads", "0"]));
    }

    #[test]
    fn ignores_unknown_flags() {
        let a = CommonArgs::parse(to_args(&["--unknown", "3", "--queries", "4"]));
        assert_eq!(a.queries, 4);
    }

    #[test]
    fn parses_report_paths() {
        let a = CommonArgs::parse(to_args(&[
            "--json",
            "BENCH.json",
            "--metrics-json",
            "METRICS.json",
        ]));
        assert_eq!(a.json.as_deref(), Some("BENCH.json"));
        assert_eq!(a.metrics_json.as_deref(), Some("METRICS.json"));
        assert_eq!(CommonArgs::default().metrics_json, None);
    }

    #[test]
    fn paper_scale_preset() {
        let a = CommonArgs::parse(to_args(&["--paper-scale"]));
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.repetitions, 26_000);
        assert_eq!(a.queries, 50);
    }

    #[test]
    #[should_panic(expected = "--scale must be in (0, 1]")]
    fn rejects_invalid_scale() {
        let _ = CommonArgs::parse(to_args(&["--scale", "2.5"]));
    }
}
