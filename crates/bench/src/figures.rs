//! The experiment implementations behind the `fig*` and `table_*` binaries.
//!
//! Each function is deterministic given its seed and returns a plain result
//! struct; the binaries only add argument parsing and table printing, so the
//! integration tests can assert on the experimental findings directly.

use crate::workload::SetWorkload;
use fairnn_core::{
    ApproximateNeighborhoodSampler, ExactSampler, FairNnis, FairNns, NaiveFairLsh, NeighborSampler,
    SimilarityAtLeast, StandardLsh,
};
use fairnn_data::AdversarialInstance;
use fairnn_engine::{ShardedIndex, ShardedIndexConfig, ShardedSampler};
use fairnn_lsh::{ConcatenatedHasher, LshParams, OneBitMinHash, OneBitMinHasher, ParamsBuilder};
use fairnn_space::{Dataset, Jaccard, PointId, Similarity, SparseSet};
use fairnn_stats::{FrequencyHistogram, SimilarityProfile, Summary, UniformityReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// LSH parameters used throughout the set-similarity experiments, following
/// the Section 6 recipe (1-bit MinHash, ≈5 expected far collisions at
/// Jaccard 0.1, ≥ 99 % recall at the near threshold `r`).
pub fn paper_lsh_params(n: usize, r: f64) -> LshParams {
    ParamsBuilder::new(n, r, 0.1).empirical(&OneBitMinHash)
}

// ---------------------------------------------------------------------------
// Figure 1: output distribution of standard LSH vs fair LSH
// ---------------------------------------------------------------------------

/// The measured output distribution of one method for one query.
#[derive(Debug, Clone)]
pub struct MethodDistribution {
    /// Relative output frequency aggregated by similarity level (the
    /// quantity plotted in Figure 1).
    pub profile: SimilarityProfile,
    /// Deviation of the output distribution from uniform over the true
    /// neighbourhood.
    pub report: UniformityReport,
    /// Pearson correlation between similarity and output frequency; positive
    /// values mean the method favours closer points.
    pub correlation: f64,
}

/// Per-query results of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct QueryDistribution {
    /// The query id within the workload dataset.
    pub query: PointId,
    /// True neighbourhood size `b_S(q, r)`.
    pub neighborhood_size: usize,
    /// Standard LSH (first near point found, randomised visiting order).
    pub standard: MethodDistribution,
    /// Fair LSH (collect all near points, sample uniformly).
    pub fair: MethodDistribution,
}

/// Result of the Figure 1 experiment over a whole workload.
#[derive(Debug, Clone)]
pub struct OutputDistributionResult {
    /// The similarity threshold `r` used.
    pub r: f64,
    /// Per-query distributions.
    pub per_query: Vec<QueryDistribution>,
}

impl OutputDistributionResult {
    /// Mean total-variation distance from uniform of the standard LSH
    /// output across queries.
    pub fn mean_standard_tv(&self) -> f64 {
        mean(
            self.per_query
                .iter()
                .map(|q| q.standard.report.total_variation),
        )
    }

    /// Mean total-variation distance from uniform of the fair LSH output.
    pub fn mean_fair_tv(&self) -> f64 {
        mean(self.per_query.iter().map(|q| q.fair.report.total_variation))
    }

    /// Mean similarity/frequency correlation of the standard LSH output.
    pub fn mean_standard_correlation(&self) -> f64 {
        mean(self.per_query.iter().map(|q| q.standard.correlation))
    }

    /// Mean similarity/frequency correlation of the fair LSH output.
    pub fn mean_fair_correlation(&self) -> f64 {
        mean(self.per_query.iter().map(|q| q.fair.correlation))
    }
}

fn mean<I: Iterator<Item = f64>>(iter: I) -> f64 {
    let values: Vec<f64> = iter.collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maps `f` over `items`, chunked across `threads` scoped workers, with the
/// output in input order. `f` must be a pure function of its item for the
/// result to be thread-count independent — which is how every threaded
/// experiment here stays deterministic.
fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads).max(1);
    // fairnn-audit: allow(raw-thread) — bench-only helper; `threads` is a per-call CLI argument, predates fairnn-parallel
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Runs the Figure 1 experiment: repeatedly query the standard and the fair
/// LSH structures and record which neighbour is reported.
pub fn run_output_distribution(
    workload: &SetWorkload,
    r: f64,
    repetitions: usize,
    seed: u64,
) -> OutputDistributionResult {
    let dataset = &workload.dataset;
    let params = paper_lsh_params(dataset.len(), r);
    let near = SimilarityAtLeast::new(Jaccard, r);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut standard = StandardLsh::build(&OneBitMinHash, params, dataset, near, &mut rng);
    let mut fair = NaiveFairLsh::build(&OneBitMinHash, params, dataset, near, &mut rng);

    let mut per_query = Vec::new();
    for &query_id in &workload.queries {
        let query = dataset.point(query_id).clone();
        let neighborhood = dataset.similar_indices(&Jaccard, &query, r);
        if neighborhood.len() < 2 {
            continue; // nothing interesting to measure
        }
        let members: Vec<(PointId, f64)> = neighborhood
            .iter()
            .map(|id| (*id, Jaccard.similarity(&query, dataset.point(*id))))
            .collect();

        let mut standard_hist = FrequencyHistogram::new();
        let mut fair_hist = FrequencyHistogram::new();
        for _ in 0..repetitions {
            standard_hist.record(standard.sample(&query, &mut rng));
            fair_hist.record(fair.sample(&query, &mut rng));
        }

        let make = |hist: &FrequencyHistogram| {
            let profile = SimilarityProfile::from_histogram(hist, &members, 2);
            let report = UniformityReport::from_histogram(hist, &neighborhood);
            let correlation = profile.similarity_frequency_correlation();
            MethodDistribution {
                profile,
                report,
                correlation,
            }
        };

        per_query.push(QueryDistribution {
            query: query_id,
            neighborhood_size: neighborhood.len(),
            standard: make(&standard_hist),
            fair: make(&fair_hist),
        });
    }

    OutputDistributionResult { r, per_query }
}

// ---------------------------------------------------------------------------
// Figure 1 extension: the sharded engine against the uniformity battery
// ---------------------------------------------------------------------------

/// The sharded-index type every set-similarity engine experiment uses.
pub type SetShardedIndex =
    ShardedIndex<SparseSet, ConcatenatedHasher<OneBitMinHasher>, SimilarityAtLeast<Jaccard>>;

/// The matching sampler adapter.
pub type SetShardedSampler =
    ShardedSampler<SparseSet, ConcatenatedHasher<OneBitMinHasher>, SimilarityAtLeast<Jaccard>>;

/// Builds the sharded index over a workload with the paper's LSH recipe.
pub fn build_sharded_index(
    workload: &SetWorkload,
    r: f64,
    shards: usize,
    seed: u64,
) -> SetShardedIndex {
    let dataset = &workload.dataset;
    let params = paper_lsh_params(dataset.len(), r);
    let near = SimilarityAtLeast::new(Jaccard, r);
    ShardedIndex::build(
        &OneBitMinHash,
        params,
        dataset,
        near,
        ShardedIndexConfig::with_shards(shards).seeded(seed),
    )
}

/// Per-query outcome of the engine uniformity experiment.
#[derive(Debug, Clone)]
pub struct EngineQueryReport {
    /// The query id within the workload dataset.
    pub query: PointId,
    /// True neighbourhood size `b_S(q, r)`.
    pub neighborhood_size: usize,
    /// Deviation of the sharded engine's output distribution from uniform
    /// over the true neighbourhood.
    pub report: UniformityReport,
}

/// Result of running the sharded two-level sampler through the same
/// uniformity battery Figure 1 applies to the unsharded samplers.
#[derive(Debug, Clone)]
pub struct EngineDistributionResult {
    /// Shard count the index was built with.
    pub shards: usize,
    /// Per-query reports.
    pub per_query: Vec<EngineQueryReport>,
}

impl EngineDistributionResult {
    /// Mean total-variation distance from uniform across queries.
    pub fn mean_tv(&self) -> f64 {
        mean(self.per_query.iter().map(|q| q.report.total_variation))
    }

    /// Whether every query passed the chi-square consistency check at the
    /// given significance level.
    pub fn all_consistent(&self, significance: f64) -> bool {
        self.per_query
            .iter()
            .all(|q| q.report.is_consistent_with_uniform(significance))
    }
}

/// Runs the sharded engine over the Figure 1 workload: repeated independent
/// queries against one build, measured with [`UniformityReport`]. Queries
/// are distributed over `threads` workers; each query samples from its own
/// seed-derived RNG stream, so the result is identical for every thread
/// count.
pub fn run_engine_distribution(
    workload: &SetWorkload,
    r: f64,
    shards: usize,
    threads: usize,
    repetitions: usize,
    seed: u64,
) -> EngineDistributionResult {
    assert!(threads >= 1, "need at least one thread");
    let dataset = &workload.dataset;
    let index = build_sharded_index(workload, r, shards, seed);

    let usable: Vec<PointId> = workload
        .queries
        .iter()
        .copied()
        .filter(|id| dataset.similar_count(&Jaccard, dataset.point(*id), r) >= 2)
        .collect();

    let measure_one = |query_id: PointId| -> EngineQueryReport {
        let query = dataset.point(query_id).clone();
        let neighborhood = dataset.similar_indices(&Jaccard, &query, r);
        let mut rng = StdRng::seed_from_u64(seed ^ (0xE1A0 + u64::from(query_id.0) * 0x9E37));
        let mut prepared = index.prepare(&query);
        let mut hist = FrequencyHistogram::new();
        for _ in 0..repetitions {
            hist.record(prepared.sample(&mut rng));
        }
        EngineQueryReport {
            query: query_id,
            neighborhood_size: neighborhood.len(),
            report: UniformityReport::from_histogram(&hist, &neighborhood),
        }
    };

    let per_query = parallel_map(&usable, threads, |&id| measure_one(id));

    EngineDistributionResult { shards, per_query }
}

// ---------------------------------------------------------------------------
// Figure 2: unfairness of the approximate-neighbourhood notion
// ---------------------------------------------------------------------------

/// Result of the Section 6.2 adversarial experiment.
#[derive(Debug, Clone)]
pub struct AdversarialResult {
    /// Per-build empirical sampling probability of the set `X` (isolated,
    /// similarity 0.5).
    pub x_probability: Summary,
    /// Per-build empirical sampling probability of the set `Y` (crowded,
    /// similarity 0.6).
    pub y_probability: Summary,
    /// Per-build empirical sampling probability of the set `Z` (similarity
    /// 0.9, the true near neighbour).
    pub z_probability: Summary,
    /// Ratio of the mean sampling probabilities of `X` and `Y` — the paper
    /// reports a factor above 50.
    pub x_over_y: f64,
}

/// Runs the Figure 2 experiment: sample from the approximate-neighbourhood
/// sampler on the adversarial instance, over several independent builds.
pub fn run_adversarial_experiment(
    builds: usize,
    repetitions_per_build: usize,
    seed: u64,
) -> AdversarialResult {
    run_adversarial_experiment_threaded(builds, repetitions_per_build, seed, 1)
}

/// The Figure 2 experiment with the independent builds distributed over
/// `threads` workers. Every build is seeded from its own index, so the
/// result is identical for every thread count (and to the sequential
/// [`run_adversarial_experiment`]).
pub fn run_adversarial_experiment_threaded(
    builds: usize,
    repetitions_per_build: usize,
    seed: u64,
    threads: usize,
) -> AdversarialResult {
    assert!(threads >= 1, "need at least one thread");
    let instance = AdversarialInstance::build();
    let n = instance.dataset.len();
    // r = 0.9, cr = 0.5 as in the paper; the far threshold drives both the
    // LSH parameters and membership in the approximate neighbourhood S'.
    let params = ParamsBuilder::new(n, instance.near_threshold, instance.far_threshold)
        .empirical(&OneBitMinHash);
    let within_far = SimilarityAtLeast::new(Jaccard, instance.far_threshold);

    let run_build = |b: usize| -> (f64, f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(b as u64));
        let mut sampler = ApproximateNeighborhoodSampler::build(
            &OneBitMinHash,
            params,
            &instance.dataset,
            within_far,
            &mut rng,
        );
        let mut hist = FrequencyHistogram::new();
        for _ in 0..repetitions_per_build {
            hist.record(sampler.sample(&instance.query, &mut rng));
        }
        (
            hist.relative_frequency(instance.x),
            hist.relative_frequency(instance.y),
            hist.relative_frequency(instance.z),
        )
    };

    let ids: Vec<usize> = (0..builds).collect();
    let per_build = parallel_map(&ids, threads, |&b| run_build(b));

    let x_probs: Vec<f64> = per_build.iter().map(|p| p.0).collect();
    let y_probs: Vec<f64> = per_build.iter().map(|p| p.1).collect();
    let z_probs: Vec<f64> = per_build.iter().map(|p| p.2).collect();

    let x = Summary::of(&x_probs);
    let y = Summary::of(&y_probs);
    let z = Summary::of(&z_probs);
    let x_over_y = if y.mean > 0.0 {
        x.mean / y.mean
    } else {
        f64::INFINITY
    };
    AdversarialResult {
        x_probability: x,
        y_probability: y,
        z_probability: z,
        x_over_y,
    }
}

// ---------------------------------------------------------------------------
// Figure 3: cost ratio b_S(q, cr) / b_S(q, r)
// ---------------------------------------------------------------------------

/// One row of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct CostRatioRow {
    /// Near similarity threshold `r`.
    pub r: f64,
    /// Approximation factor `c` (so the far threshold is `c · r`).
    pub c: f64,
    /// Summary of the per-query ratio `b_S(q, cr) / b_S(q, r)`.
    pub ratio: Summary,
}

/// Runs the Figure 3 experiment: exact neighbourhood-size ratios at the
/// paper's `r` and `c` grids.
pub fn run_cost_ratio(
    dataset: &Dataset<SparseSet>,
    queries: &[PointId],
    rs: &[f64],
    cs: &[f64],
) -> Vec<CostRatioRow> {
    run_cost_ratio_threaded(dataset, queries, rs, cs, 1)
}

/// The Figure 3 experiment with the `(r, c)` grid cells distributed over
/// `threads` workers. The computation is exact (no randomness), so the
/// result is identical for every thread count.
pub fn run_cost_ratio_threaded(
    dataset: &Dataset<SparseSet>,
    queries: &[PointId],
    rs: &[f64],
    cs: &[f64],
    threads: usize,
) -> Vec<CostRatioRow> {
    assert!(threads >= 1, "need at least one thread");
    let grid: Vec<(f64, f64)> = rs
        .iter()
        .flat_map(|&r| cs.iter().map(move |&c| (r, c)))
        .collect();

    let compute = |&(r, c): &(f64, f64)| -> CostRatioRow {
        let cr = c * r;
        let mut ratios = Vec::new();
        for &qid in queries {
            let q = dataset.point(qid);
            let b_r = dataset.similar_count(&Jaccard, q, r);
            let b_cr = dataset.similar_count(&Jaccard, q, cr);
            if b_r > 0 {
                ratios.push(b_cr as f64 / b_r as f64);
            }
        }
        CostRatioRow {
            r,
            c,
            ratio: Summary::of(&ratios),
        }
    };

    parallel_map(&grid, threads, compute)
}

// ---------------------------------------------------------------------------
// Section 6.3: query-cost comparison of the samplers
// ---------------------------------------------------------------------------

/// Measured per-query cost of one sampler.
#[derive(Debug, Clone)]
pub struct SamplerCost {
    /// Sampler name (as reported by [`NeighborSampler::name`]).
    pub name: &'static str,
    /// Mean bucket entries scanned per query.
    pub mean_entries: f64,
    /// Mean distance/similarity computations per query.
    pub mean_distance_computations: f64,
    /// Mean wall-clock time per query in microseconds.
    pub mean_micros: f64,
    /// Fraction of queries answered with `⊥`.
    pub failure_rate: f64,
}

/// Runs the query-cost comparison: every fair variant plus the baselines on
/// the same workload and threshold. When `shards >= 2` the sharded
/// two-level engine is measured as an additional row (with `shards = 1` the
/// historical table is reproduced unchanged).
pub fn run_query_cost(
    workload: &SetWorkload,
    r: f64,
    repetitions: usize,
    seed: u64,
    shards: usize,
) -> Vec<SamplerCost> {
    let dataset = &workload.dataset;
    let params = paper_lsh_params(dataset.len(), r);
    let near = SimilarityAtLeast::new(Jaccard, r);
    let queries = workload.query_points();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut results = Vec::new();

    let mut exact = ExactSampler::new(dataset, near);
    results.push(measure(&mut exact, &queries, repetitions, seed + 1));

    let mut standard = StandardLsh::build(&OneBitMinHash, params, dataset, near, &mut rng);
    results.push(measure(&mut standard, &queries, repetitions, seed + 2));

    let mut naive = NaiveFairLsh::build(&OneBitMinHash, params, dataset, near, &mut rng);
    results.push(measure(&mut naive, &queries, repetitions, seed + 3));

    let mut nns = FairNns::build(&OneBitMinHash, params, dataset, near, &mut rng);
    results.push(measure(&mut nns, &queries, repetitions, seed + 4));

    let mut nnis = FairNnis::build(&OneBitMinHash, params, dataset, near, &mut rng);
    results.push(measure(&mut nnis, &queries, repetitions, seed + 5));

    if shards >= 2 {
        let mut sharded = SetShardedSampler::build(
            &OneBitMinHash,
            params,
            dataset,
            near,
            ShardedIndexConfig::with_shards(shards).seeded(seed),
        );
        results.push(measure(&mut sharded, &queries, repetitions, seed + 6));
    }

    results
}

/// Measures one sampler over all queries.
pub fn measure<P: Clone, S: NeighborSampler<P>>(
    sampler: &mut S,
    queries: &[P],
    repetitions: usize,
    seed: u64,
) -> SamplerCost {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entries = 0f64;
    let mut distances = 0f64;
    let mut failures = 0usize;
    let mut total = 0usize;
    let start = Instant::now();
    for query in queries {
        for _ in 0..repetitions {
            total += 1;
            if sampler.sample(query, &mut rng).is_none() {
                failures += 1;
            }
            let stats = sampler.last_query_stats();
            entries += stats.entries_scanned as f64;
            distances += stats.distance_computations as f64;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let denom = total.max(1) as f64;
    SamplerCost {
        name: sampler.name(),
        mean_entries: entries / denom,
        mean_distance_computations: distances / denom,
        mean_micros: elapsed * 1e6 / denom,
        failure_rate: failures as f64 / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadKind;

    fn small_workload() -> SetWorkload {
        SetWorkload::generate(WorkloadKind::LastFm, 0.08, 4, 3)
    }

    #[test]
    fn paper_params_reach_the_recall_target() {
        let p = paper_lsh_params(1892, 0.2);
        assert!(p.retrieval_probability(&OneBitMinHash, 0.2) >= 0.99);
        assert!(p.k >= 1 && p.l >= 1);
    }

    #[test]
    fn output_distribution_standard_is_more_biased_than_fair() {
        let w = small_workload();
        let result = run_output_distribution(&w, 0.2, 400, 7);
        assert!(
            !result.per_query.is_empty(),
            "no query had a usable neighbourhood"
        );
        // The qualitative Figure 1 finding: fair LSH is closer to uniform
        // than standard LSH, and standard LSH has a positive
        // similarity/frequency correlation.
        assert!(
            result.mean_fair_tv() <= result.mean_standard_tv() + 0.05,
            "fair TV {} vs standard TV {}",
            result.mean_fair_tv(),
            result.mean_standard_tv()
        );
        assert!(result.mean_standard_correlation() > -0.2);
    }

    #[test]
    fn cost_ratio_rows_are_at_least_one_and_monotone_in_c() {
        let w = small_workload();
        let rows = run_cost_ratio(&w.dataset, &w.queries, &[0.2], &[0.25, 0.5, 0.75]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.ratio.mean >= 1.0, "ratio below 1: {}", row.ratio.mean);
        }
        // Smaller c => lower far threshold => more points => larger ratio.
        assert!(rows[0].ratio.mean >= rows[2].ratio.mean - 1e-9);
    }

    #[test]
    fn adversarial_experiment_shows_x_over_y_unfairness() {
        let result = run_adversarial_experiment(40, 200, 11);
        assert!(result.x_probability.mean >= 0.0);
        // The defining observation of Section 6.2: X is sampled much more
        // often than Y although Y is more similar to the query.
        assert!(
            result.x_probability.mean > result.y_probability.mean,
            "X mean {} vs Y mean {}",
            result.x_probability.mean,
            result.y_probability.mean
        );
    }

    #[test]
    fn engine_distribution_is_deterministic_across_threads_and_uniformish() {
        let w = small_workload();
        let serial = run_engine_distribution(&w, 0.2, 4, 1, 600, 13);
        let threaded = run_engine_distribution(&w, 0.2, 4, 3, 600, 13);
        assert!(!serial.per_query.is_empty());
        assert_eq!(serial.per_query.len(), threaded.per_query.len());
        for (a, b) in serial.per_query.iter().zip(&threaded.per_query) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.report.total_variation, b.report.total_variation);
        }
        // The sharded sampler must put no mass outside the true
        // neighbourhood and stay near uniform.
        for q in &serial.per_query {
            assert_eq!(q.report.out_of_support, 0.0, "query {}", q.query);
        }
        assert!(serial.mean_tv() < 0.35, "mean TV {}", serial.mean_tv());
    }

    #[test]
    fn threaded_fig2_and_fig3_match_their_sequential_results() {
        let seq = run_adversarial_experiment(12, 80, 3);
        let par = run_adversarial_experiment_threaded(12, 80, 3, 4);
        assert_eq!(seq.x_probability.mean, par.x_probability.mean);
        assert_eq!(seq.y_probability.mean, par.y_probability.mean);
        assert_eq!(seq.z_probability.mean, par.z_probability.mean);

        let w = small_workload();
        let seq_rows = run_cost_ratio(&w.dataset, &w.queries, &[0.2, 0.3], &[0.25, 0.5]);
        let par_rows =
            run_cost_ratio_threaded(&w.dataset, &w.queries, &[0.2, 0.3], &[0.25, 0.5], 3);
        assert_eq!(seq_rows.len(), par_rows.len());
        for (a, b) in seq_rows.iter().zip(&par_rows) {
            assert_eq!((a.r, a.c, a.ratio.mean), (b.r, b.c, b.ratio.mean));
        }
    }

    #[test]
    fn query_cost_with_shards_appends_the_engine_row() {
        let w = small_workload();
        let costs = run_query_cost(&w, 0.2, 3, 5, 4);
        assert_eq!(costs.len(), 6);
        let sharded = costs.iter().find(|c| c.name == "sharded-engine").unwrap();
        assert!(sharded.failure_rate <= 0.2);
        assert!(sharded.mean_distance_computations > 0.0);
    }

    #[test]
    fn query_cost_reports_all_samplers() {
        let w = small_workload();
        let costs = run_query_cost(&w, 0.2, 3, 5, 1);
        assert_eq!(costs.len(), 5);
        let names: Vec<&str> = costs.iter().map(|c| c.name).collect();
        assert!(names.contains(&"exact"));
        assert!(names.contains(&"fair-nnis"));
        // The exact scan must inspect the whole dataset; LSH-based samplers
        // should not inspect more entries than exact times the table count.
        let exact = costs.iter().find(|c| c.name == "exact").unwrap();
        assert!(exact.mean_entries >= w.dataset.len() as f64 - 1e-9);
        for c in &costs {
            assert!(
                c.failure_rate <= 0.2,
                "{} failed too often: {}",
                c.name,
                c.failure_rate
            );
        }
    }
}
