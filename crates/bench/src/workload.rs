//! Workload construction for the experiments: scaled versions of the two
//! synthetic rating datasets plus the query selection of Section 6.

use fairnn_data::{lastfm_like, movielens_like, select_interesting_queries, SetDataConfig};
use fairnn_space::{Dataset, Jaccard, PointId, SparseSet};

/// Which of the two paper datasets to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Last.FM-like: ~1 892 users, small sets (top-20 artists).
    LastFm,
    /// MovieLens-like: ~2 112 users, large skewed sets (movies rated ≥ 4).
    MovieLens,
}

impl WorkloadKind {
    /// Human-readable name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::LastFm => "Last.FM-like",
            WorkloadKind::MovieLens => "MovieLens-like",
        }
    }

    /// The generator configuration at a given scale (fraction of the
    /// paper's user count; item universe and set sizes are unchanged).
    pub fn config(self, scale: f64) -> SetDataConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut cfg = match self {
            WorkloadKind::LastFm => lastfm_like(),
            WorkloadKind::MovieLens => movielens_like(),
        };
        cfg.num_users = ((cfg.num_users as f64 * scale).round() as usize).max(50);
        // Keep at least a handful of clusters even at small scales.
        cfg.num_clusters = cfg.num_clusters.min(cfg.num_users / 20).max(3);
        cfg
    }
}

/// A generated dataset together with its selected query points.
#[derive(Debug, Clone)]
pub struct SetWorkload {
    /// Which dataset this emulates.
    pub kind: WorkloadKind,
    /// The generated user sets.
    pub dataset: Dataset<SparseSet>,
    /// The selected "interesting" query ids.
    pub queries: Vec<PointId>,
}

impl SetWorkload {
    /// Generates the workload: dataset plus `num_queries` interesting
    /// queries (users with at least `min_neighbors` neighbours at Jaccard
    /// ≥ 0.2, as in the paper; the neighbour requirement is scaled with the
    /// dataset).
    pub fn generate(kind: WorkloadKind, scale: f64, num_queries: usize, seed: u64) -> Self {
        let cfg = kind.config(scale);
        let dataset = cfg.generate(seed);
        // The paper requires >= 40 neighbours at J >= 0.2 on the full-size
        // datasets; scale the requirement down proportionally (but keep a
        // floor so "interesting" still means something).
        let min_neighbors = ((40.0 * scale).round() as usize).clamp(8, 40);
        let queries = select_interesting_queries(
            &dataset,
            &Jaccard,
            0.2,
            min_neighbors,
            num_queries,
            seed ^ 0x9E37_79B9,
        );
        Self {
            kind,
            dataset,
            queries,
        }
    }

    /// The query points themselves.
    pub fn query_points(&self) -> Vec<SparseSet> {
        self.queries
            .iter()
            .map(|id| self.dataset.point(*id).clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_configs_shrink_user_count() {
        let full = WorkloadKind::MovieLens.config(1.0);
        let half = WorkloadKind::MovieLens.config(0.5);
        assert_eq!(full.num_users, 2112);
        assert!(half.num_users < full.num_users);
        assert_eq!(WorkloadKind::LastFm.name(), "Last.FM-like");
    }

    #[test]
    fn workload_has_queries_with_neighbors() {
        let w = SetWorkload::generate(WorkloadKind::LastFm, 0.15, 5, 1);
        assert!(!w.queries.is_empty(), "no interesting queries found");
        assert_eq!(w.query_points().len(), w.queries.len());
        for q in &w.queries {
            let count = w.dataset.similar_count(&Jaccard, w.dataset.point(*q), 0.2);
            assert!(count >= 8, "query {q:?} has only {count} neighbours");
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn invalid_scale_rejected() {
        let _ = WorkloadKind::LastFm.config(0.0);
    }
}
