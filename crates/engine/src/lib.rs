//! Sharded, concurrent, batch query-serving subsystem for fair near-neighbor
//! sampling.
//!
//! The paper's samplers are single-shot data structures: one monolithic
//! index, one query at a time, one core. This crate turns them into a
//! serving layer. The load-bearing observation is that the Section 4
//! construction already rests on *mergeable* count-distinct sketches, and
//! mergeability is exactly what makes the structures shardable: per-shard
//! estimates of `|B_S(q, r) ∩ shard|` combine into a global one, so a
//! two-level sampler — pick a shard proportionally to its estimate, then
//! sample fairly within it, with a rejection correction that cancels the
//! estimation error — stays exactly uniform (up to an `exp(−Θ(k))`-
//! probability sketch failure; see the `sharded` module docs).
//!
//! The pieces:
//!
//! * [`shard`] — one shard: shard-local LSH tables built from the shared
//!   parameters, mergeable per-bucket KMV sketches over global point ids,
//!   incremental insert/delete with shard-local compaction;
//! * [`sharded`] — [`ShardedIndex`]: the partition, the rejection-corrected
//!   two-level sampler (with its uniformity argument), and the
//!   [`ShardedSampler`] adapter into the `fairnn-core` sampler traits;
//! * [`engine`] — [`QueryEngine`]: a fixed thread pool, batched query
//!   submission, per-answer RNG streams split from a root seed (identical
//!   results for every thread count), and the Theorem 5 rank-swap result
//!   cache for repeated identical queries;
//! * [`cache`] — that cache;
//! * [`seed`] — the deterministic stream-splitting helpers;
//! * [`api_types`] / [`reader`] / [`writer`] / [`generation`] — the live-
//!   update layer: an [`EngineWriter`] stages [`WriteBatch`] mutations,
//!   write-ahead-logs them and atomically publishes immutable
//!   generations, while cheap-to-clone [`EngineReader`]s pin an epoch
//!   ([`EpochPin`]) and keep serving it — queries never observe a thaw,
//!   and crash recovery (checkpoint + WAL replay) is bit-identical to the
//!   live path.
//!
//! # Quick example
//!
//! ```
//! use fairnn_engine::{EngineConfig, QueryEngine};
//! use fairnn_core::SimilarityAtLeast;
//! use fairnn_lsh::{MinHash, ParamsBuilder};
//! use fairnn_space::{Dataset, Jaccard, SparseSet};
//!
//! // Toy dataset: three mutually similar users plus an outlier.
//! let data: Dataset<SparseSet> = vec![
//!     SparseSet::from_items(vec![1, 2, 3, 4]),
//!     SparseSet::from_items(vec![1, 2, 3, 5]),
//!     SparseSet::from_items(vec![1, 2, 3, 6]),
//!     SparseSet::from_items(vec![100, 200, 300]),
//! ].into_iter().collect();
//!
//! let params = ParamsBuilder::new(data.len(), 0.5, 0.1).empirical(&MinHash);
//! let mut engine = QueryEngine::build(
//!     &MinHash,
//!     params,
//!     &data,
//!     SimilarityAtLeast::new(Jaccard, 0.5),
//!     EngineConfig::default().with_shards(2).with_threads(2),
//! );
//!
//! let query = SparseSet::from_items(vec![1, 2, 3, 4]);
//! let answers = engine.run_batch(&[query.clone(), query.clone()]);
//! assert_eq!(answers.len(), 2);
//! assert!(answers[0].id.is_some());
//! assert!(answers[1].via_cache, "repeat rides the rank-swap fast path");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_types;
pub mod cache;
pub mod engine;
pub mod generation;
pub mod reader;
pub mod seed;
pub mod shard;
pub mod sharded;
pub mod writer;

pub use api_types::{
    BatchResponse, CommitReceipt, DeadlineBudget, EngineError, QueryRequest, WriteBatch, WriteOp,
};
pub use cache::{CacheEntry, ResultCache};
pub use engine::{Answer, EngineConfig, QueryEngine};
pub use generation::Generation;
pub use reader::{EngineReader, EpochPin};
pub use shard::{Shard, ShardConfig};
pub use sharded::{PreparedQuery, ShardedIndex, ShardedIndexConfig, ShardedSampler};
pub use writer::{Checkpoint, EngineWriter, CHECKPOINT_FILE, WAL_FILE};
