//! The batched, concurrent query engine.
//!
//! [`QueryEngine`] wraps a [`ShardedIndex`] behind a fixed worker pool and a
//! rank-swap [`ResultCache`]. A batch submitted through
//! [`QueryEngine::run_batch`] is answered as follows:
//!
//! 1. queries are grouped by identity (exact match) in batch order;
//! 2. each group is one unit of work: the first occurrence runs the full
//!    two-level pipeline, further occurrences are served from the group's
//!    neighborhood by the Theorem 5 rank-swap step (see [`crate::cache`]);
//! 3. groups are dispatched to the pool; each answer draws from its own RNG
//!    stream split off the root seed by `(batch, position)`, so the result
//!    of a batch is a pure function of the seed, the index contents and the
//!    batch — **identical across thread counts and scheduling orders**;
//! 4. freshly computed neighborhoods are committed to the cache after the
//!    batch, in group order, keeping the cache state (and therefore future
//!    hit/miss patterns and evictions) deterministic too.
//!
//! The engine serves a fixed index state. Live updates go through the
//! generational reader/writer API instead ([`crate::EngineWriter`] /
//! [`crate::EngineReader`]): a writer stages mutations, write-ahead-logs
//! them and atomically publishes a fresh frozen generation, while readers
//! pin an epoch and keep serving the previous one.

use crate::cache::{CacheEntry, ResultCache};
use crate::seed::{split_seed, stream_rng};
use crate::sharded::{ShardedIndex, ShardedIndexConfig};
use fairnn_core::predicate::Nearness;
use fairnn_core::{NeighborSampler, QueryStats};
use fairnn_lsh::{ConcatenatedHasher, LshFamily, LshHasher, LshParams};
use fairnn_obs::{LazyCounter, LazyGauge, LazyHistogram, Timer};
use fairnn_parallel::ThreadPool;
use fairnn_space::{Dataset, PointId};
use rand::Rng;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{mpsc, Arc, Mutex, RwLock};

/// Wall time of one [`QueryEngine::run_batch`] call, grouping, dispatch and
/// cache commit included.
static BATCH_NS: LazyHistogram = LazyHistogram::new(
    "engine_batch_ns",
    "wall time of one run_batch call in nanoseconds",
);

/// Queries served across all batches (batch sizes are `count` of the batch
/// histogram away).
static QUERIES_TOTAL: LazyCounter = LazyCounter::new(
    "engine_queries_total",
    "queries answered by run_batch across all batches",
);

/// Group chunks dispatched to the pool and not yet completed: the engine's
/// view of its per-batch backlog (the pool's own queue depth is
/// `parallel_pool_queue_depth`).
static INFLIGHT_CHUNKS: LazyGauge = LazyGauge::new(
    "engine_inflight_chunks",
    "group chunks dispatched to the serving pool and not yet completed",
);

/// Configuration of a [`QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads of the fixed pool (1 = run batches inline).
    pub threads: usize,
    /// Result-cache capacity in distinct queries (0 disables the cache and
    /// with it the duplicate grouping of step 2).
    pub cache_capacity: usize,
    /// The sharded-index configuration (shard count, root seed, κ, …).
    pub index: ShardedIndexConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            cache_capacity: 1024,
            index: ShardedIndexConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Sets the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.index.shards = shards;
        self
    }

    /// Sets the root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.index.seed = seed;
        self
    }

    /// Sets the result-cache capacity (0 disables).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// One answered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    /// The sampled neighbor, or `None` (the paper's `⊥`) for an empty
    /// neighborhood.
    pub id: Option<PointId>,
    /// Pipeline work performed for this answer (zero for answers served by
    /// the rank-swap fast path, whose cost is one swap).
    pub stats: QueryStats,
    /// Whether the answer came from the rank-swap fast path rather than the
    /// full two-level pipeline.
    pub via_cache: bool,
}

/// RNG stream tag for batches (domain-separated from the index streams).
/// Shared with the generational reader ([`crate::EpochPin::run_batch`]),
/// which derives batch seeds by exactly the same scheme.
pub(crate) const STREAM_BATCH_BASE: u64 = 3 << 32;

/// One unit of work: a distinct query and the batch positions asking it.
struct Group<P> {
    query: P,
    positions: Vec<usize>,
}

/// Result of answering one group: per-position answers plus the cache commit
/// the coordinating thread applies after the batch.
type GroupResult<P> = (Vec<(usize, Answer)>, Option<(P, CacheEntry)>);

/// The serving engine: sharded index + worker pool + result cache.
pub struct QueryEngine<P, H, N> {
    index: Arc<RwLock<ShardedIndex<P, H, N>>>,
    cache: Arc<Mutex<ResultCache<P>>>,
    pool: Option<ThreadPool>,
    config: EngineConfig,
    batches: u64,
    last_stats: QueryStats,
}

impl<P: Clone + Send + Sync, BH, N> QueryEngine<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
    P: Hash + Eq,
    N: Nearness<P>,
{
    /// Builds the index and the worker pool: the shards build concurrently
    /// on the build workers (see [`ShardedIndex::build`]), with output
    /// bit-identical at any thread count. Deterministic given
    /// `config.index.seed`.
    pub fn build<F>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        config: EngineConfig,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH> + Sync,
        N: Clone + Send + Sync,
    {
        Self::from_index(
            ShardedIndex::build(family, params, dataset, near, config.index),
            config,
        )
    }
}

impl<P, H, N> QueryEngine<P, H, N>
where
    P: Hash + Eq + Clone,
{
    /// Wraps an existing index.
    pub fn from_index(index: ShardedIndex<P, H, N>, config: EngineConfig) -> Self {
        assert!(config.threads >= 1, "need at least one thread");
        let pool = (config.threads > 1).then(|| ThreadPool::new(config.threads));
        Self {
            index: Arc::new(RwLock::new(index)),
            cache: Arc::new(Mutex::new(ResultCache::new(config.cache_capacity))),
            pool,
            config,
            batches: 0,
            last_stats: QueryStats::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.index.read().expect("index lock poisoned").len()
    }

    /// Whether no live point remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.index.read().expect("index lock poisoned").num_shards()
    }

    /// `(hits, misses)` of the result cache in its current generation.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().expect("cache lock poisoned").stats()
    }
}

impl<P, H, N> QueryEngine<P, H, N>
where
    P: Hash + Eq + Clone,
    H: LshHasher<P>,
{
    /// Global mergeable-sketch estimate of the colliding-point count.
    pub fn estimate_colliding(&self, query: &P) -> f64 {
        self.index
            .read()
            .expect("index lock poisoned")
            .estimate_colliding(query)
    }
}

impl fairnn_snapshot::Codec for EngineConfig {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.threads as u64);
        enc.write_u64(self.cache_capacity as u64);
        self.index.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let threads = usize::decode(dec)?;
        let cache_capacity = usize::decode(dec)?;
        let index = crate::sharded::ShardedIndexConfig::decode(dec)?;
        // Loading respawns the worker pool from this field, so it must be
        // range-checked like every other decoded parameter: a corrupt value
        // would otherwise spawn OS threads until `thread::spawn` panics.
        // 1024 is far above any sane pool (the pool is compute-bound) and
        // far below any spawn limit.
        const MAX_THREADS: usize = 1024;
        if !(1..=MAX_THREADS).contains(&threads) {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "engine thread count must be in 1..={MAX_THREADS}, found {threads}"
            )));
        }
        Ok(Self {
            threads,
            cache_capacity,
            index,
        })
    }
}

impl<P, H, N> fairnn_snapshot::Codec for QueryEngine<P, H, N>
where
    P: Hash + Eq + Clone + fairnn_snapshot::Codec + Send + Sync,
    H: fairnn_lsh::HasherBankCodec + Send + Sync,
    N: fairnn_snapshot::Codec + Send + Sync + Nearness<P>,
{
    /// Persists the engine's complete serving state: configuration (thread
    /// count, cache capacity, index topology and root seed), the batch
    /// counter that seeds per-batch RNG streams, the sharded index, and the
    /// rank-swap result cache with its entries' current permutations — so a
    /// restored engine's next `run_batch` is bit-for-bit the batch the saved
    /// engine would have answered. The worker pool is transient and is
    /// respawned from the configuration on load.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.config.encode(enc);
        enc.write_u64(self.batches);
        self.index.read().expect("index lock poisoned").encode(enc);
        self.cache.lock().expect("cache lock poisoned").encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let config = EngineConfig::decode(dec)?;
        let batches = dec.read_u64()?;
        let index = ShardedIndex::<P, H, N>::decode(dec)?;
        let cache = ResultCache::<P>::decode(dec)?;
        Self::assemble(config, batches, index, cache)
    }

    /// Sectioned container image: a head section (configuration, batch
    /// counter, result cache) followed by the index's own sections — one
    /// per shard — so engine snapshots encode and decode shard-parallel
    /// exactly like bare [`ShardedIndex`] snapshots.
    fn encode_sections(&self) -> Vec<Vec<u8>> {
        let mut head = fairnn_snapshot::Encoder::new();
        self.config.encode(&mut head);
        head.write_u64(self.batches);
        self.cache
            .lock()
            .expect("cache lock poisoned")
            .encode(&mut head);
        let mut sections = vec![head.into_bytes()];
        sections.extend(
            self.index
                .read()
                .expect("index lock poisoned")
                .encode_sections(),
        );
        sections
    }

    fn decode_sections(
        sections: &[fairnn_snapshot::Section<'_>],
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let Some((head, index_sections)) = sections.split_first() else {
            return Err(SnapshotError::Corrupt(
                "engine snapshot has no head section".into(),
            ));
        };
        let mut dec = head.decoder();
        let config = EngineConfig::decode(&mut dec)?;
        let batches = dec.read_u64()?;
        let cache = ResultCache::<P>::decode(&mut dec)?;
        dec.finish()?;
        let index = ShardedIndex::<P, H, N>::decode_sections(index_sections)?;
        // All cross-field invariants live in the shared `assemble` tail.
        Self::assemble(config, batches, index, cache)
    }
}

impl<P, H, N> QueryEngine<P, H, N>
where
    P: Hash + Eq + Clone,
{
    /// Shared tail of the inline and sectioned decoders: every cross-field
    /// invariant of the wire format lives here, exactly once, so the two
    /// container forms cannot drift apart in what they accept. Respawns the
    /// transient worker pool from the configuration.
    fn assemble(
        config: EngineConfig,
        batches: u64,
        index: ShardedIndex<P, H, N>,
        cache: ResultCache<P>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        if cache.capacity() != config.cache_capacity {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "cache snapshot has capacity {}, engine config says {}",
                cache.capacity(),
                config.cache_capacity
            )));
        }
        let pool = (config.threads > 1).then(|| ThreadPool::new(config.threads));
        Ok(Self {
            index: Arc::new(RwLock::new(index)),
            cache: Arc::new(Mutex::new(cache)),
            pool,
            config,
            batches,
            last_stats: QueryStats::default(),
        })
    }
}

impl<P, H, N> QueryEngine<P, H, N>
where
    P: Hash + Eq + Clone + fairnn_snapshot::Codec + Send + Sync,
    H: fairnn_lsh::HasherBankCodec + Send + Sync,
    N: fairnn_snapshot::Codec + Send + Sync + Nearness<P>,
{
    /// Writes the engine as a versioned, checksummed snapshot file — the
    /// build-once/serve-many handoff: one process builds and saves, any
    /// number of serving processes `load` and start answering batches with
    /// zero rebuild work.
    pub fn save<Q: AsRef<std::path::Path>>(
        &self,
        path: Q,
    ) -> Result<(), fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::save(fairnn_snapshot::SnapshotKind::QueryEngine, self, path)
    }

    /// Restores an engine written by [`QueryEngine::save`]; batches answered
    /// by the restored engine are bit-for-bit identical to what the saved
    /// engine would have produced.
    pub fn load<Q: AsRef<std::path::Path>>(
        path: Q,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::load(fairnn_snapshot::SnapshotKind::QueryEngine, path)
    }
}

/// Answers one group: cache hit → rank-swap draws; miss → pipeline for the
/// first position, rank-swap over the freshly collected neighborhood for the
/// rest. Returns the per-position answers plus the cache commit (applied by
/// the caller after the batch, in group order, for determinism).
fn process_group<P, H, N>(
    index: &ShardedIndex<P, H, N>,
    cache: &Mutex<ResultCache<P>>,
    cache_enabled: bool,
    group: &Group<P>,
    batch_seed: u64,
) -> GroupResult<P>
where
    P: Hash + Eq + Clone,
    H: LshHasher<P>,
    N: Nearness<P>,
{
    let mut answers = Vec::with_capacity(group.positions.len());
    if cache_enabled {
        // Take the entry out under a short lock and draw outside it, so
        // concurrent groups hitting *different* cached queries do not
        // serialize on the one cache mutex. Groups are unique per query
        // within a batch, so no other worker can take the same entry, and
        // eviction only runs in the post-batch commit.
        let taken = cache
            .lock()
            .expect("cache lock poisoned")
            .take(&group.query);
        if let Some(mut entry) = taken {
            for &pos in &group.positions {
                let mut rng = stream_rng(batch_seed, pos as u64);
                let id = entry.sample(&mut rng);
                answers.push((
                    pos,
                    Answer {
                        id,
                        stats: QueryStats::default(),
                        via_cache: true,
                    },
                ));
            }
            cache
                .lock()
                .expect("cache lock poisoned")
                .restore(group.query.clone(), entry);
            return (answers, None);
        }
    }

    let lead = group.positions[0];
    let mut rng = stream_rng(batch_seed, lead as u64);
    let (id, stats) = index.sample(&group.query, &mut rng);
    answers.push((
        lead,
        Answer {
            id,
            stats,
            via_cache: false,
        },
    ));
    if !cache_enabled {
        debug_assert_eq!(group.positions.len(), 1, "grouping requires the cache");
        return (answers, None);
    }

    // Collect the neighborhood once; duplicates in this batch and repeats in
    // future batches ride the rank-swap fast path.
    let members = index.neighborhood(&group.query);
    let mut entry = CacheEntry::new(members, &mut rng);
    for &pos in &group.positions[1..] {
        let mut rng = stream_rng(batch_seed, pos as u64);
        let id = entry.sample(&mut rng);
        answers.push((
            pos,
            Answer {
                id,
                stats: QueryStats::default(),
                via_cache: true,
            },
        ));
    }
    (answers, Some((group.query.clone(), entry)))
}

impl<P, H, N> QueryEngine<P, H, N>
where
    P: Hash + Eq + Clone + Send + Sync + 'static,
    H: LshHasher<P> + Send + Sync + 'static,
    N: Nearness<P> + Send + Sync + 'static,
{
    /// Answers a batch of queries. `answers[i]` corresponds to
    /// `queries[i]`; for a fixed engine seed and index state the result is
    /// identical for every thread count.
    pub fn run_batch(&mut self, queries: &[P]) -> Vec<Answer> {
        let _timer = Timer::start(&BATCH_NS);
        QUERIES_TOTAL.add(queries.len() as u64);
        let batch_seed = split_seed(
            self.config.index.seed,
            STREAM_BATCH_BASE.wrapping_add(self.batches),
        );
        self.batches += 1;

        let cache_enabled = self.cache.lock().expect("cache lock poisoned").enabled();
        let groups = Self::group_queries(queries, cache_enabled);

        let mut answers: Vec<Option<Answer>> = vec![None; queries.len()];
        let mut commits: Vec<Option<(P, CacheEntry)>> = Vec::new();
        match &self.pool {
            None => {
                let index = self.index.read().expect("index lock poisoned");
                for group in &groups {
                    let (group_answers, commit) =
                        process_group(&index, &self.cache, cache_enabled, group, batch_seed);
                    for (pos, answer) in group_answers {
                        answers[pos] = Some(answer);
                    }
                    commits.push(commit);
                }
            }
            Some(pool) => {
                // One work item per chunk of groups (not per group): with
                // thousands of distinct queries the channel and Arc-clone
                // overhead would otherwise dominate the per-query pipeline
                // cost. A few chunks per worker keep the load balanced.
                let num_groups = groups.len();
                let chunk_size = num_groups.div_ceil(self.config.threads * 4).max(1);
                let (tx, rx) = mpsc::channel();
                let mut num_chunks = 0usize;
                let mut groups = groups.into_iter().enumerate();
                loop {
                    let chunk: Vec<(usize, Group<P>)> = groups.by_ref().take(chunk_size).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    num_chunks += 1;
                    let index = Arc::clone(&self.index);
                    let cache = Arc::clone(&self.cache);
                    let tx = tx.clone();
                    INFLIGHT_CHUNKS.add(1);
                    pool.execute(move || {
                        let index = index.read().expect("index lock poisoned");
                        let results: Vec<_> = chunk
                            .iter()
                            .map(|(gi, group)| {
                                (
                                    *gi,
                                    process_group(&index, &cache, cache_enabled, group, batch_seed),
                                )
                            })
                            .collect();
                        INFLIGHT_CHUNKS.add(-1);
                        tx.send(results).expect("batch receiver alive");
                    });
                }
                drop(tx);
                commits.resize_with(num_groups, || None);
                for _ in 0..num_chunks {
                    for (gi, (group_answers, commit)) in
                        rx.recv().expect("all chunk jobs report back")
                    {
                        for (pos, answer) in group_answers {
                            answers[pos] = Some(answer);
                        }
                        commits[gi] = commit;
                    }
                }
            }
        }

        // Commit fresh neighborhoods in group order (deterministic cache
        // contents and eviction order).
        let mut cache = self.cache.lock().expect("cache lock poisoned");
        for commit in commits.into_iter().flatten() {
            let (query, entry) = commit;
            cache.insert(query, entry);
        }
        drop(cache);

        answers
            .into_iter()
            .map(|a| a.expect("every position answered"))
            .collect()
    }

    /// Groups batch positions by query identity (first occurrence leads).
    /// Without the cache every position is its own group, which maximizes
    /// parallelism for duplicate-free workloads.
    fn group_queries(queries: &[P], cache_enabled: bool) -> Vec<Group<P>> {
        let mut groups: Vec<Group<P>> = Vec::new();
        if cache_enabled {
            let mut group_of: HashMap<&P, usize> = HashMap::new();
            for (i, query) in queries.iter().enumerate() {
                match group_of.get(query) {
                    Some(&g) => groups[g].positions.push(i),
                    None => {
                        group_of.insert(query, groups.len());
                        groups.push(Group {
                            query: query.clone(),
                            positions: vec![i],
                        });
                    }
                }
            }
        } else {
            groups.extend(queries.iter().enumerate().map(|(i, query)| Group {
                query: query.clone(),
                positions: vec![i],
            }));
        }
        groups
    }
}

impl<P, H, N> NeighborSampler<P> for QueryEngine<P, H, N>
where
    P: Hash + Eq + Clone,
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Single-query interface: one two-level pipeline draw using the
    /// caller's RNG (the batch determinism contract and the result cache
    /// only apply to [`QueryEngine::run_batch`]).
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        let (id, stats) = self
            .index
            .read()
            .expect("index lock poisoned")
            .sample(query, rng);
        self.last_stats = stats;
        id
    }

    fn last_query_stats(&self) -> QueryStats {
        self.last_stats
    }

    fn name(&self) -> &'static str {
        "query-engine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_core::{ExactSampler, SimilarityAtLeast};
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, SparseSet};

    fn clustered_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..10u32 {
            let mut items: Vec<u32> = (0..25).collect();
            items.push(100 + j);
            items.push(200 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..20u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 15).collect(),
            ));
        }
        Dataset::new(sets)
    }

    type Engine = QueryEngine<
        SparseSet,
        ConcatenatedHasher<fairnn_lsh::MinHasher>,
        SimilarityAtLeast<Jaccard>,
    >;

    fn build(config: EngineConfig) -> (Dataset<SparseSet>, Engine) {
        let data = clustered_dataset();
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let engine = QueryEngine::build(&MinHash, params, &data, near, config);
        (data, engine)
    }

    fn mixed_batch(data: &Dataset<SparseSet>) -> Vec<SparseSet> {
        // Distinct queries with deliberate duplicates sprinkled in.
        let mut batch = Vec::new();
        for round in 0..3 {
            for qi in 0..10u32 {
                batch.push(data.point(PointId(qi)).clone());
                if round == 1 && qi % 3 == 0 {
                    batch.push(data.point(PointId(0)).clone());
                }
            }
        }
        batch
    }

    #[test]
    fn batch_answers_line_up_with_queries() {
        let (data, mut engine) = build(EngineConfig::default().with_seed(21).with_shards(3));
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let batch = mixed_batch(&data);
        let answers = engine.run_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        for (query, answer) in batch.iter().zip(&answers) {
            let neighborhood = exact.neighborhood(query);
            let id = answer.id.expect("cluster queries have neighbors");
            assert!(neighborhood.contains(&id));
        }
        // Duplicates in the batch ride the fast path.
        assert!(answers.iter().any(|a| a.via_cache));
        assert!(answers.iter().any(|a| !a.via_cache));
    }

    #[test]
    fn identical_seeds_give_identical_answers_across_thread_counts() {
        // The determinism regression: an 8-thread engine must reproduce the
        // 1-thread engine bit for bit, across several batches (so the cache
        // generation logic is covered too).
        let (data, mut serial) = build(EngineConfig::default().with_seed(33).with_shards(4));
        let (_, mut parallel) = build(
            EngineConfig::default()
                .with_seed(33)
                .with_shards(4)
                .with_threads(8),
        );
        for _ in 0..3 {
            let batch = mixed_batch(&data);
            let a = serial.run_batch(&batch);
            let b = parallel.run_batch(&batch);
            assert_eq!(a, b, "thread count changed the answers");
        }
        assert_eq!(serial.cache_stats(), parallel.cache_stats());
    }

    #[test]
    fn second_batch_hits_the_cache() {
        let (data, mut engine) = build(EngineConfig::default().with_seed(5));
        let batch: Vec<SparseSet> = (0..5u32).map(|i| data.point(PointId(i)).clone()).collect();
        let first = engine.run_batch(&batch);
        assert!(first.iter().all(|a| !a.via_cache));
        let second = engine.run_batch(&batch);
        assert!(second.iter().all(|a| a.via_cache));
        let (hits, misses) = engine.cache_stats();
        assert_eq!((hits, misses), (5, 5));
        // Fast-path answers still come from the neighborhood.
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        for (query, answer) in batch.iter().zip(&second) {
            assert!(exact.neighborhood(query).contains(&answer.id.unwrap()));
        }
    }

    #[test]
    fn cache_fast_path_remains_uniform() {
        let (data, mut engine) = build(EngineConfig::default().with_seed(6));
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(0)).clone();
        let neighborhood = exact.neighborhood(&query);
        assert_eq!(neighborhood.len(), 10);
        let batch = vec![query; 400];
        let mut counts = vec![0usize; data.len()];
        for _ in 0..30 {
            for answer in engine.run_batch(&batch) {
                counts[answer.id.unwrap().index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for &id in &neighborhood {
            let rate = counts[id.index()] as f64 / total as f64;
            assert!(
                (rate - 0.1).abs() < 0.02,
                "member {id} rate {rate} off uniform"
            );
        }
    }

    #[test]
    fn disabling_the_cache_disables_grouping_but_not_answers() {
        let (data, mut engine) = build(EngineConfig::default().with_seed(7).with_cache_capacity(0));
        let query = data.point(PointId(0)).clone();
        let answers = engine.run_batch(&vec![query; 10]);
        assert_eq!(answers.len(), 10);
        assert!(answers.iter().all(|a| !a.via_cache));
        assert_eq!(engine.cache_stats(), (0, 0));
    }

    #[test]
    fn engine_is_a_neighbor_sampler_too() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (data, mut engine) = build(EngineConfig::default().with_seed(9));
        let mut rng = StdRng::seed_from_u64(1);
        let query = data.point(PointId(2)).clone();
        assert!(engine.sample(&query, &mut rng).is_some());
        assert!(engine.last_query_stats().rounds >= 1);
        assert_eq!(engine.name(), "query-engine");
        assert_eq!(engine.num_shards(), 4);
        assert!(!engine.is_empty());
        assert!(engine.estimate_colliding(&query) > 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, mut engine) = build(EngineConfig::default());
        assert!(engine.run_batch(&[]).is_empty());
    }

    #[test]
    fn snapshot_mid_serving_continues_bit_for_bit() {
        use fairnn_snapshot::{from_bytes, to_bytes, SnapshotKind};
        let (data, mut engine) = build(EngineConfig::default().with_seed(31).with_shards(3));
        let batch = mixed_batch(&data);
        // Warm the engine: batch counter advances, the cache fills, entries
        // get swapped by fast-path draws.
        let _ = engine.run_batch(&batch);
        let _ = engine.run_batch(&batch);

        let bytes = to_bytes(SnapshotKind::QueryEngine, &engine);
        let mut restored: Engine = from_bytes(SnapshotKind::QueryEngine, &bytes).expect("load");
        assert_eq!(restored.cache_stats(), engine.cache_stats());

        // The restored engine must answer the *next* batches exactly like
        // the saved one — batch seeds, cache hits and swap states included.
        for _ in 0..2 {
            assert_eq!(restored.run_batch(&batch), engine.run_batch(&batch));
        }
    }
}
