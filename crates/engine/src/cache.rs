//! Result cache: the Theorem 5 (rank-swap) fast path for repeated queries.
//!
//! The first time the engine sees a query it runs the full two-level
//! pipeline and — as a by-product — knows the query's colliding near points.
//! Repeats of the *identical* query do not need the pipeline again: over a
//! fixed member list, `RankSwapSampler`'s Appendix A mechanism produces
//! uniform independent samples with one swap per draw. A [`CacheEntry`]
//! stores the members as a uniformly random permutation ("ranks" 0..m); a
//! draw returns the minimum-rank member (position 0) and then swaps its rank
//! with a uniformly random rank in `[0, m)` — the exact single Fisher–Yates
//! step of [`fairnn_core::RankSwapSampler`], restricted to the cached
//! neighborhood (where every rank range collapses to `[rank(x), m) = [0, m)`
//! because the returned member always holds rank 0). The paper's caveat
//! about interleaving different queries does not apply: each entry owns its
//! own permutation, so entries are independent of each other.
//!
//! The cache is exact-match only (the key is the query point itself) and is
//! invalidated wholesale on insert/delete, since an update may change any
//! neighborhood.

use fairnn_obs::LazyCounter;
use fairnn_space::PointId;
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Rank-swap cache lookups that found an entry. Together with the miss
/// counter this gives the live hit rate (the per-generation counters on
/// [`ResultCache::stats`] reset on every cache clear; these never do).
static CACHE_HITS: LazyCounter = LazyCounter::new(
    "engine_cache_hits_total",
    "rank-swap result cache lookups that found an entry",
);

/// Rank-swap cache lookups that fell through to the full pipeline.
static CACHE_MISSES: LazyCounter = LazyCounter::new(
    "engine_cache_misses_total",
    "rank-swap result cache lookups that fell through to the full pipeline",
);

/// The cached neighborhood of one query, stored as a uniformly random
/// permutation that is re-randomized rank-swap style after every draw.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    members: Vec<PointId>,
}

impl CacheEntry {
    /// Creates an entry over `members`, shuffling them into a uniform
    /// permutation (Fisher–Yates) so the first draw is already uniform.
    pub fn new<R: Rng + ?Sized>(mut members: Vec<PointId>, rng: &mut R) -> Self {
        for i in (1..members.len()).rev() {
            let j = rng.random_range(0..=i);
            members.swap(i, j);
        }
        Self { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the neighborhood is empty (the cached answer is `⊥`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Draws one uniform independent sample: return the minimum-rank member,
    /// then swap its rank with a uniform rank (the Theorem 5 step).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<PointId> {
        if self.members.is_empty() {
            return None;
        }
        let out = self.members[0];
        let j = rng.random_range(0..self.members.len());
        self.members.swap(0, j);
        Some(out)
    }
}

/// A bounded exact-match query → neighborhood cache with FIFO eviction.
#[derive(Debug)]
pub struct ResultCache<P> {
    capacity: usize,
    map: HashMap<P, CacheEntry>,
    order: VecDeque<P>,
    hits: u64,
    misses: u64,
}

impl<P: Hash + Eq + Clone> ResultCache<P> {
    /// Creates a cache holding at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the cache stores anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum number of entries the cache holds (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters since construction or the last [`clear`].
    ///
    /// [`clear`]: ResultCache::clear
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up the entry for `query`, counting a hit or miss.
    pub fn entry_mut(&mut self, query: &P) -> Option<&mut CacheEntry> {
        let entry = self.map.get_mut(query);
        match entry {
            Some(_) => {
                self.hits += 1;
                CACHE_HITS.inc();
            }
            None => {
                self.misses += 1;
                CACHE_MISSES.inc();
            }
        }
        entry
    }

    /// Removes and returns the entry for `query` (counting a hit or miss)
    /// so it can be mutated *outside* the cache lock — the engine's workers
    /// draw from taken entries concurrently instead of serializing on one
    /// mutex. The key keeps its place in the eviction order; pair every
    /// successful `take` with a [`ResultCache::restore`] before the next
    /// insert/evict cycle.
    pub fn take(&mut self, query: &P) -> Option<CacheEntry> {
        let entry = self.map.remove(query);
        match entry {
            Some(_) => {
                self.hits += 1;
                CACHE_HITS.inc();
            }
            None => {
                self.misses += 1;
                CACHE_MISSES.inc();
            }
        }
        entry
    }

    /// Puts back an entry removed with [`ResultCache::take`]. The key is
    /// still tracked in the eviction order, so restoring does not re-age or
    /// duplicate it.
    pub fn restore(&mut self, query: P, entry: CacheEntry) {
        self.map.insert(query, entry);
    }

    /// Inserts (or replaces) the entry for `query`, evicting the oldest
    /// entries beyond capacity. No-op when the cache is disabled.
    pub fn insert(&mut self, query: P, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(query.clone(), entry).is_none() {
            self.order.push_back(query);
        }
        while self.map.len() > self.capacity {
            let oldest = self.order.pop_front().expect("order tracks map");
            self.map.remove(&oldest);
        }
    }

    /// Drops every entry (called on index updates). Hit/miss counters reset
    /// too, so rates are per cache generation.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

impl fairnn_snapshot::Codec for CacheEntry {
    /// Persists the member permutation *as is*: the rank-swap state of the
    /// entry survives the round trip, so a restored engine continues the
    /// exact draw sequence the saved one would have produced.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.members.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            members: Vec::<PointId>::decode(dec)?,
        })
    }
}

impl<P: Hash + Eq + Clone + fairnn_snapshot::Codec> fairnn_snapshot::Codec for ResultCache<P> {
    /// Entries are written in FIFO (eviction) order, which both makes the
    /// encoding canonical and lets the decoder rebuild the eviction queue
    /// exactly.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.capacity as u64);
        enc.write_len(self.order.len());
        for key in &self.order {
            key.encode(enc);
            self.map
                .get(key)
                .expect("eviction order tracks the map")
                .encode(enc);
        }
        enc.write_u64(self.hits);
        enc.write_u64(self.misses);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let capacity = usize::decode(dec)?;
        let len = dec.read_len()?;
        if len > capacity {
            return Err(SnapshotError::Corrupt(format!(
                "result cache stores {len} entries over its capacity {capacity}"
            )));
        }
        let mut map = HashMap::with_capacity(len);
        let mut order = VecDeque::with_capacity(len);
        for _ in 0..len {
            let key = P::decode(dec)?;
            let entry = CacheEntry::decode(dec)?;
            if map.insert(key.clone(), entry).is_some() {
                return Err(SnapshotError::Corrupt(
                    "result cache stores a key twice".into(),
                ));
            }
            order.push_back(key);
        }
        Ok(Self {
            capacity,
            map,
            order,
            hits: dec.read_u64()?,
            misses: dec.read_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(n: u32) -> Vec<PointId> {
        (0..n).map(PointId).collect()
    }

    #[test]
    fn entry_samples_are_uniform_over_members() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut entry = CacheEntry::new(ids(8), &mut rng);
        assert_eq!(entry.len(), 8);
        let trials = 16_000;
        let mut counts = [0usize; 8];
        for _ in 0..trials {
            counts[entry.sample(&mut rng).unwrap().index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!(
                (rate - 1.0 / 8.0).abs() < 0.02,
                "member {i} rate {rate}, expected ~1/8"
            );
        }
    }

    #[test]
    fn first_draw_is_uniform_over_fresh_entries() {
        // The construction-time shuffle matters: without it the first draw
        // would always be the first member.
        let trials = 12_000;
        let mut counts = [0usize; 6];
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut entry = CacheEntry::new(ids(6), &mut rng);
            counts[entry.sample(&mut rng).unwrap().index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!(
                (rate - 1.0 / 6.0).abs() < 0.02,
                "member {i} first-draw rate {rate}"
            );
        }
    }

    #[test]
    fn empty_entry_answers_bottom() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut entry = CacheEntry::new(Vec::new(), &mut rng);
        assert!(entry.is_empty());
        assert_eq!(entry.sample(&mut rng), None);
    }

    #[test]
    fn cache_hits_misses_and_eviction() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cache: ResultCache<u32> = ResultCache::new(2);
        assert!(cache.enabled());
        assert!(cache.entry_mut(&1).is_none());
        cache.insert(1, CacheEntry::new(ids(3), &mut rng));
        cache.insert(2, CacheEntry::new(ids(3), &mut rng));
        assert!(cache.entry_mut(&1).is_some());
        cache.insert(3, CacheEntry::new(ids(3), &mut rng)); // evicts 1 (FIFO)
        assert_eq!(cache.len(), 2);
        assert!(cache.entry_mut(&1).is_none());
        assert!(cache.entry_mut(&3).is_some());
        assert_eq!(cache.stats(), (2, 2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn take_and_restore_preserve_eviction_order_and_count_hits() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut cache: ResultCache<u32> = ResultCache::new(2);
        cache.insert(1, CacheEntry::new(ids(3), &mut rng));
        cache.insert(2, CacheEntry::new(ids(3), &mut rng));
        let taken = cache.take(&1).expect("present");
        assert!(cache.take(&1).is_none(), "taken entry is out of the map");
        cache.restore(1, taken);
        assert_eq!(cache.stats(), (1, 1));
        // Key 1 kept its (oldest) slot in the FIFO order across take/restore.
        cache.insert(3, CacheEntry::new(ids(3), &mut rng));
        assert!(cache.entry_mut(&1).is_none(), "1 must still evict first");
        assert!(cache.entry_mut(&2).is_some());
        assert!(cache.entry_mut(&3).is_some());
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cache: ResultCache<u32> = ResultCache::new(0);
        assert!(!cache.enabled());
        cache.insert(1, CacheEntry::new(ids(3), &mut rng));
        assert!(cache.is_empty());
    }

    #[test]
    fn reinserting_a_key_does_not_duplicate_eviction_order() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cache: ResultCache<u32> = ResultCache::new(2);
        cache.insert(1, CacheEntry::new(ids(1), &mut rng));
        cache.insert(1, CacheEntry::new(ids(2), &mut rng));
        cache.insert(2, CacheEntry::new(ids(1), &mut rng));
        cache.insert(3, CacheEntry::new(ids(1), &mut rng)); // must evict 1, then fit
        assert_eq!(cache.len(), 2);
        assert!(cache.entry_mut(&1).is_none());
        assert!(cache.entry_mut(&2).is_some());
        assert!(cache.entry_mut(&3).is_some());
    }
}
