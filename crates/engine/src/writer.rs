//! The write half of the generational engine: WAL-durable commits that
//! publish immutable generations.
//!
//! One [`EngineWriter`] owns an engine directory holding exactly two
//! files: a checkpoint (`checkpoint.snap`, a [`Checkpoint`] in the
//! sectioned v3 container format) and a write-ahead log (`engine.wal`).
//! The commit protocol for a [`WriteBatch`]:
//!
//! 1. **validate** — every `Delete` must reference a live id in the
//!    staging index; an invalid batch is rejected whole, before anything
//!    touches the log;
//! 2. **log** — the batch is encoded (prefixed with its sequence number)
//!    and appended to the WAL as one checksummed, fsynced record;
//! 3. **apply** — the ops run against the private staging index (copy-on-
//!    write at shard granularity: only touched shards are copied), which
//!    is then re-frozen;
//! 4. **publish** — a clone of the staging index (an `Arc`-pointer copy
//!    per shard plus one routing-table memcpy) becomes the next
//!    [`Generation`], swapped into the shared cell for readers.
//!
//! Crash recovery ([`EngineWriter::open`]) loads the checkpoint and
//! replays the WAL tail through the *same* `apply_batch` the live path
//! uses, so a recovered index is bit-identical to the pre-crash one — a
//! property the integration tests assert by re-encoding both sides. A
//! torn final record (the crash happened mid-append) is detected by
//! checksum, dropped, and physically truncated away on resume.
//!
//! [`EngineWriter::checkpoint`] cuts a fresh checkpoint *incrementally*:
//! shard sections whose `Arc` is unchanged since the last checkpoint are
//! reused byte-for-byte instead of re-encoded, so checkpoint cost scales
//! with the number of shards touched since the last cut, not index size.

use crate::api_types::{CommitReceipt, EngineError, WriteBatch, WriteOp};
use crate::generation::{Generation, Shared};
use crate::reader::EngineReader;
use crate::shard::Shard;
use crate::sharded::{ShardedIndex, ShardedIndexConfig};
use fairnn_core::predicate::Nearness;
use fairnn_lsh::{ConcatenatedHasher, HasherBankCodec, LshFamily, LshHasher, LshParams};
use fairnn_obs::{LazyHistogram, Timer};
use fairnn_snapshot::{
    image_from_sections, read_wal, save_image, Codec, Decoder, Encoder, SnapshotError,
    SnapshotKind, WalWriter,
};
use fairnn_space::{Dataset, PointId};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Wall time of one generation publish: staging apply + freeze + clone +
/// shared-cell swap (the WAL fsync is `snapshot_wal_fsync_ns`).
static PUBLISH_NS: LazyHistogram = LazyHistogram::new(
    "engine_generation_publish_ns",
    "apply+freeze+publish time of one commit in nanoseconds",
);

/// File name of the checkpoint inside an engine directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";
/// File name of the write-ahead log inside an engine directory.
pub const WAL_FILE: &str = "engine.wal";

/// A durable cut of the engine: the WAL sequence number it was taken at
/// plus the sharded index state with every commit `< seq` applied.
///
/// Replay applies exactly the WAL records with sequence number `>= seq`
/// (older records may legitimately remain in the log if the process died
/// between checkpoint save and log reset — they are skipped).
#[derive(Debug, Clone)]
pub struct Checkpoint<P, H, N> {
    /// First WAL sequence number *not* contained in `index`.
    pub seq: u64,
    /// The index state at the cut.
    pub index: ShardedIndex<P, H, N>,
}

impl<P, H, N> Codec for Checkpoint<P, H, N>
where
    P: Codec + Send + Sync,
    H: HasherBankCodec + Send + Sync,
    N: Codec + Send + Sync + Nearness<P>,
{
    fn encode(&self, enc: &mut Encoder) {
        enc.write_u64(self.seq);
        self.index.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, SnapshotError> {
        let seq = dec.read_u64()?;
        let index = ShardedIndex::decode(dec)?;
        Ok(Self { seq, index })
    }

    /// The sequence number gets its own leading section, so the index's
    /// shard sections keep their 64-byte image alignment — and so the
    /// incremental checkpointer can reuse unchanged shard sections
    /// byte-for-byte.
    fn encode_sections(&self) -> Vec<Vec<u8>> {
        let mut head = Encoder::new();
        head.write_u64(self.seq);
        let mut sections = vec![head.into_bytes()];
        sections.extend(self.index.encode_sections());
        sections
    }

    fn decode_sections(sections: &[fairnn_snapshot::Section<'_>]) -> Result<Self, SnapshotError> {
        let Some((head, index_sections)) = sections.split_first() else {
            return Err(SnapshotError::Corrupt(
                "checkpoint snapshot has no head section".into(),
            ));
        };
        let mut dec = head.decoder();
        let seq = dec.read_u64()?;
        dec.finish()?;
        let index = ShardedIndex::decode_sections(index_sections)?;
        Ok(Self { seq, index })
    }
}

/// The single writer of a generational engine.
///
/// Owns the staging index, the engine directory (checkpoint + WAL) and
/// the shared generation cell. All mutation flows through
/// [`EngineWriter::commit`]; readers are handed out by
/// [`EngineWriter::reader`] and never block the writer (nor vice versa).
#[derive(Debug)]
pub struct EngineWriter<P, H, N> {
    shared: Arc<Shared<P, H, N>>,
    /// The writer's private next-generation state; published by cloning.
    staging: ShardedIndex<P, H, N>,
    /// Number of the currently published generation (== `next_seq`).
    generation: u64,
    /// Sequence number the next commit's WAL record will carry.
    next_seq: u64,
    wal: WalWriter,
    dir: PathBuf,
    /// Shard `Arc`s as of the last checkpoint — [`Arc::ptr_eq`] against
    /// the staging shards detects which sections must be re-encoded.
    last_ckpt_shards: Vec<Arc<Shard<P, H, N>>>,
    /// The encoded shard sections of the last checkpoint, index-aligned
    /// with `last_ckpt_shards`.
    last_ckpt_sections: Vec<Vec<u8>>,
}

/// Applies a batch to an index and re-freezes it, returning the global
/// ids assigned to the batch's `Insert` ops in op order.
///
/// This is the **one** mutation path of the engine: the live commit and
/// WAL replay both call it, which is what makes a replayed index
/// bit-identical to the live one.
pub(crate) fn apply_batch<P, H, N>(
    index: &mut ShardedIndex<P, H, N>,
    batch: &WriteBatch<P>,
) -> Vec<PointId>
where
    P: Clone,
    H: LshHasher<P> + Clone,
    N: Nearness<P> + Clone,
{
    let mut assigned = Vec::new();
    for op in batch.ops() {
        match op {
            WriteOp::Insert(point) => assigned.push(index.insert(point.clone())),
            WriteOp::Delete(id) => {
                index.delete(*id);
            }
            WriteOp::Compact => index.compact(),
        }
    }
    index.freeze();
    assigned
}

impl<P, BH, N> EngineWriter<P, ConcatenatedHasher<BH>, N>
where
    P: Codec + Clone + Send + Sync,
    BH: LshHasher<P> + Send + Sync,
    ConcatenatedHasher<BH>: HasherBankCodec + LshHasher<P> + Clone + Send + Sync,
    N: Codec + Nearness<P> + Clone + Send + Sync,
{
    /// Builds the generation-0 index from a dataset and makes the engine
    /// directory durable: checkpoint at `seq = 0`, empty WAL, generation 0
    /// published. Fails without side effects on the shared cell if the
    /// directory cannot be written.
    pub fn bootstrap<F>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        config: ShardedIndexConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, EngineError>
    where
        F: LshFamily<P, Hasher = BH> + Sync,
    {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(SnapshotError::Io)?;
        let index = ShardedIndex::build(family, params, dataset, near, config);
        debug_assert!(index.is_frozen(), "a fresh build is fully frozen");

        // Durable before visible: checkpoint first, then the WAL, then
        // publish generation 0.
        let checkpoint = Checkpoint {
            seq: 0,
            index: index.clone(),
        };
        let sections = checkpoint.encode_sections();
        let image = image_from_sections(SnapshotKind::Checkpoint, sections.clone());
        save_image(&image, dir.join(CHECKPOINT_FILE))?;
        let wal = WalWriter::create(dir.join(WAL_FILE))?;

        let shared = Arc::new(Shared::new(Arc::new(Generation::now(0, index.clone()))));
        // Prime the incremental-checkpoint cache from the sections just
        // written: sections[0] is the checkpoint head, sections[1] the
        // index head, shard sections follow.
        let last_ckpt_sections = sections.into_iter().skip(2).collect();
        Ok(Self {
            shared,
            last_ckpt_shards: index.shards().to_vec(),
            last_ckpt_sections,
            staging: index,
            generation: 0,
            next_seq: 0,
            wal,
            dir,
        })
    }
}

impl<P, H, N> EngineWriter<P, H, N>
where
    P: Codec + Clone + Send + Sync,
    H: HasherBankCodec + LshHasher<P> + Clone + Send + Sync,
    N: Codec + Nearness<P> + Clone + Send + Sync,
{
    /// Recovers an engine from its directory: loads the checkpoint,
    /// replays the WAL tail through `apply_batch`, truncates any torn
    /// final record, and publishes the recovered state.
    ///
    /// Records older than the checkpoint (left behind by a crash between
    /// checkpoint save and WAL reset) are skipped; a gap in the sequence
    /// numbers is corruption and fails the recovery.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, EngineError> {
        let dir = dir.as_ref().to_path_buf();
        let checkpoint: Checkpoint<P, H, N> =
            fairnn_snapshot::load(SnapshotKind::Checkpoint, dir.join(CHECKPOINT_FILE))?;
        let Checkpoint { seq, mut index } = checkpoint;

        let replay = read_wal(dir.join(WAL_FILE))?;
        let mut next_seq = seq;
        for record in &replay.records {
            let mut dec = Decoder::new(record);
            let record_seq = dec.read_u64()?;
            let batch = WriteBatch::<P>::decode(&mut dec)?;
            dec.finish()?;
            if record_seq < seq {
                continue; // applied before the checkpoint was cut
            }
            if record_seq != next_seq {
                return Err(EngineError::Snapshot(SnapshotError::Corrupt(format!(
                    "WAL skips from sequence {next_seq} to {record_seq}"
                ))));
            }
            apply_batch(&mut index, &batch);
            next_seq += 1;
        }
        let wal = WalWriter::resume(dir.join(WAL_FILE), replay.valid_len)?;

        let shared = Arc::new(Shared::new(Arc::new(Generation::now(
            next_seq,
            index.clone(),
        ))));
        Ok(Self {
            shared,
            staging: index,
            generation: next_seq,
            next_seq,
            wal,
            dir,
            // Left empty: the first checkpoint after a recovery re-encodes
            // every shard (the on-disk sections were not read back).
            last_ckpt_shards: Vec::new(),
            last_ckpt_sections: Vec::new(),
        })
    }

    /// Commits a batch: validates it, appends it to the WAL (fsynced),
    /// applies it to the staging index and publishes the result as the
    /// next generation. Atomic from every reader's point of view — a pin
    /// taken at any moment sees either none of the batch or all of it.
    ///
    /// `Delete` ops must reference ids live in the *current* state;
    /// deleting an id inserted earlier in the same batch is rejected
    /// (split it into two commits). A rejected batch leaves the log and
    /// the published generation untouched.
    pub fn commit(&mut self, batch: WriteBatch<P>) -> Result<CommitReceipt, EngineError> {
        for op in batch.ops() {
            if let WriteOp::Delete(id) = op {
                if !self.staging.contains(*id) {
                    return Err(EngineError::UnknownId(*id));
                }
            }
        }

        let seq = self.next_seq;
        let mut enc = Encoder::new();
        enc.write_u64(seq);
        batch.encode(&mut enc);
        let wal_bytes = self.wal.append(&enc.into_bytes())?;

        let timer = Timer::start(&PUBLISH_NS);
        let assigned = apply_batch(&mut self.staging, &batch);
        self.next_seq = seq + 1;
        self.generation = self.next_seq;
        self.shared.publish(Arc::new(Generation::now(
            self.generation,
            self.staging.clone(),
        )));
        drop(timer);

        Ok(CommitReceipt {
            seq,
            generation: self.generation,
            assigned,
            wal_bytes,
        })
    }

    /// Cuts a durable checkpoint at the current state and resets the WAL.
    ///
    /// Incremental: shard sections unchanged since the last checkpoint
    /// (same `Arc`, detected by [`Arc::ptr_eq`]) are written back from the
    /// cached bytes instead of re-encoded. Crash-safe at every step — the
    /// checkpoint replaces the old one atomically (write-to-temp +
    /// rename), and until the WAL reset lands, replay simply skips the
    /// pre-checkpoint records.
    pub fn checkpoint(&mut self) -> Result<(), EngineError> {
        let seq = self.next_seq;
        let shards = self.staging.shards();

        let mut head = Encoder::new();
        head.write_u64(seq);
        let mut sections = Vec::with_capacity(shards.len() + 2);
        sections.push(head.into_bytes());
        sections.push(self.staging.head_section());
        for (s, shard) in shards.iter().enumerate() {
            let cached = self
                .last_ckpt_shards
                .get(s)
                .filter(|old| Arc::ptr_eq(old, shard))
                .and_then(|_| self.last_ckpt_sections.get(s));
            sections.push(match cached {
                Some(bytes) => bytes.clone(),
                None => self.staging.shard_section(s),
            });
        }

        self.last_ckpt_shards = shards.to_vec();
        self.last_ckpt_sections = sections[2..].to_vec();

        let image = image_from_sections(SnapshotKind::Checkpoint, sections);
        save_image(&image, self.dir.join(CHECKPOINT_FILE))?;
        // Checkpoint durable — every logged record is now `< seq`, so the
        // log can restart empty. A crash before this create leaves stale
        // records that replay skips.
        self.wal = WalWriter::create(self.dir.join(WAL_FILE))?;
        Ok(())
    }
}

impl<P, H, N> EngineWriter<P, H, N> {
    /// A new reader handle onto this engine's published generations.
    pub fn reader(&self) -> EngineReader<P, H, N> {
        EngineReader::new(Arc::clone(&self.shared))
    }

    /// Number of the currently published generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sequence number the next commit will log.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total bytes currently in the write-ahead log (header included).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// The engine directory this writer owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read-only view of the staging index (what the next generation will
    /// contain; equal to the published generation between commits).
    pub fn staging(&self) -> &ShardedIndex<P, H, N> {
        &self.staging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api_types::QueryRequest;
    use fairnn_core::SimilarityAtLeast;
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Dataset, Jaccard, SparseSet};

    type Writer = EngineWriter<
        SparseSet,
        ConcatenatedHasher<fairnn_lsh::MinHasher>,
        SimilarityAtLeast<Jaccard>,
    >;

    fn clustered_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..10u32 {
            let mut items: Vec<u32> = (0..25).collect();
            items.push(100 + j);
            items.push(200 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..20u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 15).collect(),
            ));
        }
        Dataset::new(sets)
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fairnn-writer-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bootstrap(tag: &str, seed: u64) -> (Dataset<SparseSet>, Writer, PathBuf) {
        let data = clustered_dataset();
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let dir = scratch_dir(tag);
        let config = ShardedIndexConfig::with_shards(3).seeded(seed);
        let writer =
            Writer::bootstrap(&MinHash, params, &data, near, config, &dir).expect("bootstrap");
        (data, writer, dir)
    }

    fn twin(data: &Dataset<SparseSet>, extra: u32) -> SparseSet {
        let mut items: Vec<u32> = (0..25).collect();
        items.push(100);
        items.push(200);
        items.push(extra);
        let _ = data;
        SparseSet::from_items(items)
    }

    #[test]
    fn budgeted_batches_match_unbudgeted_and_fail_fast_when_spent() {
        use crate::api_types::{DeadlineBudget, EngineError};

        let (data, writer, dir) = bootstrap("budget", 11);
        let reader = writer.reader();
        let pin = reader.pin();
        let query = data.point(PointId(0)).clone();
        let request = QueryRequest::new(vec![query.clone(), query]).with_batch(4);

        // The budget check sits between positions and must not perturb
        // the per-position RNG streams: a generous budget returns the
        // bit-identical unbudgeted response.
        let free = pin.run_batch(&request);
        let budgeted = pin
            .run_batch_within(&request, &DeadlineBudget::from_now_ms(1 << 40))
            .expect("generous budget completes");
        assert_eq!(budgeted, free);

        // An already-spent budget fails before answering anything.
        let spent = pin.run_batch_within(&request, &DeadlineBudget::from_now_ns(0));
        assert!(matches!(
            spent,
            Err(EngineError::DeadlineExceeded {
                completed: 0,
                total: 2
            })
        ));

        // Publish stamps are monotonic-clock readings; age never panics.
        assert!(pin.published_at_ns() <= fairnn_obs::monotonic_ns());
        let _age = pin.generation_age_ns();
        drop(pin);
        drop(writer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commits_publish_and_reach_queries_while_pins_hold_the_past() {
        let (data, mut writer, dir) = bootstrap("publish", 8);
        let reader = writer.reader();
        let query = data.point(PointId(0)).clone();

        let old_pin = reader.pin();
        assert_eq!(old_pin.generation(), 0);
        let before = old_pin.run_batch(&QueryRequest::new(vec![query.clone()]));

        let receipt = writer
            .commit(WriteBatch::new().insert(twin(&data, 999)))
            .expect("commit");
        assert_eq!(receipt.seq, 0);
        assert_eq!(receipt.generation, 1);
        assert_eq!(receipt.assigned, vec![PointId::from_index(data.len())]);
        let id = receipt.assigned[0];

        // The pinned epoch still serves generation 0, bit for bit.
        let after = old_pin.run_batch(&QueryRequest::new(vec![query.clone()]));
        assert_eq!(before, after);
        assert!(!old_pin.index().contains(id));

        // A fresh pin sees the twin, and repeated batches eventually draw it.
        let pin = reader.pin();
        assert_eq!(pin.generation(), 1);
        assert!(pin.index().contains(id));
        let seen = (0..40u64).any(|batch| {
            pin.run_batch(&QueryRequest::new(vec![query.clone(); 50]).with_batch(batch))
                .answers
                .iter()
                .any(|a| a.id == Some(id))
        });
        assert!(seen, "inserted twin never sampled from the new generation");

        // Delete it again: gone from the next generation.
        writer
            .commit(WriteBatch::new().delete(id))
            .expect("delete commit");
        let pin = reader.pin();
        assert_eq!(pin.generation(), 2);
        assert!(!pin.index().contains(id));
        let response = pin.run_batch(&QueryRequest::new(vec![query.clone(); 50]).with_batch(7));
        assert!(response.answers.iter().all(|a| a.id != Some(id)));

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unknown_delete_is_rejected_before_logging() {
        let (data, mut writer, dir) = bootstrap("reject", 9);
        let wal_before = writer.wal_bytes();
        let bogus = PointId::from_index(data.len() + 17);
        let err = writer
            .commit(WriteBatch::new().insert(twin(&data, 777)).delete(bogus))
            .expect_err("unknown id must be rejected");
        assert!(matches!(err, EngineError::UnknownId(id) if id == bogus));
        assert_eq!(writer.wal_bytes(), wal_before, "rejected batch was logged");
        assert_eq!(writer.generation(), 0, "rejected batch was published");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reopened_engine_matches_the_live_one_bit_for_bit() {
        let (data, mut writer, dir) = bootstrap("reopen", 10);
        writer
            .commit(
                WriteBatch::new()
                    .insert(twin(&data, 300))
                    .insert(twin(&data, 301))
                    .delete(PointId(3)),
            )
            .expect("first commit");
        writer
            .commit(WriteBatch::new().delete(PointId(5)).compact())
            .expect("second commit");

        let reopened = Writer::open(&dir).expect("open");
        assert_eq!(reopened.generation(), writer.generation());
        assert_eq!(reopened.next_seq(), writer.next_seq());
        let live = fairnn_snapshot::to_bytes(SnapshotKind::ShardedIndex, writer.staging());
        let replayed = fairnn_snapshot::to_bytes(SnapshotKind::ShardedIndex, reopened.staging());
        assert_eq!(live, replayed, "replayed state differs from live state");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn incremental_checkpoint_equals_a_full_reencode() {
        let (data, mut writer, dir) = bootstrap("ckpt", 11);
        writer
            .commit(WriteBatch::new().insert(twin(&data, 400)))
            .expect("commit");
        writer.checkpoint().expect("first checkpoint");
        assert_eq!(writer.wal_bytes(), fairnn_snapshot::WAL_HEADER_LEN as u64);

        // Touch (at most) one shard, then checkpoint incrementally.
        writer
            .commit(WriteBatch::new().insert(twin(&data, 401)))
            .expect("commit");
        writer.checkpoint().expect("incremental checkpoint");

        let incremental = std::fs::read(dir.join(CHECKPOINT_FILE)).expect("read checkpoint");
        let full = fairnn_snapshot::to_bytes(
            SnapshotKind::Checkpoint,
            &Checkpoint {
                seq: writer.next_seq(),
                index: writer.staging().clone(),
            },
        );
        assert_eq!(incremental, full, "cached sections drifted from re-encode");

        // And the checkpoint alone (empty WAL) recovers the same state.
        let reopened = Writer::open(&dir).expect("open");
        assert_eq!(
            fairnn_snapshot::to_bytes(SnapshotKind::ShardedIndex, reopened.staging()),
            fairnn_snapshot::to_bytes(SnapshotKind::ShardedIndex, writer.staging()),
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
