//! Deterministic RNG stream splitting.
//!
//! The engine's reproducibility contract is that a root seed fully
//! determines every answer, *regardless of shard count scheduling or thread
//! count*. That requires never sharing one RNG between concurrent units of
//! work; instead every unit (a shard build, a batch, a query within a
//! batch) gets its own stream derived from the root seed by hashing the
//! stream id through SplitMix64 — the same mixer the sketches use for
//! seeding. SplitMix64 is a bijection of `u64`, so for a fixed root
//! distinct stream ids can never collide.

use fairnn_sketch::splitmix64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed for stream `stream` of the generator rooted at
/// `root`. Injective in `stream` for any fixed `root`.
pub fn split_seed(root: u64, stream: u64) -> u64 {
    splitmix64(root ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// A fresh deterministic generator for stream `stream` of `root`.
pub fn stream_rng(root: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(split_seed(root, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = stream_rng(7, 0);
        let mut a2 = stream_rng(7, 0);
        let mut b = stream_rng(7, 1);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), a2.random::<u64>());
        }
        assert_ne!(stream_rng(7, 0).random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn split_is_injective_over_a_window() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(seen.insert(split_seed(99, stream)), "collision at {stream}");
        }
    }

    #[test]
    fn nested_splits_do_not_alias_siblings() {
        // (root -> batch -> query) must not collide with (root -> batch')
        // for the small ids the engine actually uses.
        let root = 0xFEED;
        let mut seen = std::collections::HashSet::new();
        for batch in 0..64u64 {
            let bs = split_seed(root, batch);
            for query in 0..64u64 {
                assert!(seen.insert(split_seed(bs, query)));
            }
        }
    }
}
