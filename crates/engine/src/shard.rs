//! One shard: a slice of the dataset with its own LSH tables and mergeable
//! per-bucket sketches.
//!
//! A shard owns a subset of the points, indexes them in shard-local LSH
//! tables built from the *shared* [`LshParams`] (each shard draws its own
//! hashers from the family, from its own deterministic RNG stream), and
//! attaches a KMV ([`BottomKSketch`]) count-distinct sketch to every large
//! bucket. All sketches — across buckets, tables *and shards* — share one
//! seed and `k`, so any group of them can be merged: the per-shard colliding
//! sketches combine into a global neighborhood-size estimate exactly as the
//! Section 4 construction merges per-bucket sketches, which is what makes
//! the structure shardable in the first place.
//!
//! Updates are incremental: inserts append to the local tables and feed the
//! bucket sketches; deletes tombstone the point and remove it from the
//! bucket lists. A KMV sketch cannot *unlearn* an element, so after deletes
//! the bucket sketches over-estimate — harmless for the rejection-corrected
//! sampler (see `sharded.rs`), and bounded by compaction: once tombstones
//! exceed a configurable fraction of the live points the shard rebuilds
//! itself locally (same hashers, compacted ids, fresh sketches). No update
//! ever requires touching another shard, let alone a global rebuild.

use fairnn_core::predicate::{build_screen_rows, Nearness};
use fairnn_core::QueryStats;
use fairnn_lsh::{ConcatenatedHasher, LshFamily, LshHasher, LshIndex, LshParams, QueryScratch};
use fairnn_sketch::{BottomKSketch, CardinalityEstimator};
use fairnn_space::{PointId, ScreenRow};
use rand::Rng;
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// Per-worker-thread query scratch. Shard query methods take `&self`
    /// (they run under the engine's shared read lock from many threads), so
    /// the reusable buffers — batched bucket keys and the epoch-stamped
    /// visited set — live in thread-local storage rather than in the shard.
    static SHARD_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// Tuning knobs of a [`Shard`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// `k` of the per-bucket KMV sketches (exact below `k` distinct ids,
    /// ~`1/√k` relative error above).
    pub sketch_k: usize,
    /// Buckets with at least this many entries pre-compute their sketch;
    /// smaller buckets are folded into estimates by direct insertion at
    /// query time (the space-saving rule of Section 4).
    pub sketch_threshold: usize,
    /// The shard compacts itself when tombstones exceed this fraction of
    /// the live point count.
    pub rebuild_fraction: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            sketch_k: 64,
            sketch_threshold: 32,
            rebuild_fraction: 0.5,
        }
    }
}

impl fairnn_snapshot::Codec for ShardConfig {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.sketch_k as u64);
        enc.write_u64(self.sketch_threshold as u64);
        enc.write_f64(self.rebuild_fraction);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let sketch_k = usize::decode(dec)?;
        let sketch_threshold = usize::decode(dec)?;
        let rebuild_fraction = dec.read_f64()?;
        if sketch_k < 2 {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "shard sketch_k must be at least 2, found {sketch_k}"
            )));
        }
        Ok(Self {
            sketch_k,
            sketch_threshold,
            rebuild_fraction,
        })
    }
}

/// A shard of the sharded index. Local point ids are dense `0..points.len()`
/// (with tombstoned holes between compactions); every public method speaks
/// global [`PointId`]s.
#[derive(Debug, Clone)]
pub struct Shard<P, H, N> {
    index: LshIndex<H>,
    points: Vec<P>,
    global_ids: Vec<PointId>,
    alive: Vec<bool>,
    local_of: HashMap<PointId, u32>,
    live: usize,
    tombstones: usize,
    near: N,
    /// Admissible per-point pre-screen rows of `near`, parallel to `points`
    /// (tombstoned slots keep a stale row that is never consulted). Derived
    /// state: rebuilt on load and after compaction, extended on insert.
    screens: Option<Vec<ScreenRow>>,
    /// Per-table map from bucket key to the bucket's sketch (large buckets
    /// only). Sketch elements are **global** point ids so sketches from
    /// different shards merge into estimates over the whole dataset.
    sketches: Vec<HashMap<u64, BottomKSketch>>,
    sketch_seed: u64,
    config: ShardConfig,
}

impl<P: Clone + Sync, BH, N> Shard<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
    N: Nearness<P>,
{
    /// Builds a shard over `points` (with their global ids) from the shared
    /// parameters; the hashers are drawn from `rng`, which the sharded index
    /// derives from its root seed per shard.
    #[allow(clippy::too_many_arguments)]
    pub fn build<F, R>(
        family: &F,
        params: LshParams,
        points: Vec<P>,
        global_ids: Vec<PointId>,
        near: N,
        sketch_seed: u64,
        config: ShardConfig,
        rng: &mut R,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH>,
        R: Rng + ?Sized,
    {
        assert_eq!(points.len(), global_ids.len());
        let index = LshIndex::build(family, params, &points, rng);
        let screens = build_screen_rows(&near, &points);
        let mut shard = Self {
            index,
            alive: vec![true; points.len()],
            local_of: global_ids
                .iter()
                .enumerate()
                .map(|(i, &g)| (g, i as u32))
                .collect(),
            live: points.len(),
            tombstones: 0,
            near,
            screens,
            sketches: Vec::new(),
            sketch_seed,
            config,
            points,
            global_ids,
        };
        shard.rebuild_sketches();
        shard.debug_assert_occupancy_invariants();
        shard
    }
}

impl<P, H, N> Shard<P, H, N> {
    /// Number of live points.
    pub fn live_points(&self) -> usize {
        self.live
    }

    /// Debug-only check of the occupancy invariants every mutation must
    /// preserve: the parallel point arrays agree in length, `live` and
    /// `tombstones` partition them, and `local_of` maps exactly the live
    /// points back to their dense local ids. Compiled away in release
    /// builds; `build`, `insert`, `delete`, `compact` and the snapshot
    /// decoder all end with this check so a broken invariant fails at the
    /// mutation site rather than at some later query.
    fn debug_assert_occupancy_invariants(&self) {
        if cfg!(debug_assertions) {
            debug_assert_eq!(self.global_ids.len(), self.points.len());
            debug_assert_eq!(self.alive.len(), self.points.len());
            debug_assert_eq!(
                self.live + self.tombstones,
                self.points.len(),
                "live + tombstones must partition the point array"
            );
            debug_assert_eq!(self.live, self.alive.iter().filter(|&&a| a).count());
            debug_assert_eq!(
                self.local_of.len(),
                self.live,
                "local_of must hold exactly the live points"
            );
            for (l, &global) in self.global_ids.iter().enumerate() {
                if self.alive[l] {
                    debug_assert_eq!(
                        self.local_of.get(&global).copied(),
                        Some(l as u32),
                        "live global id {global} must map to its dense local slot"
                    );
                }
            }
        }
    }

    /// Number of tombstoned points awaiting compaction.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Number of LSH tables.
    pub fn num_tables(&self) -> usize {
        self.index.num_tables()
    }

    /// Number of buckets carrying a pre-computed sketch.
    pub fn sketched_buckets(&self) -> usize {
        self.sketches.iter().map(HashMap::len).sum()
    }

    /// Whether this shard owns the (live) point with the given global id.
    pub fn contains(&self, global: PointId) -> bool {
        self.local_of.contains_key(&global)
    }

    /// An empty sketch compatible with every bucket sketch of every shard
    /// sharing this seed and configuration (the merge accumulator).
    pub fn empty_sketch(&self) -> BottomKSketch {
        BottomKSketch::new(self.sketch_seed, self.config.sketch_k)
    }

    /// Freezes the shard's tables back into their read-optimized CSR form
    /// (see [`fairnn_lsh::LshTable::freeze`]). Builds and compactions
    /// freeze automatically; the engine writer calls this on staged
    /// shards after an update burst so a published generation is always
    /// fully frozen (crate-private — queries never observe a thaw).
    pub(crate) fn freeze(&mut self) {
        self.index.freeze();
    }

    /// Whether every table of this shard is in its frozen form.
    pub fn is_frozen(&self) -> bool {
        self.index.is_frozen()
    }

    /// Rebuilds the per-bucket sketches from the current tables (called at
    /// construction and after compaction, when buckets contain live points
    /// only). Tables are disjoint work items, so their sketch maps build
    /// concurrently on the build workers; sketch contents depend only on
    /// bucket contents, so the result is thread-count independent.
    fn rebuild_sketches(&mut self) {
        let threshold = self.config.sketch_threshold;
        let sketch_seed = self.sketch_seed;
        let sketch_k = self.config.sketch_k;
        let tables = self.index.tables();
        let global_ids = &self.global_ids;
        let sketches = fairnn_parallel::map_indexed(tables.len(), |t| {
            tables[t]
                .buckets()
                .filter(|(_, ids)| ids.len() >= threshold)
                .map(|(key, ids)| {
                    let mut sketch = BottomKSketch::new(sketch_seed, sketch_k);
                    for &lid in ids {
                        sketch.insert(global_ids[lid.index()].0 as u64);
                    }
                    (key, sketch)
                })
                .collect()
        });
        self.sketches = sketches;
    }
}

impl<P, H, N> Shard<P, H, N>
where
    H: LshHasher<P>,
{
    /// Writes the query's per-table bucket keys for *this shard's* hashers
    /// into `keys` — one batched `hash_all` pass over all `K × L` rows.
    /// The two-level sampler computes these once per (query, shard) and
    /// feeds them to both the sketch merge and the near-point collection.
    pub fn query_keys_into(&self, query: &P, keys: &mut Vec<u64>) {
        self.index.query_keys_into(query, keys);
    }

    /// Merges the sketches of the buckets `query` collides with into `acc`.
    /// Small (unsketched) buckets are folded in by direct insertion, which
    /// keeps their contribution exact. The query is hashed once (all rows in
    /// one batched pass into the thread-local scratch).
    pub fn merge_colliding_into(&self, query: &P, acc: &mut BottomKSketch, stats: &mut QueryStats) {
        SHARD_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.index.query_keys_into(query, &mut scratch.keys);
            self.merge_colliding_with_keys(&scratch.keys, acc, stats);
        });
    }

    /// Keys-taking form of [`Shard::merge_colliding_into`] for callers that
    /// already hold this shard's bucket keys of the query.
    pub fn merge_colliding_with_keys(
        &self,
        keys: &[u64],
        acc: &mut BottomKSketch,
        stats: &mut QueryStats,
    ) {
        for (i, &key) in keys.iter().enumerate() {
            stats.buckets_inspected += 1;
            if let Some(sketch) = self.sketches[i].get(&key) {
                debug_assert!(acc.mergeable_with(sketch));
                acc.merge(sketch);
            } else {
                for &lid in self.index.table(i).bucket(key) {
                    if self.alive[lid.index()] {
                        acc.insert(self.global_ids[lid.index()].0 as u64);
                    }
                }
            }
        }
    }

    /// Estimated number of distinct points of this shard colliding with
    /// `query` (an upper-bias estimate after deletes, see the module docs).
    pub fn estimate_colliding(&self, query: &P, stats: &mut QueryStats) -> f64 {
        let mut acc = self.empty_sketch();
        self.merge_colliding_into(query, &mut acc, stats);
        acc.estimate()
    }
}

impl<P, H, N> Shard<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// The distinct live near points of this shard colliding with `query`,
    /// as global ids (the set the two-level sampler samples within). One
    /// batched hash pass per call; deduplication uses the thread-local
    /// epoch-stamped visited buffer, so only the returned vector allocates.
    pub fn colliding_near_points(&self, query: &P, stats: &mut QueryStats) -> Vec<PointId> {
        // Take the keys buffer out of the thread-local scratch before the
        // keys-taking call re-borrows it for the visited set.
        let mut keys = SHARD_SCRATCH.with(|cell| std::mem::take(&mut cell.borrow_mut().keys));
        self.index.query_keys_into(query, &mut keys);
        let found = self.colliding_near_points_with_keys(query, &keys, stats);
        SHARD_SCRATCH.with(|cell| cell.borrow_mut().keys = keys);
        found
    }

    /// Keys-taking form of [`Shard::colliding_near_points`] for callers that
    /// already hold this shard's bucket keys of the query.
    pub fn colliding_near_points_with_keys(
        &self,
        query: &P,
        keys: &[u64],
        stats: &mut QueryStats,
    ) -> Vec<PointId> {
        let query_row = self
            .screens
            .as_ref()
            .and_then(|_| self.near.screen_row(query));
        SHARD_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.visited.reset(self.points.len());
            let mut found = Vec::new();
            for (i, &key) in keys.iter().enumerate() {
                stats.buckets_inspected += 1;
                let bucket = self.index.table(i).bucket(key);
                for (pos, &lid) in bucket.iter().enumerate() {
                    stats.entries_scanned += 1;
                    let l = lid.index();
                    if !self.alive[l] || !scratch.visited.insert(l) {
                        continue;
                    }
                    if let Some(&ahead) = bucket.get(pos + 1) {
                        fairnn_snapshot::prefetch_read(&self.points, ahead.index());
                    }
                    stats.distance_computations += 1;
                    if let (Some(rows), Some(qrow)) = (self.screens.as_ref(), query_row.as_ref()) {
                        if !self.near.may_be_near(qrow, &rows[l]) {
                            continue; // admissible screen: certainly not near
                        }
                    }
                    if self.near.is_near(query, &self.points[l]) {
                        found.push(self.global_ids[l]);
                    }
                }
            }
            found
        })
    }
}

impl<P: Clone, H, N> Shard<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Inserts a new point with the given global id: appends it to the
    /// local tables and feeds every affected bucket sketch (promoting
    /// buckets that cross the size threshold). Crate-private: mutations
    /// enter through the engine writer's `WriteBatch`.
    pub(crate) fn insert(&mut self, global: PointId, point: P) {
        assert!(
            !self.local_of.contains_key(&global),
            "global id {global} already present in shard"
        );
        let lid = self.points.len() as u32;
        self.points.push(point);
        self.global_ids.push(global);
        self.alive.push(true);
        self.local_of.insert(global, lid);
        self.live += 1;
        if self.screens.is_some() {
            match self.near.screen_row(&self.points[lid as usize]) {
                Some(row) => self.screens.as_mut().expect("checked above").push(row),
                None => self.screens = None,
            }
        }
        let assigned = self.index.insert_point(&self.points[lid as usize]);
        assert_eq!(assigned.index(), lid as usize, "local ids must stay dense");

        let keys = self.index.query_keys(&self.points[lid as usize]);
        for (i, key) in keys.into_iter().enumerate() {
            if let Some(sketch) = self.sketches[i].get_mut(&key) {
                sketch.insert(global.0 as u64);
            } else if self.index.table(i).bucket(key).len() >= self.config.sketch_threshold {
                // The bucket just crossed the threshold: sketch it. Bucket
                // lists contain live points only, so the sketch is fresh.
                let mut sketch = BottomKSketch::new(self.sketch_seed, self.config.sketch_k);
                for &l in self.index.table(i).bucket(key) {
                    sketch.insert(self.global_ids[l.index()].0 as u64);
                }
                self.sketches[i].insert(key, sketch);
            }
        }
        self.debug_assert_occupancy_invariants();
    }

    /// Deletes the point with the given global id. Returns `false` when the
    /// shard does not own it. May trigger a local compaction.
    /// Crate-private like [`Shard::insert`].
    pub(crate) fn delete(&mut self, global: PointId) -> bool {
        let Some(lid) = self.local_of.remove(&global) else {
            return false;
        };
        let l = lid as usize;
        self.alive[l] = false;
        self.live -= 1;
        self.tombstones += 1;
        self.index.remove_point(&self.points[l], PointId(lid));
        // Bucket sketches keep the deleted id (KMV cannot unlearn); the
        // resulting over-estimate is corrected by rejection at query time
        // and reclaimed below once it grows too large.
        if self.tombstones as f64 > self.config.rebuild_fraction * self.live.max(1) as f64 {
            self.compact();
        }
        self.debug_assert_occupancy_invariants();
        true
    }

    /// Drops tombstoned points, re-densifies local ids, compacts the tables
    /// and refreshes every bucket sketch. Strictly shard-local. The tables
    /// are compacted by [`fairnn_lsh::LshIndex::compact_retain`] — a pure
    /// per-table id remap of the already-recorded bucket keys, so no point
    /// is re-run through the hasher bank — which is bit-identical to the
    /// old rebuild-based compaction at a fraction of the cost.
    /// Compacts immediately regardless of the `rebuild_fraction` trigger
    /// (the writer's explicit `WriteOp::Compact` path).
    pub(crate) fn force_compact(&mut self) {
        self.compact();
    }

    fn compact(&mut self) {
        let mut new_id_of = vec![u32::MAX; self.points.len()];
        let mut points = Vec::with_capacity(self.live);
        let mut global_ids = Vec::with_capacity(self.live);
        for (i, point) in self.points.drain(..).enumerate() {
            if self.alive[i] {
                new_id_of[i] = points.len() as u32;
                points.push(point);
                global_ids.push(self.global_ids[i]);
            }
        }
        self.points = points;
        self.global_ids = global_ids;
        self.alive = vec![true; self.points.len()];
        self.local_of = self
            .global_ids
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as u32))
            .collect();
        self.tombstones = 0;
        self.index.compact_retain(&new_id_of, self.points.len());
        self.screens = build_screen_rows(&self.near, &self.points);
        self.rebuild_sketches();
        self.debug_assert_occupancy_invariants();
    }
}

impl<P, H, N> fairnn_snapshot::Codec for Shard<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    /// Persists the shard's LSH index, its points with their global ids and
    /// tombstone flags, and — because a KMV sketch cannot be rebuilt after
    /// deletes (it may legitimately remember tombstoned ids) — every
    /// per-bucket sketch verbatim, in sorted key order so the encoding is
    /// canonical. The `global → local` map and the live/tombstone counters
    /// are derived state, rebuilt on load.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.index.encode(enc);
        self.points.encode(enc);
        self.global_ids.encode(enc);
        self.alive.encode(enc);
        self.near.encode(enc);
        enc.write_len(self.sketches.len());
        for table in &self.sketches {
            // fairnn-audit: allow(unordered-iter) — collected and key-sorted below
            let mut entries: Vec<(&u64, &BottomKSketch)> = table.iter().collect();
            entries.sort_unstable_by_key(|(key, _)| **key);
            enc.write_len(entries.len());
            for (key, sketch) in entries {
                enc.write_u64(*key);
                sketch.encode(enc);
            }
        }
        enc.write_u64(self.sketch_seed);
        self.config.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let index = LshIndex::<H>::decode(dec)?;
        let points = Vec::<P>::decode(dec)?;
        let global_ids = Vec::<PointId>::decode(dec)?;
        let alive = Vec::<bool>::decode(dec)?;
        let near = N::decode(dec)?;
        if points.len() != global_ids.len() || points.len() != alive.len() {
            return Err(SnapshotError::Corrupt(format!(
                "shard arrays disagree: {} points, {} global ids, {} alive flags",
                points.len(),
                global_ids.len(),
                alive.len()
            )));
        }
        if index.num_points() != points.len() {
            return Err(SnapshotError::Corrupt(format!(
                "shard index covers {} local ids for {} stored points",
                index.num_points(),
                points.len()
            )));
        }
        let num_sketch_tables = dec.read_len()?;
        if num_sketch_tables != index.num_tables() {
            return Err(SnapshotError::Corrupt(format!(
                "shard stores sketch maps for {num_sketch_tables} tables, index has {}",
                index.num_tables()
            )));
        }
        let mut sketches = Vec::with_capacity(num_sketch_tables);
        for _ in 0..num_sketch_tables {
            let len = dec.read_len()?;
            let mut table = HashMap::with_capacity(len);
            let mut previous: Option<u64> = None;
            for _ in 0..len {
                let key = dec.read_u64()?;
                if previous.is_some_and(|p| p >= key) {
                    return Err(SnapshotError::Corrupt(
                        "shard sketch keys are not strictly increasing".into(),
                    ));
                }
                previous = Some(key);
                table.insert(key, BottomKSketch::decode(dec)?);
            }
            sketches.push(table);
        }
        let sketch_seed = dec.read_u64()?;
        let config = ShardConfig::decode(dec)?;
        // Every bucket sketch must merge with the accumulator built from
        // this shard's seed and `k`; a mismatch would otherwise panic
        // inside `merge` at query time instead of failing the load.
        let reference = BottomKSketch::new(sketch_seed, config.sketch_k);
        // fairnn-audit: allow(unordered-iter) — validation only; acceptance is order-independent
        for sketch in sketches.iter().flat_map(HashMap::values) {
            if !reference.mergeable_with(sketch) {
                return Err(SnapshotError::Corrupt(
                    "bucket sketch seed/k do not match the shard's".into(),
                ));
            }
        }
        let mut local_of = HashMap::with_capacity(points.len());
        let mut live = 0usize;
        for (i, (&global, &is_alive)) in global_ids.iter().zip(alive.iter()).enumerate() {
            if is_alive {
                if local_of.insert(global, i as u32).is_some() {
                    return Err(SnapshotError::Corrupt(format!(
                        "global id {global} owned by two live local slots"
                    )));
                }
                live += 1;
            }
        }
        let tombstones = points.len() - live;
        let screens = build_screen_rows(&near, &points);
        let shard = Self {
            index,
            points,
            global_ids,
            alive,
            local_of,
            live,
            tombstones,
            near,
            screens,
            sketches,
            sketch_seed,
            config,
        };
        shard.debug_assert_occupancy_invariants();
        Ok(shard)
    }
}

impl<P, H, N> Shard<P, H, N>
where
    P: fairnn_snapshot::Codec,
    H: fairnn_lsh::HasherBankCodec,
    N: fairnn_snapshot::Codec + Nearness<P>,
{
    /// Writes this shard alone as a snapshot file (the sharded index and
    /// engine snapshots embed the same encoding per shard).
    pub fn save<Q: AsRef<std::path::Path>>(
        &self,
        path: Q,
    ) -> Result<(), fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::save(fairnn_snapshot::SnapshotKind::Shard, self, path)
    }

    /// Restores a shard written by [`Shard::save`].
    pub fn load<Q: AsRef<std::path::Path>>(
        path: Q,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::load(fairnn_snapshot::SnapshotKind::Shard, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_core::SimilarityAtLeast;
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Dataset, Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_sets() -> Vec<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..8u32 {
            let mut items: Vec<u32> = (0..24).collect();
            items.push(100 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..8u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 15).collect(),
            ));
        }
        sets
    }

    type TestShard =
        Shard<SparseSet, ConcatenatedHasher<fairnn_lsh::MinHasher>, SimilarityAtLeast<Jaccard>>;

    fn build_shard(sets: Vec<SparseSet>, first_global: u32) -> TestShard {
        let params = ParamsBuilder::new(16, 0.5, 0.05).empirical(&MinHash);
        let globals: Vec<PointId> = (0..sets.len() as u32)
            .map(|i| PointId(first_global + i))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        Shard::build(
            &MinHash,
            params,
            sets,
            globals,
            SimilarityAtLeast::new(Jaccard, 0.5),
            77,
            ShardConfig {
                sketch_threshold: 2,
                ..ShardConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn near_points_are_reported_with_global_ids() {
        let sets = clustered_sets();
        let shard = build_shard(sets.clone(), 1000);
        let mut stats = QueryStats::default();
        let near = shard.colliding_near_points(&sets[0], &mut stats);
        assert!(near.len() >= 7, "cluster members missing: {near:?}");
        for id in &near {
            assert!((1000..1016).contains(&id.0), "non-global id {id}");
        }
        assert!(stats.distance_computations > 0);
    }

    #[test]
    fn estimate_tracks_colliding_count_and_sketches_exist() {
        let sets = clustered_sets();
        let shard = build_shard(sets.clone(), 0);
        assert!(
            shard.sketched_buckets() > 0,
            "threshold 2 must sketch the cluster buckets"
        );
        let mut stats = QueryStats::default();
        let est = shard.estimate_colliding(&sets[0], &mut stats);
        // The 8-member cluster collides almost surely; KMV is exact at this size.
        assert!(est >= 7.0, "estimate {est}");
        assert!(est <= 17.0, "estimate {est}");
    }

    #[test]
    fn insert_extends_neighborhood_and_sketches() {
        let sets = clustered_sets();
        let query = sets[0].clone();
        let mut shard = build_shard(sets, 0);
        let mut twin_items: Vec<u32> = (0..24).collect();
        twin_items.push(500);
        shard.insert(PointId(90), SparseSet::from_items(twin_items));
        assert_eq!(shard.live_points(), 17);
        assert!(shard.contains(PointId(90)));
        let mut stats = QueryStats::default();
        let near = shard.colliding_near_points(&query, &mut stats);
        assert!(near.contains(&PointId(90)), "inserted twin not found");
        let est = shard.estimate_colliding(&query, &mut stats);
        assert!(est >= 8.0, "sketches not updated on insert: {est}");
    }

    #[test]
    fn delete_tombstones_then_compacts() {
        let sets = clustered_sets();
        let query = sets[0].clone();
        let mut shard = build_shard(sets, 0);
        assert!(!shard.delete(PointId(99)), "unknown id must report false");
        // Delete the whole cluster one by one; compaction triggers on the way.
        for j in 1..8u32 {
            assert!(shard.delete(PointId(j)));
            assert!(!shard.contains(PointId(j)));
        }
        let mut stats = QueryStats::default();
        let near = shard.colliding_near_points(&query, &mut stats);
        assert_eq!(near, vec![PointId(0)], "only the query's own point remains");
        assert_eq!(shard.live_points(), 9);
        assert!(
            shard.tombstones() < 7,
            "compaction never ran: {} tombstones",
            shard.tombstones()
        );
        // After compaction the sketches are fresh: the estimate drops.
        let est = shard.estimate_colliding(&query, &mut stats);
        assert!(est <= 3.0, "stale sketches after compaction: {est}");
    }

    #[test]
    fn sketches_from_sibling_shards_merge() {
        let sets = clustered_sets();
        let (a, b) = sets.split_at(8);
        let shard_a = build_shard(a.to_vec(), 0);
        let shard_b = build_shard(b.to_vec(), 8);
        let query = sets[0].clone();
        let mut stats = QueryStats::default();
        let mut acc = shard_a.empty_sketch();
        shard_a.merge_colliding_into(&query, &mut acc, &mut stats);
        shard_b.merge_colliding_into(&query, &mut acc, &mut stats);
        let global = acc.estimate();
        let local = shard_a.estimate_colliding(&query, &mut stats);
        assert!(global >= local, "merge lost mass: {global} < {local}");
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_global_id_rejected() {
        let sets = clustered_sets();
        let mut shard = build_shard(sets, 0);
        shard.insert(PointId(3), SparseSet::from_items(vec![1, 2, 3]));
    }

    #[test]
    fn dataset_roundtrip_matches_exact_neighborhood() {
        // A one-shard "sharded" index must see exactly the exact neighborhood
        // (99%-recall parameters).
        let sets = clustered_sets();
        let data = Dataset::new(sets.clone());
        let shard = build_shard(sets.clone(), 0);
        let mut stats = QueryStats::default();
        for qi in 0..8u32 {
            let query = data.point(PointId(qi)).clone();
            let mut got = shard.colliding_near_points(&query, &mut stats);
            got.sort();
            assert_eq!(got, data.similar_indices(&Jaccard, &query, 0.5));
        }
    }
}
