//! The sharded index and its rejection-corrected two-level fair sampler.
//!
//! [`ShardedIndex`] partitions a [`Dataset`] across `N` [`Shard`]s (round
//! robin, so shard sizes differ by at most one). A query runs the two-level
//! protocol:
//!
//! 1. ask every shard for its mergeable-sketch estimate `ŝ_i` of the number
//!    of distinct colliding points (the per-shard restriction of the
//!    Section 4 step-1 estimate — this is exactly where mergeability makes
//!    the structure shardable);
//! 2. propose shard `i` with probability `ŝ_i / Σ_j ŝ_j`;
//! 3. collect that shard's colliding near points `A_i` and **accept** the
//!    proposal with probability `|A_i| / (κ · ŝ_i)`;
//! 4. on acceptance return a uniform member of `A_i`, otherwise go to 2.
//!
//! Every point `x` of shard `i` is returned in a given round with
//! probability `(ŝ_i/Σŝ) · (|A_i|/(κŝ_i)) · (1/|A_i|) = 1/(κ·Σŝ)` — a
//! constant independent of `x`, `i` *and of the accuracy of the estimates*:
//! the proposal bias cancels against the acceptance ratio, so the output is
//! exactly uniform over `∪_i A_i` for any positive weights, *provided every
//! acceptance ratio is at most 1*. κ = 4 guarantees that up to a KMV
//! failure: the ratio exceeds 1 only if the sketch under-estimates its
//! shard's colliding count (a superset of `A_i`) by more than κ, an event of
//! probability `exp(−Θ(k))` in the sketch size `k`. Two guard rails keep
//! the structure total. A round-budget overrun falls back to an exhaustive
//! uniform draw over all shards, which is *exactly* uniform: every earlier
//! round returned each point with the same constant probability, so
//! conditioning on "no return yet" biases nothing. A detected sketch
//! failure (ratio > 1) takes the same exhaustive fallback; that path is the
//! one place where exact uniformity can slip — rounds before the detection
//! could only return points of healthy shards — but it is reachable only
//! with the `exp(−Θ(k))`-probability KMV failure above, and the output is
//! still always a true member of `∪_i A_i`. Fresh query randomness on every
//! call makes repeated queries independent, so the sharded sampler solves
//! r-NNIS over the colliding near points — the property the uniformity
//! battery checks.

use crate::seed::{split_seed, stream_rng};
use crate::shard::{Shard, ShardConfig};
use fairnn_core::predicate::Nearness;
use fairnn_core::{NeighborSampler, QueryStats};
use fairnn_data::partition;
use fairnn_lsh::{ConcatenatedHasher, LshFamily, LshHasher, LshParams};
use fairnn_obs::{LazyCounter, LazyHistogram};
use fairnn_sketch::CardinalityEstimator;
use fairnn_space::{Dataset, PointId};
use rand::Rng;
use std::sync::Arc;

/// Rejection rounds spent per draw (one observation per
/// [`PreparedQuery::sample`] call). The paper's protocol terminates in
/// `O(κ)` expected rounds; a drifting distribution here means the sketch
/// estimates have degraded (e.g. deletion staleness).
static REJECTION_ROUNDS: LazyHistogram = LazyHistogram::new(
    "engine_rejection_rounds",
    "rejection-sampling rounds spent per draw of the two-level protocol",
);

/// Draws that exhausted the round budget or detected a sketch failure and
/// took the exhaustive uniform fallback.
static FALLBACK_EXHAUSTIVE: LazyCounter = LazyCounter::new(
    "engine_fallback_exhaustive_total",
    "draws that fell back to the exhaustive uniform scan",
);

/// Configuration of a [`ShardedIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedIndexConfig {
    /// Number of shards `N ≥ 1`.
    pub shards: usize,
    /// Root seed: determines every hasher and sketch seed of the structure.
    pub seed: u64,
    /// Rejection margin κ: proposals are accepted with probability
    /// `|A_i| / (κ · ŝ_i)`. Must keep the ratio ≤ 1, so κ ≥ the worst-case
    /// over-count factor of the estimates (KMV error + deletion staleness).
    pub kappa: f64,
    /// Round budget before the exhaustive fallback kicks in.
    pub max_rounds: usize,
    /// Per-shard tuning.
    pub shard: ShardConfig,
}

impl Default for ShardedIndexConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            seed: 0x5EED,
            kappa: 4.0,
            max_rounds: 64,
            shard: ShardConfig::default(),
        }
    }
}

impl ShardedIndexConfig {
    /// A config with the given shard count (other fields default).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Replaces the root seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl fairnn_snapshot::Codec for ShardedIndexConfig {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.shards as u64);
        enc.write_u64(self.seed);
        enc.write_f64(self.kappa);
        enc.write_u64(self.max_rounds as u64);
        self.shard.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let shards = usize::decode(dec)?;
        let seed = dec.read_u64()?;
        let kappa = dec.read_f64()?;
        let max_rounds = usize::decode(dec)?;
        let shard = ShardConfig::decode(dec)?;
        if shards < 1 {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(
                "sharded index needs at least one shard".into(),
            ));
        }
        if !kappa.is_finite() || kappa < 1.0 {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "rejection margin kappa must be at least 1, found {kappa}"
            )));
        }
        Ok(Self {
            shards,
            seed,
            kappa,
            max_rounds,
            shard,
        })
    }
}

/// Sentinel in the id→shard routing table for deleted / never-assigned ids.
const UNASSIGNED: u32 = u32::MAX;

/// RNG stream tags (domain separation for [`split_seed`]).
const STREAM_SKETCH: u64 = 1 << 32;
const STREAM_SHARD_BASE: u64 = 2 << 32;

/// A dataset partitioned across shards with a uniform two-level sampler.
///
/// Shards are held behind [`Arc`]s: cloning the index (what the
/// generational writer does to stage the next generation) shares every
/// shard, and a mutation copies only the one shard it touches
/// ([`Arc::make_mut`]) — readers pinned on an older generation keep their
/// original frozen shards untouched.
#[derive(Debug, Clone)]
pub struct ShardedIndex<P, H, N> {
    shards: Vec<Arc<Shard<P, H, N>>>,
    /// Global id → owning shard (dense; [`UNASSIGNED`] for deleted ids).
    shard_of: Vec<u32>,
    params: LshParams,
    config: ShardedIndexConfig,
}

impl<P: Clone + Send + Sync, BH, N> ShardedIndex<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
    N: Nearness<P>,
{
    /// Partitions `dataset` round-robin across `config.shards` shards and
    /// builds each shard's tables from the shared `params`. Shards are
    /// independent work items — each draws its hashers from its own RNG
    /// stream split off the root seed — so they build concurrently on the
    /// build workers, and the result is bit-for-bit the serial build at any
    /// thread count. Fully deterministic given `config.seed`.
    pub fn build<F>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        config: ShardedIndexConfig,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH> + Sync,
        N: Clone + Send + Sync,
    {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.kappa >= 1.0, "kappa must be at least 1");
        let sketch_seed = split_seed(config.seed, STREAM_SKETCH);
        let assignment = partition::round_robin(dataset.len(), config.shards);
        let mut shard_of = vec![UNASSIGNED; dataset.len()];
        for (s, indices) in assignment.iter().enumerate() {
            for &i in indices {
                shard_of[i] = s as u32;
            }
        }
        let shards = fairnn_parallel::map_indexed(config.shards, |s| {
            let indices = &assignment[s];
            let points: Vec<P> = indices
                .iter()
                .map(|&i| dataset.points()[i].clone())
                .collect();
            let globals: Vec<PointId> = indices.iter().map(|&i| PointId::from_index(i)).collect();
            let mut rng = stream_rng(config.seed, STREAM_SHARD_BASE + s as u64);
            Arc::new(Shard::build(
                family,
                params,
                points,
                globals,
                near.clone(),
                sketch_seed,
                config.shard,
                &mut rng,
            ))
        });
        Self {
            shards,
            shard_of,
            params,
            config,
        }
    }
}

impl<P, H, N> ShardedIndex<P, H, N> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of live points across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.live_points()).sum()
    }

    /// Whether no live point remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared LSH parameters.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> ShardedIndexConfig {
        self.config
    }

    /// The shards themselves (read-only; for accounting, tests, and the
    /// checkpointer's [`Arc::ptr_eq`] change detection).
    pub fn shards(&self) -> &[Arc<Shard<P, H, N>>] {
        &self.shards
    }

    /// Whether the (live) point with this global id is present.
    pub fn contains(&self, id: PointId) -> bool {
        self.shard_of
            .get(id.index())
            .is_some_and(|&s| s != UNASSIGNED)
    }

    /// Freezes every shard's tables into their read-optimized CSR form
    /// (inserts thaw the affected tables to the mutable staging form; see
    /// [`Shard::freeze`]). Crate-private: the engine writer freezes the
    /// staging generation before publishing, so a published generation is
    /// always fully frozen and readers never observe a thaw.
    pub(crate) fn freeze(&mut self)
    where
        P: Clone,
        H: Clone,
        N: Clone,
    {
        for shard in &mut self.shards {
            if !shard.is_frozen() {
                Arc::make_mut(shard).freeze();
            }
        }
    }

    /// Whether every shard is fully frozen.
    pub fn is_frozen(&self) -> bool {
        self.shards.iter().all(|s| s.is_frozen())
    }
}

impl<P, H, N> ShardedIndex<P, H, N>
where
    H: LshHasher<P>,
{
    /// Global estimate of the number of distinct colliding points: the
    /// per-shard sketches merged into one, demonstrating end-to-end
    /// mergeability (shard → table → bucket).
    pub fn estimate_colliding(&self, query: &P) -> f64 {
        let mut stats = QueryStats::default();
        let mut acc = self.shards[0].empty_sketch();
        for shard in &self.shards {
            shard.merge_colliding_into(query, &mut acc, &mut stats);
        }
        acc.estimate()
    }
}

impl<P, H, N> ShardedIndex<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// The distinct colliding near points over all shards, sorted by id
    /// (shards are disjoint, so this is a plain concatenation).
    pub fn neighborhood(&self, query: &P) -> Vec<PointId> {
        let mut stats = QueryStats::default();
        let mut all = self.collect_all(query, &mut stats);
        all.sort_unstable();
        all
    }

    fn collect_all(&self, query: &P, stats: &mut QueryStats) -> Vec<PointId> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.colliding_near_points(query, stats));
        }
        all
    }

    /// Prepares a query for (repeated) sampling: computes the per-shard
    /// estimates once and lazily caches the per-shard neighborhoods. Every
    /// cached quantity is a *deterministic* function of the index and the
    /// query, so drawing many samples from one [`PreparedQuery`] yields
    /// exactly the same output distribution as calling
    /// [`ShardedIndex::sample`] repeatedly — at a fraction of the cost,
    /// because the sketch merges are not redone per draw.
    pub fn prepare<'a>(&'a self, query: &'a P) -> PreparedQuery<'a, P, H, N> {
        let mut stats = QueryStats::default();
        // Hash the query once per shard (one batched all-rows pass each);
        // the keys feed both the sketch estimates here and the lazy
        // neighborhood collections later. All shards share one `LshParams`,
        // so the keys pack into a single flat shard-major buffer.
        let stride = self.params.l;
        let mut keys = Vec::with_capacity(self.shards.len() * stride);
        let mut shard_keys = Vec::new();
        for shard in &self.shards {
            shard.query_keys_into(query, &mut shard_keys);
            debug_assert_eq!(shard_keys.len(), stride, "shards share L");
            keys.extend_from_slice(&shard_keys);
        }
        // One accumulator, cleared between shards: every shard's sketches
        // share the seed and `k`, so the same instance is mergeable with all
        // of them.
        let mut acc = self.shards[0].empty_sketch();
        let estimates: Vec<f64> = self
            .shards
            .iter()
            .zip(keys.chunks_exact(stride))
            .map(|(s, shard_keys)| {
                acc.clear();
                s.merge_colliding_with_keys(shard_keys, &mut acc, &mut stats);
                acc.estimate()
            })
            .collect();
        let total = estimates.iter().sum();
        PreparedQuery {
            index: self,
            query,
            keys,
            key_stride: stride,
            estimates,
            total,
            cached: vec![None; self.shards.len()],
            stats,
        }
    }

    /// One uniform sample from the colliding near points of `query`, with
    /// the work statistics of this call. Fresh `rng` draws make repeated
    /// calls independent (see the module docs for the uniformity argument).
    pub fn sample<R: Rng + ?Sized>(&self, query: &P, rng: &mut R) -> (Option<PointId>, QueryStats) {
        let mut prepared = self.prepare(query);
        let id = prepared.sample(rng);
        (id, prepared.stats())
    }
}

impl<P, H, N> fairnn_snapshot::Codec for ShardedIndex<P, H, N>
where
    P: fairnn_snapshot::Codec + Send + Sync,
    H: fairnn_lsh::HasherBankCodec + Send + Sync,
    N: fairnn_snapshot::Codec + Send + Sync + Nearness<P>,
{
    /// Persists the full topology: every shard (each with its own hasher
    /// bank, frozen tables and sketches), the global id → shard partition
    /// map, the shared LSH parameters, and the configuration (shard count,
    /// root seed, rejection margin).
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.shards.encode(enc);
        self.shard_of.encode(enc);
        self.params.encode(enc);
        self.config.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let shards = Vec::<Arc<Shard<P, H, N>>>::decode(dec)?;
        let shard_of = Vec::<u32>::decode(dec)?;
        let params = LshParams::decode(dec)?;
        let config = ShardedIndexConfig::decode(dec)?;
        Self::assemble(shards, shard_of, params, config)
    }

    /// Sectioned container image: a head section (partition map, shared
    /// parameters, configuration), then one section per shard — encode,
    /// per-section checksums and the per-shard decodes (each rebuilding its
    /// CSR key indexes and re-verifying its sketches) all run on parallel
    /// build workers. Bytes are identical at every thread count.
    fn encode_sections(&self) -> Vec<Vec<u8>> {
        let mut sections = Vec::with_capacity(self.shards.len() + 1);
        sections.push(self.head_section());
        sections.extend(fairnn_parallel::map_indexed(self.shards.len(), |s| {
            self.shard_section(s)
        }));
        sections
    }

    fn decode_sections(
        sections: &[fairnn_snapshot::Section<'_>],
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let Some((head, shard_sections)) = sections.split_first() else {
            return Err(SnapshotError::Corrupt(
                "sharded index snapshot has no head section".into(),
            ));
        };
        let mut dec = head.decoder();
        let shard_of = Vec::<u32>::decode(&mut dec)?;
        let params = LshParams::decode(&mut dec)?;
        let config = ShardedIndexConfig::decode(&mut dec)?;
        // Cross-section count: a plain u64 (`read_len` bounds by this
        // section's remaining bytes, which is not the right limit here).
        let num_shards = usize::try_from(dec.read_u64()?)
            .map_err(|_| SnapshotError::Corrupt("shard count does not fit usize".into()))?;
        dec.finish()?;
        if num_shards != shard_sections.len() {
            return Err(SnapshotError::Corrupt(format!(
                "sharded head declares {num_shards} shards, directory holds {} shard sections",
                shard_sections.len()
            )));
        }
        let decoded = fairnn_parallel::map_indexed(shard_sections.len(), |s| {
            let mut dec = shard_sections[s].decoder();
            let shard = Shard::<P, H, N>::decode(&mut dec)?;
            dec.finish()?;
            Ok::<Arc<Shard<P, H, N>>, SnapshotError>(Arc::new(shard))
        });
        let mut shards = Vec::with_capacity(num_shards);
        for shard in decoded {
            shards.push(shard?);
        }
        Self::assemble(shards, shard_of, params, config)
    }
}

impl<P, H, N> ShardedIndex<P, H, N> {
    /// Shared tail of the inline and sectioned decoders: cross-shard
    /// validation and assembly.
    fn assemble(
        shards: Vec<Arc<Shard<P, H, N>>>,
        shard_of: Vec<u32>,
        params: LshParams,
        config: ShardedIndexConfig,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        if shards.is_empty() {
            return Err(SnapshotError::Corrupt(
                "sharded index needs at least one shard".into(),
            ));
        }
        if let Some(&bad) = shard_of
            .iter()
            .find(|&&s| s != UNASSIGNED && s as usize >= shards.len())
        {
            return Err(SnapshotError::Corrupt(format!(
                "routing table points at shard {bad} of {}",
                shards.len()
            )));
        }
        Ok(Self {
            shards,
            shard_of,
            params,
            config,
        })
    }
}

impl<P, H, N> ShardedIndex<P, H, N>
where
    P: fairnn_snapshot::Codec + Send + Sync,
    H: fairnn_lsh::HasherBankCodec + Send + Sync,
    N: fairnn_snapshot::Codec + Send + Sync + Nearness<P>,
{
    /// The head section of the sectioned image: partition map, shared
    /// parameters, configuration, shard count. Split out so the engine's
    /// incremental checkpointer can re-encode it without re-encoding
    /// unchanged shard sections.
    pub(crate) fn head_section(&self) -> Vec<u8> {
        use fairnn_snapshot::Codec;
        let mut head = fairnn_snapshot::Encoder::new();
        self.shard_of.encode(&mut head);
        self.params.encode(&mut head);
        self.config.encode(&mut head);
        head.write_u64(self.shards.len() as u64);
        head.into_bytes()
    }

    /// Section bytes of shard `s` (one entry of
    /// [`fairnn_snapshot::Codec::encode_sections`]).
    pub(crate) fn shard_section(&self, s: usize) -> Vec<u8> {
        use fairnn_snapshot::Codec;
        let mut enc = fairnn_snapshot::Encoder::new();
        self.shards[s].encode(&mut enc);
        enc.into_bytes()
    }

    /// Writes the sharded index as a versioned, checksummed snapshot file.
    pub fn save<Q: AsRef<std::path::Path>>(
        &self,
        path: Q,
    ) -> Result<(), fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::save(fairnn_snapshot::SnapshotKind::ShardedIndex, self, path)
    }

    /// Restores an index written by [`ShardedIndex::save`]. Sampling from
    /// the restored index with the same RNG stream reproduces the saved
    /// index's draws bit for bit, and incremental insert/delete behave
    /// exactly as on the saved instance.
    pub fn load<Q: AsRef<std::path::Path>>(
        path: Q,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        fairnn_snapshot::load(fairnn_snapshot::SnapshotKind::ShardedIndex, path)
    }
}

/// Repeated-sampling cursor over one query (see [`ShardedIndex::prepare`]).
#[derive(Debug)]
pub struct PreparedQuery<'a, P, H, N> {
    index: &'a ShardedIndex<P, H, N>,
    query: &'a P,
    /// Per-shard bucket keys of the query, packed shard-major with stride
    /// `key_stride` (computed once — each shard's `K × L` rows are hashed
    /// in a single batched pass at prepare time).
    keys: Vec<u64>,
    key_stride: usize,
    /// Per-shard mergeable-sketch estimates (step 1, computed once).
    estimates: Vec<f64>,
    total: f64,
    /// Lazily collected per-shard neighborhoods `A_i`.
    cached: Vec<Option<Vec<PointId>>>,
    stats: QueryStats,
}

impl<P, H, N> PreparedQuery<'_, P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Accumulated work statistics over every draw from this cursor (one
    /// [`ShardedIndex::sample`] call equals one prepare + one draw).
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// The global colliding estimate `Σ_i ŝ_i` this cursor proposes from.
    pub fn total_estimate(&self) -> f64 {
        self.total
    }

    fn shard_neighborhood(&mut self, shard: usize) -> &Vec<PointId> {
        if self.cached[shard].is_none() {
            let _span = fairnn_obs::span!("shard.sample", shard = shard);
            let keys = &self.keys[shard * self.key_stride..(shard + 1) * self.key_stride];
            self.cached[shard] = Some(self.index.shards[shard].colliding_near_points_with_keys(
                self.query,
                keys,
                &mut self.stats,
            ));
        }
        self.cached[shard].as_ref().expect("filled above")
    }

    /// Draws one uniform sample (steps 2–4 of the two-level protocol, with
    /// the exhaustive fallback on round-budget overrun or sketch failure).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<PointId> {
        let rounds_before = self.stats.rounds;
        let out = self.sample_inner(rng);
        REJECTION_ROUNDS.record((self.stats.rounds - rounds_before) as u64);
        out
    }

    fn sample_inner<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<PointId> {
        if self.total <= 0.0 {
            // No shard has any colliding point (estimates are exact at 0).
            return None;
        }
        let num_shards = self.index.shards.len();
        let kappa = self.index.config.kappa;
        for _ in 0..self.index.config.max_rounds.max(1) {
            self.stats.rounds += 1;
            let mut u = rng.random::<f64>() * self.total;
            let mut pick = num_shards - 1;
            for (i, &w) in self.estimates.iter().enumerate() {
                if u < w {
                    pick = i;
                    break;
                }
                u -= w;
            }
            let estimate = self.estimates[pick];
            let near_points = self.shard_neighborhood(pick);
            if near_points.is_empty() {
                continue; // acceptance probability 0
            }
            let accept = near_points.len() as f64 / (kappa * estimate);
            if accept > 1.0 {
                // The sketch under-estimated below |A_i|/κ — an
                // exp(−Θ(k))-probability KMV failure. Clamping would bias
                // the output; bail out to the exhaustive fallback (see the
                // module docs for the residual bias of this rare path).
                break;
            }
            if rng.random::<f64>() < accept {
                let choice = rng.random_range(0..near_points.len());
                return Some(near_points[choice]);
            }
        }

        // Fallback: an exhaustive uniform draw. On round-budget overrun
        // this keeps the output exactly uniform (every earlier round had the
        // same constant per-point return probability); after a detected
        // sketch failure it is the best available draw (module docs).
        FALLBACK_EXHAUSTIVE.inc();
        for shard in 0..num_shards {
            self.shard_neighborhood(shard);
        }
        let sizes: Vec<usize> = self
            .cached
            .iter()
            .map(|c| c.as_ref().map_or(0, Vec::len))
            .collect();
        let total: usize = sizes.iter().sum();
        if total == 0 {
            return None;
        }
        let mut choice = rng.random_range(0..total);
        for (shard, &size) in sizes.iter().enumerate() {
            if choice < size {
                return Some(self.cached[shard].as_ref().expect("filled")[choice]);
            }
            choice -= size;
        }
        unreachable!("choice is within the concatenated size")
    }
}

impl<P: Clone, H: Clone, N: Clone> ShardedIndex<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Inserts a new point into the least-loaded shard (ties broken toward
    /// the lowest shard index, so routing is deterministic) and returns its
    /// freshly assigned global id. Crate-private: external callers go
    /// through the engine writer's `WriteBatch`, which write-ahead-logs
    /// the mutation and publishes a fresh generation.
    pub(crate) fn insert(&mut self, point: P) -> PointId {
        let id = PointId::from_index(self.shard_of.len());
        let target = (0..self.shards.len())
            .min_by_key(|&s| self.shards[s].live_points())
            .expect("at least one shard");
        self.shard_of.push(target as u32);
        Arc::make_mut(&mut self.shards[target]).insert(id, point);
        id
    }

    /// Deletes a point by global id; returns `false` for unknown or already
    /// deleted ids. Purely shard-local (may trigger that shard's
    /// compaction). Crate-private like [`ShardedIndex::insert`].
    pub(crate) fn delete(&mut self, id: PointId) -> bool {
        let Some(&s) = self.shard_of.get(id.index()) else {
            return false;
        };
        if s == UNASSIGNED {
            return false;
        }
        let deleted = Arc::make_mut(&mut self.shards[s as usize]).delete(id);
        debug_assert!(deleted, "routing table out of sync");
        self.shard_of[id.index()] = UNASSIGNED;
        deleted
    }

    /// Force-compacts every shard that carries tombstones (drops them,
    /// re-densifies local ids, refreshes sketches), without waiting for
    /// the `rebuild_fraction` trigger. Crate-private: reachable through
    /// `WriteOp::Compact` on the writer, which runs it on the staging
    /// generation — never on a published one.
    pub(crate) fn compact(&mut self) {
        for shard in &mut self.shards {
            if shard.tombstones() > 0 {
                Arc::make_mut(shard).force_compact();
            }
        }
    }
}

/// [`NeighborSampler`] adapter around a [`ShardedIndex`], so the sharded
/// engine slots into every harness built on the core sampling traits
/// (including [`fairnn_core::FairSampler`] trait objects via the blanket
/// impl).
#[derive(Debug, Clone)]
pub struct ShardedSampler<P, H, N> {
    index: ShardedIndex<P, H, N>,
    stats: QueryStats,
}

impl<P, H, N> ShardedSampler<P, H, N> {
    /// Wraps an existing index.
    pub fn new(index: ShardedIndex<P, H, N>) -> Self {
        Self {
            index,
            stats: QueryStats::default(),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &ShardedIndex<P, H, N> {
        &self.index
    }

    /// Unwraps the index.
    pub fn into_inner(self) -> ShardedIndex<P, H, N> {
        self.index
    }
}

impl<P: Clone + Send + Sync, BH, N> ShardedSampler<P, ConcatenatedHasher<BH>, N>
where
    BH: LshHasher<P> + Send + Sync,
    N: Nearness<P>,
{
    /// Builds the index and wraps it (mirrors `FairNns::build` ergonomics).
    pub fn build<F>(
        family: &F,
        params: LshParams,
        dataset: &Dataset<P>,
        near: N,
        config: ShardedIndexConfig,
    ) -> Self
    where
        F: LshFamily<P, Hasher = BH> + Sync,
        N: Clone + Send + Sync,
    {
        Self::new(ShardedIndex::build(family, params, dataset, near, config))
    }
}

impl<P, H, N> NeighborSampler<P> for ShardedSampler<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    fn sample<R: Rng + ?Sized>(&mut self, query: &P, rng: &mut R) -> Option<PointId> {
        let (id, stats) = self.index.sample(query, rng);
        self.stats = stats;
        id
    }

    fn last_query_stats(&self) -> QueryStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "sharded-engine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_core::{ExactSampler, SimilarityAtLeast};
    use fairnn_lsh::{MinHash, ParamsBuilder};
    use fairnn_space::{Jaccard, SparseSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_dataset() -> Dataset<SparseSet> {
        let mut sets = Vec::new();
        for j in 0..10u32 {
            let mut items: Vec<u32> = (0..25).collect();
            items.push(100 + j);
            items.push(200 + j);
            sets.push(SparseSet::from_items(items));
        }
        for j in 0..20u32 {
            sets.push(SparseSet::from_items(
                (1000 + j * 40..1000 + j * 40 + 15).collect(),
            ));
        }
        Dataset::new(sets)
    }

    type Index = ShardedIndex<
        SparseSet,
        ConcatenatedHasher<fairnn_lsh::MinHasher>,
        SimilarityAtLeast<Jaccard>,
    >;

    fn build(shards: usize, seed: u64) -> (Dataset<SparseSet>, Index) {
        let data = clustered_dataset();
        let params = ParamsBuilder::new(data.len(), 0.5, 0.05).empirical(&MinHash);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let index = ShardedIndex::build(
            &MinHash,
            params,
            &data,
            near,
            ShardedIndexConfig::with_shards(shards).seeded(seed),
        );
        (data, index)
    }

    #[test]
    fn shards_partition_the_dataset() {
        let (data, index) = build(4, 1);
        assert_eq!(index.num_shards(), 4);
        assert_eq!(index.len(), data.len());
        assert!(!index.is_empty());
        for id in data.ids() {
            assert!(index.contains(id));
            assert_eq!(
                index.shards().iter().filter(|s| s.contains(id)).count(),
                1,
                "{id} owned by != 1 shard"
            );
        }
    }

    #[test]
    fn neighborhood_matches_exact_ground_truth() {
        let (data, index) = build(4, 2);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        for qi in 0..10u32 {
            let query = data.point(PointId(qi)).clone();
            assert_eq!(
                index.neighborhood(&query),
                exact.neighborhood(&query),
                "query {qi}"
            );
        }
    }

    #[test]
    fn sample_returns_only_near_points_and_none_off_support() {
        let (data, index) = build(3, 3);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let mut rng = StdRng::seed_from_u64(5);
        let query = data.point(PointId(0)).clone();
        let neighborhood = exact.neighborhood(&query);
        for _ in 0..50 {
            let (id, stats) = index.sample(&query, &mut rng);
            assert!(neighborhood.contains(&id.expect("non-empty")));
            assert!(stats.rounds >= 1);
        }
        let isolated = SparseSet::from_items(vec![88_000, 88_001]);
        assert_eq!(index.sample(&isolated, &mut rng).0, None);
    }

    #[test]
    fn repeated_queries_are_uniform_over_the_neighborhood() {
        // The r-NNIS property of the two-level sampler: one build, repeated
        // queries, empirical distribution uniform over the 10-member cluster.
        let (data, index) = build(4, 4);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(0)).clone();
        let neighborhood = exact.neighborhood(&query);
        assert_eq!(neighborhood.len(), 10);
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 12_000;
        let mut counts = vec![0usize; data.len()];
        for _ in 0..trials {
            let (id, _) = index.sample(&query, &mut rng);
            counts[id.expect("non-empty").index()] += 1;
        }
        for &id in &neighborhood {
            let rate = counts[id.index()] as f64 / trials as f64;
            assert!(
                (rate - 0.1).abs() < 0.02,
                "member {id} sampled at rate {rate}, expected ~0.1"
            );
        }
    }

    #[test]
    fn prepared_query_draws_match_the_one_shot_distribution() {
        // prepare() caches only deterministic per-query state, so bulk draws
        // from one cursor must be distributed like independent sample()
        // calls: uniform over the neighborhood.
        let (data, index) = build(4, 5);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(0)).clone();
        let neighborhood = exact.neighborhood(&query);
        let mut prepared = index.prepare(&query);
        assert!(prepared.total_estimate() > 0.0);
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 12_000;
        let mut counts = vec![0usize; data.len()];
        for _ in 0..trials {
            counts[prepared.sample(&mut rng).expect("non-empty").index()] += 1;
        }
        for &id in &neighborhood {
            let rate = counts[id.index()] as f64 / trials as f64;
            assert!(
                (rate - 0.1).abs() < 0.02,
                "member {id} rate {rate} via prepared cursor"
            );
        }
        assert!(prepared.stats().rounds >= trials);
    }

    #[test]
    fn global_estimate_brackets_the_true_colliding_count() {
        let (data, index) = build(4, 7);
        let query = data.point(PointId(0)).clone();
        let est = index.estimate_colliding(&query);
        assert!(est >= 5.0, "estimate {est}");
        assert!(est <= 2.0 * data.len() as f64, "estimate {est}");
    }

    #[test]
    fn insert_routes_to_least_loaded_shard_and_is_sampleable() {
        let (data, mut index) = build(4, 8);
        let query = data.point(PointId(0)).clone();
        let mut items: Vec<u32> = (0..25).collect();
        items.push(100); // joins the cluster of query 0
        items.push(777);
        let id = index.insert(SparseSet::from_items(items));
        assert_eq!(id.index(), data.len());
        assert!(index.contains(id));
        assert_eq!(index.len(), data.len() + 1);
        assert!(
            index.neighborhood(&query).contains(&id),
            "inserted near point must join the neighborhood"
        );
        let mut rng = StdRng::seed_from_u64(9);
        let seen_inserted = (0..2000).any(|_| index.sample(&query, &mut rng).0 == Some(id));
        assert!(seen_inserted, "inserted point never sampled");
    }

    #[test]
    fn delete_removes_points_until_neighborhood_empties() {
        let (data, mut index) = build(4, 10);
        let query = data.point(PointId(0)).clone();
        let members = index.neighborhood(&query);
        assert_eq!(members.len(), 10);
        for &id in &members {
            assert!(index.delete(id));
            assert!(!index.contains(id));
            assert!(!index.delete(id), "double delete must fail");
        }
        assert_eq!(index.len(), data.len() - members.len());
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(index.sample(&query, &mut rng).0, None);
        assert!(index.neighborhood(&query).is_empty());
    }

    #[test]
    fn sharded_sampler_implements_the_core_traits() {
        use fairnn_core::FairSampler;
        let (data, index) = build(2, 12);
        let mut sampler = ShardedSampler::new(index);
        assert_eq!(sampler.name(), "sharded-engine");
        let query = data.point(PointId(1)).clone();
        let mut rng = StdRng::seed_from_u64(13);
        assert!(sampler.sample(&query, &mut rng).is_some());
        assert!(sampler.last_query_stats().rounds >= 1);
        assert_eq!(sampler.index().num_shards(), 2);
        // Through the object-safe trait as well.
        let boxed: &mut dyn FairSampler<SparseSet> = &mut sampler;
        assert!(boxed.sample_dyn(&query, &mut rng).is_some());
        assert_eq!(boxed.sampler_name(), "sharded-engine");
    }

    #[test]
    fn one_shard_degenerates_gracefully() {
        let (data, index) = build(1, 14);
        let near = SimilarityAtLeast::new(Jaccard, 0.5);
        let exact = ExactSampler::new(&data, near);
        let query = data.point(PointId(5)).clone();
        assert_eq!(index.neighborhood(&query), exact.neighborhood(&query));
        let mut rng = StdRng::seed_from_u64(15);
        assert!(index.sample(&query, &mut rng).0.is_some());
    }
}
