//! The typed request/response/mutation surface of the generational engine.
//!
//! Everything a front-end needs to talk to the engine lives here as a
//! plain struct or enum: [`QueryRequest`] in, [`BatchResponse`] out on the
//! read path; [`WriteBatch`] in, [`CommitReceipt`] out on the write path;
//! [`EngineError`] for every failure. The mutation types implement the
//! snapshot [`fairnn_snapshot::Codec`], because a committed batch *is* the
//! write-ahead-log record payload — the wire format of the log and the
//! API surface of the writer are one and the same. These are the structs
//! the planned `fairnn-server` front-end will serialize across the
//! network.

use crate::engine::Answer;
use fairnn_snapshot::SnapshotError;
use fairnn_space::PointId;

/// A batch of queries addressed to one pinned generation
/// ([`crate::EpochPin::run_batch`]).
///
/// The `batch` number selects the deterministic RNG stream: for a fixed
/// engine seed, generation and batch number, the response is a pure
/// function of this request — independent of thread count, of concurrent
/// writers, and of every other request in flight. Callers own the batch
/// numbering (typically a per-client counter), which is what makes replay
/// and A/B verification possible from outside the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest<P> {
    /// The queries; `answers[i]` of the response corresponds to
    /// `queries[i]`.
    pub queries: Vec<P>,
    /// Caller-chosen batch number selecting the RNG stream (see the type
    /// docs).
    pub batch: u64,
}

impl<P> QueryRequest<P> {
    /// A request for batch number 0.
    pub fn new(queries: Vec<P>) -> Self {
        Self { queries, batch: 0 }
    }

    /// Replaces the batch number.
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }
}

impl<P: fairnn_snapshot::Codec> fairnn_snapshot::Codec for QueryRequest<P> {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.queries.encode(enc);
        enc.write_u64(self.batch);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            queries: Vec::<P>::decode(dec)?,
            batch: dec.read_u64()?,
        })
    }
}

/// The answers to one [`QueryRequest`], stamped with the generation that
/// served them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResponse {
    /// Per-position answers, aligned with the request's `queries`.
    pub answers: Vec<Answer>,
    /// Number of the pinned generation the batch ran against.
    pub generation: u64,
}

impl fairnn_snapshot::Codec for Answer {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.id.encode(enc);
        // Plain u64s, not `write_len`: these are work *counters*, and the
        // decoder's length-prefix sanity check (len <= remaining bytes)
        // must not apply to them.
        enc.write_u64(self.stats.entries_scanned as u64);
        enc.write_u64(self.stats.distance_computations as u64);
        enc.write_u64(self.stats.buckets_inspected as u64);
        enc.write_u64(self.stats.rounds as u64);
        enc.write_u8(self.via_cache as u8);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let id = Option::<PointId>::decode(dec)?;
        let mut counter = || -> Result<usize, fairnn_snapshot::SnapshotError> {
            let raw = dec.read_u64()?;
            usize::try_from(raw).map_err(|_| {
                fairnn_snapshot::SnapshotError::Corrupt(format!(
                    "query stat counter {raw} does not fit usize"
                ))
            })
        };
        let stats = fairnn_core::QueryStats {
            entries_scanned: counter()?,
            distance_computations: counter()?,
            buckets_inspected: counter()?,
            rounds: counter()?,
        };
        let via_cache = match dec.read_u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                    "via_cache flag must be 0 or 1, found {other}"
                )))
            }
        };
        Ok(Self {
            id,
            stats,
            via_cache,
        })
    }
}

impl fairnn_snapshot::Codec for BatchResponse {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.answers.encode(enc);
        enc.write_u64(self.generation);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            answers: Vec::<Answer>::decode(dec)?,
            generation: dec.read_u64()?,
        })
    }
}

/// A per-request deadline budget on the injectable monotonic clock
/// ([`fairnn_obs::monotonic_ns`]).
///
/// A budget is an absolute point on the monotonic timeline, fixed when
/// the budget is created — passing it down a call chain never extends
/// it, which is what makes it a *budget* rather than a per-hop timeout.
/// [`crate::EpochPin::run_batch_within`] checks it between queries and
/// fails fast with [`EngineError::DeadlineExceeded`] instead of serving
/// an answer nobody is still waiting for. Built on the `fairnn-obs`
/// clock seam, so tests drive it deterministically with a
/// `ManualClock`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineBudget {
    /// Absolute monotonic deadline in nanoseconds; `None` = no limit.
    deadline_ns: Option<u64>,
}

impl DeadlineBudget {
    /// A budget that never expires.
    pub fn unlimited() -> Self {
        Self { deadline_ns: None }
    }

    /// A budget expiring `ms` milliseconds from now (saturating).
    pub fn from_now_ms(ms: u64) -> Self {
        Self::from_now_ns(ms.saturating_mul(1_000_000))
    }

    /// A budget expiring `ns` nanoseconds from now (saturating).
    pub fn from_now_ns(ns: u64) -> Self {
        Self {
            deadline_ns: Some(fairnn_obs::monotonic_ns().saturating_add(ns)),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline_ns
            .is_some_and(|d| fairnn_obs::monotonic_ns() >= d)
    }

    /// Nanoseconds left before expiry (`None` for an unlimited budget,
    /// 0 once expired).
    pub fn remaining_ns(&self) -> Option<u64> {
        self.deadline_ns
            .map(|d| d.saturating_sub(fairnn_obs::monotonic_ns()))
    }
}

/// One mutation inside a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp<P> {
    /// Insert a new point; its global id is assigned at apply time and
    /// reported through [`CommitReceipt::assigned`].
    Insert(P),
    /// Delete the point with this global id.
    Delete(PointId),
    /// Force-compact every shard carrying tombstones (off the query
    /// path: compaction runs on the staging generation and readers keep
    /// serving the published one).
    Compact,
}

impl<P: fairnn_snapshot::Codec> fairnn_snapshot::Codec for WriteOp<P> {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        match self {
            WriteOp::Insert(point) => {
                enc.write_u8(0);
                point.encode(enc);
            }
            WriteOp::Delete(id) => {
                enc.write_u8(1);
                id.encode(enc);
            }
            WriteOp::Compact => enc.write_u8(2),
        }
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        match dec.read_u8()? {
            0 => Ok(WriteOp::Insert(P::decode(dec)?)),
            1 => Ok(WriteOp::Delete(PointId::decode(dec)?)),
            2 => Ok(WriteOp::Compact),
            other => Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "write op tag must be 0..=2, found {other}"
            ))),
        }
    }
}

/// A typed batch of mutations, committed atomically by
/// [`crate::EngineWriter::commit`]: the whole batch is write-ahead-logged
/// as one record, applied to the staging generation, and published as one
/// new generation — readers observe either none of it or all of it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WriteBatch<P> {
    ops: Vec<WriteOp<P>>,
}

impl<P> WriteBatch<P> {
    /// An empty batch.
    pub fn new() -> Self {
        Self { ops: Vec::new() }
    }

    /// Appends an insert (builder style).
    pub fn insert(mut self, point: P) -> Self {
        self.ops.push(WriteOp::Insert(point));
        self
    }

    /// Appends a delete (builder style).
    pub fn delete(mut self, id: PointId) -> Self {
        self.ops.push(WriteOp::Delete(id));
        self
    }

    /// Appends a compaction request (builder style).
    pub fn compact(mut self) -> Self {
        self.ops.push(WriteOp::Compact);
        self
    }

    /// Appends one op in place.
    pub fn push(&mut self, op: WriteOp<P>) {
        self.ops.push(op);
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[WriteOp<P>] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl<P: fairnn_snapshot::Codec> fairnn_snapshot::Codec for WriteBatch<P> {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        self.ops.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        Ok(Self {
            ops: Vec::<WriteOp<P>>::decode(dec)?,
        })
    }
}

/// Proof of a durable commit, returned by
/// [`crate::EngineWriter::commit`] after the batch is in the write-ahead
/// log and the new generation is published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The commit's write-ahead-log sequence number.
    pub seq: u64,
    /// The generation number this commit published; readers pinning from
    /// now on observe it.
    pub generation: u64,
    /// Global ids assigned to the batch's `Insert` ops, in op order.
    pub assigned: Vec<PointId>,
    /// Bytes this commit appended to the write-ahead log (record header
    /// included).
    pub wal_bytes: u64,
}

/// Every way an engine entry point can fail, in one place.
///
/// `#[non_exhaustive]`: front-ends must keep a wildcard arm, so the
/// engine can grow failure modes (quota, backpressure, …) without
/// breaking them.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// Persistence failed: checkpoint save/load, WAL append/replay, or a
    /// corrupt on-disk structure.
    Snapshot(SnapshotError),
    /// A `Delete` referenced a global id the staging generation does not
    /// hold (nothing was logged or applied; the whole batch is rejected).
    UnknownId(PointId),
    /// The engine directory or configuration is unusable.
    Config(String),
    /// A [`DeadlineBudget`] expired mid-batch: `completed` of `total`
    /// queries were answered before the budget ran out (the partial
    /// answers are discarded — a deterministic response is all-or-
    /// nothing).
    DeadlineExceeded {
        /// Queries answered before the deadline hit.
        completed: usize,
        /// Queries in the batch.
        total: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Snapshot(err) => write!(f, "engine persistence failed: {err}"),
            EngineError::UnknownId(id) => {
                write!(f, "delete references unknown point id {id}")
            }
            EngineError::Config(msg) => write!(f, "engine configuration invalid: {msg}"),
            EngineError::DeadlineExceeded { completed, total } => write!(
                f,
                "deadline budget expired after {completed} of {total} queries"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SnapshotError> for EngineError {
    fn from(err: SnapshotError) -> Self {
        EngineError::Snapshot(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairnn_snapshot::{Codec, Decoder, Encoder};

    fn roundtrip(batch: &WriteBatch<u64>) -> WriteBatch<u64> {
        let mut enc = Encoder::new();
        batch.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = WriteBatch::<u64>::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        back
    }

    #[test]
    fn write_batch_roundtrips_all_op_kinds() {
        let batch = WriteBatch::new()
            .insert(42u64)
            .delete(PointId(7))
            .compact()
            .insert(99);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        assert_eq!(roundtrip(&batch), batch);
        assert_eq!(roundtrip(&WriteBatch::new()), WriteBatch::new());
    }

    #[test]
    fn bad_op_tag_is_corrupt() {
        let mut enc = Encoder::new();
        vec![0u64; 1].encode(&mut enc); // ops vec of length 1...
        let mut bytes = enc.into_bytes();
        bytes.truncate(8); // keep only the length prefix
        bytes.push(9); // ...whose single op has tag 9
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            WriteBatch::<u64>::decode(&mut dec),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("tag")
        ));
    }

    #[test]
    fn answer_and_response_roundtrip_for_the_wire() {
        let response = BatchResponse {
            answers: vec![
                Answer {
                    id: Some(PointId(12)),
                    stats: fairnn_core::QueryStats {
                        entries_scanned: 4,
                        distance_computations: 3,
                        buckets_inspected: 2,
                        rounds: 1,
                    },
                    via_cache: false,
                },
                Answer {
                    id: None,
                    stats: fairnn_core::QueryStats::default(),
                    via_cache: true,
                },
            ],
            generation: 7,
        };
        let mut enc = Encoder::new();
        response.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = BatchResponse::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, response);

        let request = QueryRequest::new(vec![10u64, 20]).with_batch(9);
        let mut enc = Encoder::new();
        request.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(QueryRequest::<u64>::decode(&mut dec).unwrap(), request);
    }

    #[test]
    fn bad_via_cache_flag_is_corrupt() {
        let answer = Answer {
            id: None,
            stats: fairnn_core::QueryStats::default(),
            via_cache: false,
        };
        let mut enc = Encoder::new();
        answer.encode(&mut enc);
        let mut bytes = enc.into_bytes();
        *bytes.last_mut().unwrap() = 7; // corrupt the trailing bool tag
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            Answer::decode(&mut dec),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("via_cache")
        ));
    }

    #[test]
    fn deadline_budget_expiry_semantics() {
        let unlimited = DeadlineBudget::unlimited();
        assert!(!unlimited.expired());
        assert_eq!(unlimited.remaining_ns(), None);

        // A zero budget is expired by the time anyone checks it.
        let spent = DeadlineBudget::from_now_ns(0);
        assert!(spent.expired());
        assert_eq!(spent.remaining_ns(), Some(0));

        // A huge budget is live and reports a sane remainder.
        let generous = DeadlineBudget::from_now_ms(1 << 40);
        assert!(!generous.expired());
        assert!(generous.remaining_ns().unwrap() > 0);

        // Saturation instead of overflow at the extreme.
        let forever = DeadlineBudget::from_now_ns(u64::MAX);
        assert!(!forever.expired());

        let err = EngineError::DeadlineExceeded {
            completed: 3,
            total: 8,
        };
        assert!(err.to_string().contains("3 of 8"));
    }

    #[test]
    fn request_builders_and_error_display() {
        let req = QueryRequest::new(vec![1u64, 2]).with_batch(5);
        assert_eq!(req.batch, 5);
        assert_eq!(req.queries.len(), 2);
        let err = EngineError::UnknownId(PointId(3));
        assert!(err.to_string().contains("unknown point id"));
        let err: EngineError = SnapshotError::Corrupt("x".into()).into();
        assert!(matches!(err, EngineError::Snapshot(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
