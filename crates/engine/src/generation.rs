//! The published-generation cell shared by the writer and its readers.
//!
//! A [`Generation`] is an immutable, fully frozen [`ShardedIndex`] stamped
//! with a monotonically increasing number (equal to the write-ahead-log
//! sequence number of the commit that published it). `Shared` is the
//! single point of hand-off: the writer replaces the current `Arc` under a
//! short mutex critical section (publish), readers clone it out (pin).
//! Nothing is ever mutated in place, so a pinned reader keeps its
//! generation alive for as long as it holds the `Arc` — an RCU scheme
//! where the reclamation is plain `Arc` reference counting.

use crate::sharded::ShardedIndex;
use std::sync::{Arc, Mutex};

/// One immutable published state of the index.
#[derive(Debug)]
pub struct Generation<P, H, N> {
    /// Generation number == the WAL sequence number after the publishing
    /// commit (generation 0 is the bootstrap build).
    pub(crate) number: u64,
    /// The frozen index of this generation.
    pub(crate) index: ShardedIndex<P, H, N>,
    /// Monotonic timestamp ([`fairnn_obs::monotonic_ns`]) taken when this
    /// generation was published. Purely observational — it feeds the
    /// generation-age health signal and never influences query results.
    pub(crate) published_at_ns: u64,
}

impl<P, H, N> Generation<P, H, N> {
    /// Stamps a new generation with the current monotonic time.
    pub(crate) fn now(number: u64, index: ShardedIndex<P, H, N>) -> Self {
        Self {
            number,
            index,
            published_at_ns: fairnn_obs::monotonic_ns(),
        }
    }

    /// The generation number.
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The frozen index (read-only).
    pub fn index(&self) -> &ShardedIndex<P, H, N> {
        &self.index
    }

    /// Monotonic publish timestamp in nanoseconds.
    pub fn published_at_ns(&self) -> u64 {
        self.published_at_ns
    }

    /// Nanoseconds since this generation was published (its *age*). A
    /// growing age with an active writer means readers are pinned to a
    /// stale state — the `/healthz` staleness signal.
    pub fn age_ns(&self) -> u64 {
        fairnn_obs::monotonic_ns().saturating_sub(self.published_at_ns)
    }
}

/// The writer↔readers hand-off cell: holds the current generation.
///
/// The mutex guards only the `Arc` swap/clone — never a query and never an
/// index mutation — so publishes and pins are both O(1) and neither side
/// can block the other for longer than a pointer copy.
#[derive(Debug)]
pub(crate) struct Shared<P, H, N> {
    current: Mutex<Arc<Generation<P, H, N>>>,
}

impl<P, H, N> Shared<P, H, N> {
    /// A cell starting at the given generation.
    pub(crate) fn new(generation: Arc<Generation<P, H, N>>) -> Self {
        Self {
            current: Mutex::new(generation),
        }
    }

    /// Clones out the current generation (a reader pinning an epoch).
    pub(crate) fn pin(&self) -> Arc<Generation<P, H, N>> {
        match self.current.lock() {
            Ok(guard) => Arc::clone(&guard),
            // A writer cannot panic inside the critical section (it only
            // swaps an Arc), but stay defensive: the stored value is still
            // a coherent generation.
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Atomically replaces the current generation (the writer publishing).
    pub(crate) fn publish(&self, generation: Arc<Generation<P, H, N>>) {
        match self.current.lock() {
            Ok(mut guard) => *guard = generation,
            Err(poisoned) => *poisoned.into_inner() = generation,
        }
    }
}
