//! The read half of the generational engine: cheap-to-clone handles that
//! pin an epoch and query it.
//!
//! An [`EngineReader`] is a pointer-sized handle onto the writer's shared
//! generation cell — clone one per serving thread. Calling
//! [`EngineReader::pin`] takes an [`EpochPin`]: a snapshot-in-time of the
//! published generation, guaranteed immutable and fully frozen for the
//! pin's whole lifetime, no matter how many generations the writer
//! publishes meanwhile. Queries on a pin are pure functions of the pinned
//! index and the request, so two readers pinning the same generation
//! always return bit-identical answers — and a reader pinned before a
//! publish keeps answering from the old generation until it re-pins.

use crate::api_types::{BatchResponse, DeadlineBudget, EngineError, QueryRequest};
use crate::engine::{Answer, STREAM_BATCH_BASE};
use crate::generation::{Generation, Shared};
use crate::seed::{split_seed, stream_rng};
use crate::sharded::{PreparedQuery, ShardedIndex};
use fairnn_core::predicate::Nearness;
use fairnn_lsh::LshHasher;
use fairnn_obs::LazyGauge;
use std::sync::Arc;

/// Epochs currently pinned by readers across the process: each live
/// [`EpochPin`] holds one unit. A persistently high value with an active
/// writer means old generations (and their memory) are being kept alive.
static PINNED_EPOCHS: LazyGauge = LazyGauge::new(
    "engine_pinned_epochs",
    "reader epoch pins currently alive (old generations they keep reachable)",
);

/// A cheap-to-clone handle for querying the live engine.
///
/// Obtained from [`crate::EngineWriter::reader`]; clone freely across
/// threads (it is `Send + Sync` whenever the point/hasher/nearness types
/// are).
#[derive(Debug)]
pub struct EngineReader<P, H, N> {
    shared: Arc<Shared<P, H, N>>,
}

// Manual impl: `#[derive(Clone)]` would demand `P: Clone` etc., but the
// handle only clones the `Arc`.
impl<P, H, N> Clone for EngineReader<P, H, N> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<P, H, N> EngineReader<P, H, N> {
    pub(crate) fn new(shared: Arc<Shared<P, H, N>>) -> Self {
        Self { shared }
    }

    /// Pins the currently published generation.
    ///
    /// The returned pin serves that exact generation until dropped:
    /// concurrent commits publish *new* generations but never touch
    /// pinned ones. Pin per batch (or per request burst) — a pin held
    /// across many publishes keeps every superseded generation's memory
    /// alive.
    pub fn pin(&self) -> EpochPin<P, H, N> {
        PINNED_EPOCHS.add(1);
        EpochPin {
            generation: self.shared.pin(),
        }
    }

    /// Number of the currently published generation (pin-free peek).
    pub fn generation(&self) -> u64 {
        self.shared.pin().number
    }
}

/// A pinned epoch: one immutable generation held for querying.
///
/// Dropping the pin releases the generation (memory is reclaimed once no
/// pin and not the writer's checkpoint cache references its shards).
#[derive(Debug)]
pub struct EpochPin<P, H, N> {
    generation: Arc<Generation<P, H, N>>,
}

impl<P, H, N> Drop for EpochPin<P, H, N> {
    fn drop(&mut self) {
        PINNED_EPOCHS.add(-1);
    }
}

impl<P, H, N> EpochPin<P, H, N> {
    /// The pinned generation's number.
    pub fn generation(&self) -> u64 {
        self.generation.number
    }

    /// Monotonic timestamp at which the pinned generation was published.
    pub fn published_at_ns(&self) -> u64 {
        self.generation.published_at_ns()
    }

    /// Nanoseconds since the pinned generation was published — the
    /// staleness signal `/healthz` surfaces (see
    /// [`crate::Generation::age_ns`]).
    pub fn generation_age_ns(&self) -> u64 {
        self.generation.age_ns()
    }

    /// The pinned index (read-only; always fully frozen).
    pub fn index(&self) -> &ShardedIndex<P, H, N> {
        &self.generation.index
    }
}

impl<P, H, N> EpochPin<P, H, N>
where
    H: LshHasher<P>,
    N: Nearness<P>,
{
    /// Prepares one query for repeated sampling against the pinned
    /// generation (see [`ShardedIndex::prepare`]).
    pub fn prepare<'a>(&'a self, query: &'a P) -> PreparedQuery<'a, P, H, N> {
        self.generation.index.prepare(query)
    }

    /// Answers a batch of queries against the pinned generation.
    ///
    /// Deterministic serving contract: the response is a pure function of
    /// `(engine seed, pinned generation, request)`. Every position draws
    /// from its own RNG stream split off the root seed by
    /// `(request.batch, position)` — the same scheme as
    /// [`crate::QueryEngine::run_batch`] — so a generational reader and a
    /// fixed-index engine serving the same index state return
    /// bit-identical answers for the same batch number.
    pub fn run_batch(&self, request: &QueryRequest<P>) -> BatchResponse {
        match self.run_batch_within(request, &DeadlineBudget::unlimited()) {
            Ok(response) => response,
            // Unreachable: an unlimited budget never expires, and the
            // budget check is the only failure path.
            Err(err) => unreachable!("unlimited budget failed: {err}"),
        }
    }

    /// Answers a batch like [`EpochPin::run_batch`], but checks the
    /// deadline budget between queries and fails fast with
    /// [`EngineError::DeadlineExceeded`] once it expires.
    ///
    /// The check sits *between* positions, so an accepted response is
    /// always complete and bit-identical to the unbudgeted run: each
    /// position draws from its own RNG stream split by
    /// `(request.batch, position)`, independent of how many positions
    /// came before it under what budget. A rejected batch returns no
    /// partial answers — the deterministic serving contract is
    /// all-or-nothing.
    pub fn run_batch_within(
        &self,
        request: &QueryRequest<P>,
        budget: &DeadlineBudget,
    ) -> Result<BatchResponse, EngineError> {
        let index = &self.generation.index;
        let batch_seed = split_seed(
            index.config().seed,
            STREAM_BATCH_BASE.wrapping_add(request.batch),
        );
        let total = request.queries.len();
        let mut answers = Vec::with_capacity(total);
        for (pos, query) in request.queries.iter().enumerate() {
            if budget.expired() {
                return Err(EngineError::DeadlineExceeded {
                    completed: pos,
                    total,
                });
            }
            let mut rng = stream_rng(batch_seed, pos as u64);
            let (id, stats) = index.sample(query, &mut rng);
            answers.push(Answer {
                id,
                stats,
                via_cache: false,
            });
        }
        Ok(BatchResponse {
            answers,
            generation: self.generation.number,
        })
    }
}
