//! Property tests for the bounded HTTP parser: arbitrary bytes must
//! never panic and always yield a typed outcome, and every rejection
//! maps to its pinned status code.

use fairnn_server::{parse_head, ParseError};
use proptest::prelude::*;

const CAP: usize = 512;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The whole contract in one property: any byte soup, any cap, the
    /// parser returns a request, "need more", or a typed error — and a
    /// returned head is internally consistent.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..1024), cap in 0usize..1024) {
        match parse_head(&bytes, cap) {
            Ok(Some(head)) => {
                prop_assert!(head.head_len <= bytes.len());
                prop_assert!(head.head_len <= cap + 4, "head within cap (+CRLFCRLF)");
                prop_assert!(!head.method.is_empty());
                prop_assert!(head.path.starts_with('/'));
                // The typed accessors must not panic either.
                let _ = head.body_len();
                let _ = head.wants_close();
                let _ = head.header("content-length");
            }
            Ok(None) => prop_assert!(bytes.len() <= cap, "may only wait while under the cap"),
            Err(err) => {
                prop_assert!(matches!(err.status(), 400 | 413 | 431));
                prop_assert!(!err.reason().is_empty());
            }
        }
    }

    /// Structured garbage: a plausible prefix followed by noise still
    /// never panics (catches parser states plain noise rarely reaches).
    #[test]
    fn mangled_requests_never_panic(
        which in 0usize..3,
        noise in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let prefixes: [&[u8]; 3] = [
            b"GET /healthz HTTP/1.1\r\n",
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 10\r\n",
            b"POST /v1/commit HTTP/1.1\r\nTransfer-Encoding: chunked\r\n",
        ];
        let mut bytes = prefixes[which].to_vec();
        bytes.extend_from_slice(&noise);
        let _ = parse_head(&bytes, CAP);
    }

    /// Incremental feeding is monotone: once a prefix parses to a head,
    /// every longer buffer parses to the same head (the connection loop
    /// feeds the parser growing buffers).
    #[test]
    fn parse_is_prefix_stable(extra in proptest::collection::vec(0u8..=255, 0..64)) {
        let request = b"POST /v1/query HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let head = parse_head(request, CAP).unwrap().expect("complete head");
        let mut longer = request.to_vec();
        longer.extend_from_slice(&extra);
        let again = parse_head(&longer, CAP).unwrap().expect("still complete");
        prop_assert_eq!(head, again);
    }
}

/// Pinned rejection fixtures: the exact byte streams the fault suite
/// sends and the status each must map to. (The 408 timeout fixture is
/// socket-level and lives in the integration fault suite — timeouts are
/// a property of the connection loop's clock, not of the bytes.)
#[test]
fn rejection_status_fixtures() {
    // 431: head bigger than the cap, with and without a terminator.
    let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2 * CAP));
    assert_eq!(
        parse_head(long_path.as_bytes(), CAP),
        Err(ParseError::HeadTooLarge)
    );
    assert_eq!(ParseError::HeadTooLarge.status(), 431);

    // 413 is decided from the declared length, before body bytes flow.
    let head = parse_head(
        b"POST /v1/query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
        CAP,
    )
    .unwrap()
    .unwrap();
    assert_eq!(head.body_len().unwrap(), 999_999);
    assert_eq!(ParseError::BodyTooLarge.status(), 413);

    // 400: garbage, a bad version, chunked transfer coding.
    for fixture in [
        &b"\x00\x01\x02\x03 garbage \r\n\r\n"[..],
        b"GET / HTTP/9.9\r\n\r\n",
        b"FETCH!? / HTTP/1.1\r\n\r\n",
    ] {
        let err = parse_head(fixture, CAP).expect_err("fixture must be rejected");
        assert_eq!(err.status(), 400, "fixture {fixture:?}");
    }
    let chunked = parse_head(
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        CAP,
    )
    .unwrap()
    .unwrap();
    assert_eq!(chunked.body_len().unwrap_err().status(), 400);
}
