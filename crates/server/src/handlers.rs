//! Typed endpoint handlers: each one turns a parsed request into a
//! [`Response`] using the engine's own API types.
//!
//! The wire bodies of the data plane are the engine's snapshot-codec
//! encodings — [`QueryRequest`] in / [`BatchResponse`](fairnn_engine::BatchResponse) out on
//! `/v1/query`, [`WriteBatch`] in on `/v1/commit` — so the network
//! format and the write-ahead-log format are one and the same (see
//! `fairnn_engine::api_types`). The control plane (`/healthz`,
//! `/metrics`, commit receipts) speaks human-readable JSON/Prometheus
//! text instead, because its consumers are people and scrapers.

use crate::admission::Control;
use crate::config::ServerConfig;
use crate::http::{Head, Response};
use fairnn_core::predicate::Nearness;
use fairnn_engine::{
    DeadlineBudget, EngineError, EngineReader, EngineWriter, QueryRequest, WriteBatch,
};
use fairnn_lsh::{HasherBankCodec, LshHasher};
use fairnn_obs::{LazyCounter, LazyHistogram, Timer};
use fairnn_snapshot::{Codec, Decoder, Encoder};
use std::sync::{Arc, Mutex};

/// Requests answered, by the time the response was handed to the socket
/// writer.
pub(crate) static REQUESTS_TOTAL: LazyCounter = LazyCounter::new(
    "server_requests_total",
    "HTTP requests answered (any status)",
);

/// `/v1/query` batches rejected because their deadline budget expired.
pub(crate) static DEADLINE_EXPIRED_TOTAL: LazyCounter = LazyCounter::new(
    "server_deadline_expired_total",
    "query batches rejected with 504 because the deadline budget expired",
);

/// End-to-end handler latency (parse excluded, serialization included).
pub(crate) static REQUEST_NS: LazyHistogram = LazyHistogram::new(
    "server_request_ns",
    "handler wall time per request in nanoseconds",
);

/// Everything the handlers share: the engine's two halves plus the
/// server's own run state.
#[derive(Debug)]
pub(crate) struct AppState<P, H, N> {
    /// The read path: pin-per-request generational reads.
    pub reader: EngineReader<P, H, N>,
    /// The write path: commits are serialized through this lock — the
    /// engine writer is single-owner by design, so the server makes the
    /// serialization explicit rather than pretending to parallelize it.
    pub writer: Mutex<EngineWriter<P, H, N>>,
    /// The server configuration (deadline caps feed the query handler).
    pub config: ServerConfig,
    /// Drain flags and the admitted-connection count (feeds `/healthz`).
    pub control: Arc<Control>,
}

/// `GET /healthz`: liveness plus the two degraded-state signals —
/// generation staleness and admission saturation — as JSON.
pub(crate) fn healthz<P, H, N>(state: &AppState<P, H, N>) -> Response {
    let pin = state.reader.pin();
    let status = if state.control.is_draining() {
        "draining"
    } else {
        "ok"
    };
    let body = format!(
        concat!(
            "{{\"status\":\"{}\",\"generation\":{},\"generation_age_ms\":{},",
            "\"active_connections\":{},\"max_connections\":{}}}"
        ),
        status,
        pin.generation(),
        pin.generation_age_ns() / 1_000_000,
        state.control.active(),
        state.config.max_connections,
    );
    Response::json(200, body)
}

/// `GET /metrics`: the process-global registry in Prometheus text
/// format.
pub(crate) fn metrics() -> Response {
    Response::new(200)
        .with_header(
            "Content-Type",
            "text/plain; version=0.0.4; charset=utf-8".to_string(),
        )
        .with_body(fairnn_obs::global().render_prometheus().into_bytes())
}

/// `POST /v1/query`: decode a [`QueryRequest`], run it against a fresh
/// epoch pin under the request's deadline budget, encode the
/// [`fairnn_engine::BatchResponse`].
pub(crate) fn query<P, H, N>(state: &AppState<P, H, N>, head: &Head, body: &[u8]) -> Response
where
    P: Codec,
    H: LshHasher<P>,
    N: Nearness<P>,
{
    let budget = match deadline_budget(head, &state.config) {
        Ok(budget) => budget,
        Err(resp) => return resp,
    };
    let mut dec = Decoder::new(body);
    let request: QueryRequest<P> = match QueryRequest::decode(&mut dec).and_then(|r| {
        dec.finish()?;
        Ok(r)
    }) {
        Ok(request) => request,
        Err(err) => return Response::text(400, &format!("malformed query body: {err}")),
    };

    let pin = state.reader.pin();
    match pin.run_batch_within(&request, &budget) {
        Ok(response) => Response::binary(200, encode(&response)),
        Err(EngineError::DeadlineExceeded { completed, total }) => {
            DEADLINE_EXPIRED_TOTAL.inc();
            Response::text(
                504,
                &format!("deadline budget expired after {completed} of {total} queries"),
            )
            .with_retry_after(1)
        }
        Err(err) => Response::text(500, &format!("query failed: {err}")),
    }
}

/// `POST /v1/commit`: decode a [`WriteBatch`], commit it through the
/// serialized writer, answer with a JSON receipt.
pub(crate) fn commit<P, H, N>(state: &AppState<P, H, N>, body: &[u8]) -> Response
where
    P: Codec + Clone + Send + Sync,
    H: HasherBankCodec + LshHasher<P> + Clone + Send + Sync,
    N: Codec + Nearness<P> + Clone + Send + Sync,
{
    let mut dec = Decoder::new(body);
    let batch: WriteBatch<P> = match WriteBatch::decode(&mut dec).and_then(|b| {
        dec.finish()?;
        Ok(b)
    }) {
        Ok(batch) => batch,
        Err(err) => return Response::text(400, &format!("malformed commit body: {err}")),
    };

    // A poisoned lock means a previous commit panicked mid-protocol; the
    // writer's state can no longer be trusted, so refuse further writes
    // instead of guessing (reads keep serving the last good generation).
    let mut writer = match state.writer.lock() {
        Ok(guard) => guard,
        Err(_) => {
            return Response::text(503, "writer unavailable after an earlier failure")
                .with_retry_after(30)
        }
    };
    match writer.commit(batch) {
        Ok(receipt) => {
            let assigned: Vec<String> =
                receipt.assigned.iter().map(|id| id.0.to_string()).collect();
            Response::json(
                200,
                format!(
                    "{{\"seq\":{},\"generation\":{},\"assigned\":[{}],\"wal_bytes\":{}}}",
                    receipt.seq,
                    receipt.generation,
                    assigned.join(","),
                    receipt.wal_bytes
                ),
            )
        }
        Err(EngineError::UnknownId(id)) => {
            Response::text(409, &format!("delete references unknown point id {id}"))
        }
        Err(err) => Response::text(500, &format!("commit failed: {err}")),
    }
}

/// `POST /admin/drain`: start a graceful drain (stop accepting, let
/// in-flight finish). Answers `202` immediately; progress is observable
/// through `/healthz` until this connection too is drained.
pub(crate) fn drain<P, H, N>(state: &AppState<P, H, N>) -> Response {
    state.control.begin_drain();
    Response::text(202, "draining: accepting stopped, in-flight completing")
}

/// The deadline budget for one query request: `x-deadline-ms` capped by
/// the operator's maximum, or the configured default when absent. A
/// client-sent 0 is taken literally (an already-expired budget → `504`);
/// a configured default of 0 means "no default budget".
fn deadline_budget(head: &Head, config: &ServerConfig) -> Result<DeadlineBudget, Response> {
    match head.header("x-deadline-ms") {
        None => Ok(if config.default_deadline_ms == 0 {
            DeadlineBudget::unlimited()
        } else {
            DeadlineBudget::from_now_ms(config.default_deadline_ms)
        }),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Ok(DeadlineBudget::from_now_ms(ms.min(config.max_deadline_ms))),
            Err(_) => Err(Response::text(400, "x-deadline-ms is not a number")),
        },
    }
}

/// Encodes any codec value to its wire bytes.
pub(crate) fn encode<T: Codec>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Times one handler call into [`REQUEST_NS`] and counts it.
pub(crate) fn instrumented(f: impl FnOnce() -> Response) -> Response {
    let timer = Timer::start(&REQUEST_NS);
    let response = f();
    drop(timer);
    REQUESTS_TOTAL.inc();
    response
}
