//! A hand-rolled, bounded HTTP/1.1 subset: exactly what the engine's
//! routes need and nothing more.
//!
//! The parser is a pure function over a byte buffer — no I/O, no
//! allocation proportional to anything but the (capped) input — so the
//! proptest suite can drive it with arbitrary bytes and pin the
//! contract: *every* input yields a typed outcome (a request, "need more
//! bytes", or a [`ParseError`] carrying its rejection status), never a
//! panic. Timeout detection (`408`) lives in the connection loop, which
//! owns the clock; size rejection (`431`/`413`) lives here, because the
//! caps are properties of the byte stream alone.

use std::io::{self, Read, Write};

/// Why a request was rejected before reaching a route, with the HTTP
/// status each rejection maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request head exceeded the configured cap → `431`.
    HeadTooLarge,
    /// `Content-Length` exceeded the configured body cap → `413`.
    BodyTooLarge,
    /// The bytes are not a well-formed HTTP/1.x request → `400`.
    Malformed(&'static str),
}

impl ParseError {
    /// The HTTP status code this rejection is answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::Malformed(_) => 400,
        }
    }

    /// Human-readable reason, used as the response body.
    pub fn reason(&self) -> &'static str {
        match self {
            ParseError::HeadTooLarge => "request head exceeds the configured cap",
            ParseError::BodyTooLarge => "request body exceeds the configured cap",
            ParseError::Malformed(msg) => msg,
        }
    }
}

/// A parsed request head: the request line plus headers, with the byte
/// length of the head (through the blank line) so the caller knows where
/// the body starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path plus optional query string), as sent.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Bytes consumed by the head, including the terminating blank line.
    pub head_len: usize,
}

impl Head {
    /// First value of the (lower-case) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length: `Content-Length` parsed, 0 when absent.
    /// Malformed values and chunked transfer coding are rejected — the
    /// bounded reader refuses bodies whose size it cannot know upfront.
    pub fn body_len(&self) -> Result<usize, ParseError> {
        if self.header("transfer-encoding").is_some() {
            return Err(ParseError::Malformed(
                "transfer codings are not supported; send Content-Length",
            ));
        }
        match self.header("content-length") {
            None => Ok(0),
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| ParseError::Malformed("Content-Length is not a number")),
        }
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Attempts to parse one request head from the front of `buf`.
///
/// * `Ok(Some(head))` — a complete head; the body (if any) starts at
///   `head.head_len`.
/// * `Ok(None)` — no blank line yet and the buffer is still under
///   `max_head_bytes`: read more.
/// * `Err(_)` — the bytes can never become an acceptable request.
pub fn parse_head(buf: &[u8], max_head_bytes: usize) -> Result<Option<Head>, ParseError> {
    let window = &buf[..buf.len().min(max_head_bytes.saturating_add(4))];
    let Some(head_end) = find_blank_line(window) else {
        // No terminator in the capped window: either wait for more bytes
        // or give up because the cap is already exhausted.
        if buf.len() > max_head_bytes {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > max_head_bytes {
        return Err(ParseError::HeadTooLarge);
    }

    let head = &window[..head_end];
    let text = std::str::from_utf8(head)
        .map_err(|_| ParseError::Malformed("request head is not valid UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or(ParseError::Malformed("empty request head"))?;

    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(ParseError::Malformed("request line has no method"))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or(ParseError::Malformed("request target must start with /"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("request line has no HTTP version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("request line has trailing fields"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the split's trailing empty piece before the blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header line has no colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("header name is empty or has spaces"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    Ok(Some(Head {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        head_len: head_end + 4,
    }))
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the status codes the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An outgoing response: status, extra headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Connection` (which the
    /// writer owns), e.g. `Content-Type`, `Retry-After`.
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty-bodied response.
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response with `msg` plus a trailing newline.
    pub fn text(status: u16, msg: &str) -> Self {
        Self::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8".to_string())
            .with_body(format!("{msg}\n").into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: String) -> Self {
        Self::new(status)
            .with_header("Content-Type", "application/json".to_string())
            .with_body(body.into_bytes())
    }

    /// An `application/octet-stream` response (the snapshot-codec wire
    /// bodies of `/v1/query`).
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Self::new(status)
            .with_header("Content-Type", "application/octet-stream".to_string())
            .with_body(body)
    }

    /// Appends a header (builder style).
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// Replaces the body (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Adds a `Retry-After: <secs>` backoff hint (builder style).
    pub fn with_retry_after(self, secs: u64) -> Self {
        self.with_header("Retry-After", secs.to_string())
    }

    /// Serializes the response to `w`, adding `Content-Length` and a
    /// `Connection: close`/`keep-alive` header.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\n",
                self.status,
                status_reason(self.status)
            )
            .as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if close {
            b"Connection: close\r\n"
        } else {
            b"Connection: keep-alive\r\n"
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        w.write_all(&out)?;
        w.flush()
    }
}

/// A parsed response, for the loopback clients in the tests and the
/// bench load generator (the server itself never reads responses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of the (lower-case) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one `Content-Length`-framed response from `r` (blocking; the
/// caller sets socket timeouts). Errors on EOF before a full response.
pub fn read_response(r: &mut impl Read) -> io::Result<ClientResponse> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(end) = find_blank_line(&buf) {
            break end;
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a full response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 1024;

    #[test]
    fn parses_a_minimal_request() {
        let head = parse_head(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", CAP)
            .unwrap()
            .unwrap();
        assert_eq!(head.method, "GET");
        assert_eq!(head.path, "/healthz");
        assert_eq!(head.header("host"), Some("x"));
        assert_eq!(head.head_len, 34);
        assert_eq!(head.body_len().unwrap(), 0);
        assert!(!head.wants_close());
    }

    #[test]
    fn incomplete_heads_ask_for_more_bytes() {
        assert_eq!(parse_head(b"", CAP), Ok(None));
        assert_eq!(parse_head(b"POST /v1/query HTT", CAP), Ok(None));
        assert_eq!(parse_head(b"GET / HTTP/1.1\r\nHost: x\r\n", CAP), Ok(None));
    }

    #[test]
    fn oversized_heads_are_431() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(CAP));
        assert_eq!(
            parse_head(long.as_bytes(), CAP),
            Err(ParseError::HeadTooLarge)
        );
        // Cap-sized garbage with no terminator is also rejected, not
        // "need more": the head can never fit anymore.
        let garbage = vec![b'x'; CAP + 1];
        assert_eq!(parse_head(&garbage, CAP), Err(ParseError::HeadTooLarge));
        assert_eq!(ParseError::HeadTooLarge.status(), 431);
    }

    #[test]
    fn malformed_requests_are_400() {
        for bad in [
            &b"get / HTTP/1.1\r\n\r\n"[..],  // lower-case method
            b"GET noslash HTTP/1.1\r\n\r\n", // bad target
            b"GET / HTTP/2.0\r\n\r\n",       // unsupported version
            b"GET / HTTP/1.1 extra\r\n\r\n", // trailing fields
            b"GET /\r\n\r\n",                // no version at all
            b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n", // not UTF-8
        ] {
            let err = parse_head(bad, CAP).expect_err("must reject");
            assert_eq!(err.status(), 400, "case {:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn body_length_rules() {
        let head = parse_head(
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 42\r\n\r\n",
            CAP,
        )
        .unwrap()
        .unwrap();
        assert_eq!(head.body_len().unwrap(), 42);

        let head = parse_head(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", CAP)
            .unwrap()
            .unwrap();
        assert_eq!(head.body_len().unwrap_err().status(), 400);

        let head = parse_head(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            CAP,
        )
        .unwrap()
        .unwrap();
        assert_eq!(head.body_len().unwrap_err().status(), 400);
        assert_eq!(ParseError::BodyTooLarge.status(), 413);
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let resp = Response::text(503, "shedding")
            .with_retry_after(2)
            .with_header("X-Extra", "1".to_string());
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let parsed = read_response(&mut &wire[..]).unwrap();
        assert_eq!(parsed.status, 503);
        assert_eq!(parsed.header("retry-after"), Some("2"));
        assert_eq!(parsed.header("connection"), Some("close"));
        assert_eq!(parsed.body, b"shedding\n");
    }
}
