//! The route table: `(method, path) → handler`, with the two generic
//! failure answers (`404`, `405`) in one place.

use crate::handlers::{self, AppState};
use crate::http::{Head, Response};
use fairnn_core::predicate::Nearness;
use fairnn_lsh::{HasherBankCodec, LshHasher};
use fairnn_snapshot::Codec;

/// Dispatches one parsed request to its handler.
///
/// Paths are matched exactly (no prefix routing; query strings are part
/// of the target and therefore miss — the API takes its inputs in
/// bodies and headers by design, so nothing meaningful is lost).
pub(crate) fn dispatch<P, H, N>(state: &AppState<P, H, N>, head: &Head, body: &[u8]) -> Response
where
    P: Codec + Clone + Send + Sync,
    H: HasherBankCodec + LshHasher<P> + Clone + Send + Sync,
    N: Codec + Nearness<P> + Clone + Send + Sync,
{
    handlers::instrumented(|| match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => handlers::healthz(state),
        ("GET", "/metrics") => handlers::metrics(),
        ("POST", "/v1/query") => handlers::query(state, head, body),
        ("POST", "/v1/commit") => handlers::commit(state, body),
        ("POST", "/admin/drain") => handlers::drain(state),
        // Debug builds only: a route that panics on purpose, so the
        // fault-injection suite can prove panic isolation over the wire.
        #[cfg(debug_assertions)]
        ("POST", "/admin/panic") => panic!("test-injected handler panic"),
        (_, "/healthz" | "/metrics" | "/v1/query" | "/v1/commit" | "/admin/drain") => {
            Response::text(405, "method not allowed for this route")
        }
        _ => Response::text(404, "no such route"),
    })
}
