//! Admission control: the bounded connection budget and the per-client
//! token buckets.
//!
//! Everything here decides *before* a worker is spent on a connection
//! whether the server can afford it. The two levers are a hard cap on
//! admitted connections (beyond it: `503` + `Retry-After`, the load
//! shed) and a per-IP token bucket (beyond it: `429` + `Retry-After`,
//! the fairness backstop that keeps one chatty client from starving the
//! rest). Both run on the accept thread in O(1), so shedding stays cheap
//! exactly when the server is busiest.

use fairnn_obs::{monotonic_ns, LazyGauge};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Mutex;

/// Connections currently admitted (accepted and not yet closed). The
/// `/healthz` saturation signal: compare against the configured cap.
pub(crate) static ACTIVE_CONNECTIONS: LazyGauge = LazyGauge::new(
    "server_active_connections",
    "connections currently admitted by the server (in-flight plus queued)",
);

/// Shared run state of one server: the drain flags plus the admitted-
/// connection count. Deliberately non-generic so [`crate::ServerHandle`]
/// stays non-generic too.
#[derive(Debug, Default)]
pub(crate) struct Control {
    /// Set once to stop accepting; in-flight connections finish their
    /// current exchange and close.
    draining: AtomicBool,
    /// Set when the drain deadline expires: connections abort even
    /// mid-exchange at the next poll slice.
    force_close: AtomicBool,
    /// Admitted connections (mirrors the gauge, readable without the
    /// registry).
    active: AtomicI64,
}

impl Control {
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    pub(crate) fn force_close(&self) {
        self.force_close.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_force_closed(&self) -> bool {
        self.force_close.load(Ordering::SeqCst)
    }

    pub(crate) fn active(&self) -> i64 {
        self.active.load(Ordering::SeqCst)
    }
}

/// An RAII admission slot, owned so it can ride into a worker closure
/// for the connection's whole lifetime. The slot (and the gauge unit)
/// is released on drop — panic or not, which is what keeps a crashing
/// connection from leaking capacity.
#[derive(Debug)]
pub(crate) struct OwnedPermit {
    control: std::sync::Arc<Control>,
}

impl OwnedPermit {
    /// Tries to admit one connection under `cap`; `None` is the shed
    /// signal (`503` + `Retry-After`).
    pub(crate) fn try_admit(control: &std::sync::Arc<Control>, cap: usize) -> Option<Self> {
        let prev = control.active.fetch_add(1, Ordering::SeqCst);
        if prev >= cap as i64 {
            control.active.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        ACTIVE_CONNECTIONS.add(1);
        Some(Self {
            control: std::sync::Arc::clone(control),
        })
    }
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        self.control.active.fetch_sub(1, Ordering::SeqCst);
        ACTIVE_CONNECTIONS.add(-1);
    }
}

/// A token bucket per client IP: `rate` tokens per second refill,
/// `burst` capacity, one token per connection.
///
/// Time comes from [`fairnn_obs::monotonic_ns`] — the audited clock
/// seam — so tests drive the buckets deterministically through a
/// `ManualClock`. A `rate` of 0 disables limiting entirely (every
/// `check` admits).
#[derive(Debug)]
pub(crate) struct RateLimiter {
    rate_per_sec: u64,
    burst: u64,
    buckets: Mutex<BTreeMap<IpAddr, Bucket>>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Tokens scaled by 1e9 (nanotokens), so refill arithmetic stays in
    /// integers: one token = 1_000_000_000 nanotokens.
    nano_tokens: u64,
    last_refill_ns: u64,
}

const NANO: u64 = 1_000_000_000;

impl RateLimiter {
    pub(crate) fn new(rate_per_sec: u64, burst: u64) -> Self {
        Self {
            rate_per_sec,
            burst: burst.max(1),
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    /// Spends one token for `ip` if available. Returns `Ok(())` or the
    /// suggested `Retry-After` backoff in whole seconds (≥ 1).
    pub(crate) fn check(&self, ip: IpAddr) -> Result<(), u64> {
        if self.rate_per_sec == 0 {
            return Ok(());
        }
        let now = monotonic_ns();
        let cap = self.burst.saturating_mul(NANO);
        let mut buckets = match self.buckets.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let bucket = buckets.entry(ip).or_insert(Bucket {
            nano_tokens: cap,
            last_refill_ns: now,
        });
        let elapsed = now.saturating_sub(bucket.last_refill_ns);
        let refill = elapsed.saturating_mul(self.rate_per_sec);
        bucket.nano_tokens = bucket.nano_tokens.saturating_add(refill).min(cap);
        bucket.last_refill_ns = now;
        if bucket.nano_tokens >= NANO {
            bucket.nano_tokens -= NANO;
            Ok(())
        } else {
            // Whole seconds until one full token accrues, rounded up:
            // the bucket refills rate·1e9 nanotokens per second.
            let deficit = NANO - bucket.nano_tokens;
            let secs = deficit.div_ceil(self.rate_per_sec.saturating_mul(NANO));
            Err(secs.max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    #[test]
    fn permits_enforce_the_cap_and_release_on_drop() {
        let control = Arc::new(Control::default());
        let a = OwnedPermit::try_admit(&control, 2).expect("slot 1");
        let _b = OwnedPermit::try_admit(&control, 2).expect("slot 2");
        assert!(
            OwnedPermit::try_admit(&control, 2).is_none(),
            "cap reached sheds"
        );
        assert_eq!(control.active(), 2);
        drop(a);
        assert_eq!(control.active(), 1);
        assert!(
            OwnedPermit::try_admit(&control, 2).is_some(),
            "released slot readmits"
        );
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let rl = RateLimiter::new(0, 4);
        let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        for _ in 0..1000 {
            assert!(rl.check(ip).is_ok());
        }
    }

    #[test]
    fn burst_exhausts_then_backs_off() {
        let rl = RateLimiter::new(1, 3);
        let ip = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let mut admitted = 0;
        let mut denied = 0;
        // The burst drains in far less than a second of real time, so at
        // most `burst` (+1 for a refill race on a slow machine) pass.
        for _ in 0..50 {
            match rl.check(ip) {
                Ok(()) => admitted += 1,
                Err(secs) => {
                    assert!(secs >= 1, "backoff hint is at least one second");
                    denied += 1;
                }
            }
        }
        assert!(admitted >= 3, "the full burst is admitted");
        assert!(admitted <= 4, "beyond the burst is denied");
        assert!(denied >= 46);
    }

    #[test]
    fn distinct_clients_have_distinct_buckets() {
        let rl = RateLimiter::new(1, 1);
        let a = IpAddr::V4(Ipv4Addr::new(127, 0, 0, 1));
        let b = IpAddr::V4(Ipv4Addr::new(127, 0, 0, 2));
        assert!(rl.check(a).is_ok());
        assert!(rl.check(a).is_err(), "a's bucket is spent");
        assert!(rl.check(b).is_ok(), "b is unaffected");
    }
}
