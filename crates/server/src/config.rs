//! Server configuration: every robustness knob in one struct.
//!
//! The defaults are deliberately conservative — small caps, short
//! deadlines — because every limit here is a promise the fault-injection
//! suite holds the server to: a cap that does not exist cannot shed load.
//! Tests shrink the timeouts to keep the suite fast; production fronts
//! raise them.

/// All tunables of the [`serve`](crate::serve) loop.
///
/// Build one with [`ServerConfig::default`] and override fields with the
/// `with_*` builders. Sizes are bytes, times are milliseconds.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections (the accept loop runs on its
    /// own extra thread).
    pub workers: usize,
    /// Hard cap on admitted connections (in-flight plus queued for a
    /// worker). Beyond it the accept loop sheds with `503` +
    /// `Retry-After` — the bounded admission queue.
    pub max_connections: usize,
    /// Maximum bytes of a request head (request line + headers); beyond
    /// it the request is rejected with `431`.
    pub max_head_bytes: usize,
    /// Maximum bytes of a request body; a larger `Content-Length` is
    /// rejected with `413` before the body is read.
    pub max_body_bytes: usize,
    /// Budget for reading one request head, measured from its first
    /// byte — a trickling (slowloris) head hits this and gets `408`.
    pub head_timeout_ms: u64,
    /// Budget for reading one request body after the head.
    pub body_timeout_ms: u64,
    /// How long a keep-alive connection may sit idle (no bytes of a next
    /// request) before the server closes it quietly.
    pub idle_timeout_ms: u64,
    /// Socket write timeout for responses.
    pub write_timeout_ms: u64,
    /// Deadline budget applied to `/v1/query` batches when the client
    /// sends no `x-deadline-ms` header.
    pub default_deadline_ms: u64,
    /// Upper bound on the client-requested `x-deadline-ms` (a client
    /// cannot buy more time than the operator allows).
    pub max_deadline_ms: u64,
    /// How long a graceful drain waits for in-flight connections before
    /// force-closing the stragglers.
    pub drain_deadline_ms: u64,
    /// Token-bucket refill rate per client IP, in requests per second.
    /// `0` disables rate limiting.
    pub rate_limit_per_sec: u64,
    /// Token-bucket burst capacity per client IP.
    pub rate_limit_burst: u64,
    /// Granularity of the read poll loop: the connection re-checks its
    /// deadlines and the drain flag at this cadence, so drains are
    /// noticed promptly even by idle connections.
    pub poll_slice_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_connections: 8,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            head_timeout_ms: 2_000,
            body_timeout_ms: 2_000,
            idle_timeout_ms: 5_000,
            write_timeout_ms: 2_000,
            default_deadline_ms: 1_000,
            max_deadline_ms: 10_000,
            drain_deadline_ms: 5_000,
            rate_limit_per_sec: 0,
            rate_limit_burst: 8,
            poll_slice_ms: 20,
        }
    }
}

impl ServerConfig {
    /// Replaces the worker count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the admitted-connection cap (min 1).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Replaces the head/body size caps.
    pub fn with_size_caps(mut self, head: usize, body: usize) -> Self {
        self.max_head_bytes = head;
        self.max_body_bytes = body;
        self
    }

    /// Replaces the head/body/idle/write timeouts in one call (tests
    /// shrink them all together to keep fault injection fast).
    pub fn with_io_timeouts_ms(mut self, head: u64, body: u64, idle: u64, write: u64) -> Self {
        self.head_timeout_ms = head;
        self.body_timeout_ms = body;
        self.idle_timeout_ms = idle;
        self.write_timeout_ms = write;
        self
    }

    /// Replaces the default and maximum per-request deadline budgets.
    pub fn with_deadlines_ms(mut self, default: u64, max: u64) -> Self {
        self.default_deadline_ms = default;
        self.max_deadline_ms = max;
        self
    }

    /// Replaces the drain deadline.
    pub fn with_drain_deadline_ms(mut self, ms: u64) -> Self {
        self.drain_deadline_ms = ms;
        self
    }

    /// Enables per-IP token-bucket rate limiting.
    pub fn with_rate_limit(mut self, per_sec: u64, burst: u64) -> Self {
        self.rate_limit_per_sec = per_sec;
        self.rate_limit_burst = burst.max(1);
        self
    }

    /// Replaces the read-poll slice (min 1 ms).
    pub fn with_poll_slice_ms(mut self, ms: u64) -> Self {
        self.poll_slice_ms = ms.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_override_and_clamp() {
        let cfg = ServerConfig::default()
            .with_workers(0)
            .with_max_connections(0)
            .with_size_caps(100, 200)
            .with_io_timeouts_ms(1, 2, 3, 4)
            .with_deadlines_ms(5, 6)
            .with_drain_deadline_ms(7)
            .with_rate_limit(9, 0)
            .with_poll_slice_ms(0);
        assert_eq!(cfg.workers, 1, "worker floor");
        assert_eq!(cfg.max_connections, 1, "connection floor");
        assert_eq!((cfg.max_head_bytes, cfg.max_body_bytes), (100, 200));
        assert_eq!(cfg.head_timeout_ms, 1);
        assert_eq!(cfg.body_timeout_ms, 2);
        assert_eq!(cfg.idle_timeout_ms, 3);
        assert_eq!(cfg.write_timeout_ms, 4);
        assert_eq!((cfg.default_deadline_ms, cfg.max_deadline_ms), (5, 6));
        assert_eq!(cfg.drain_deadline_ms, 7);
        assert_eq!((cfg.rate_limit_per_sec, cfg.rate_limit_burst), (9, 1));
        assert_eq!(cfg.poll_slice_ms, 1, "poll slice floor");
    }
}
