//! The listener/worker core: accept, admit, serve, drain.
//!
//! One extra thread runs the accept loop on a non-blocking listener;
//! admitted connections are dispatched to a fixed
//! [`fairnn_parallel::ThreadPool`]. Robustness decisions all happen at
//! the edges:
//!
//! * **admission** (accept thread): per-IP token bucket → `429`, then
//!   the bounded connection budget → `503` + `Retry-After`. Shedding is
//!   O(1) and never touches a worker.
//! * **reading** (worker): all socket reads run in short poll slices,
//!   so every wait simultaneously watches its own deadline (idle, head,
//!   body) *and* the drain flags. A trickling head gets `408`; a quiet
//!   keep-alive connection is closed at the idle deadline; a
//!   force-closed drain aborts at the next slice.
//! * **handling** (worker): the route dispatch runs under
//!   `catch_unwind`, so a panicking handler costs one `500` and one
//!   connection, never the server.
//! * **drain** ([`ServerHandle::join`]): stop accepting, let in-flight
//!   exchanges finish within the drain deadline, then force-close the
//!   stragglers and join every thread.

use crate::admission::{Control, OwnedPermit, RateLimiter};
use crate::config::ServerConfig;
use crate::handlers::AppState;
use crate::http::{parse_head, Head, Response};
use crate::routes::dispatch;
use fairnn_core::predicate::Nearness;
use fairnn_engine::EngineWriter;
use fairnn_lsh::{HasherBankCodec, LshHasher};
use fairnn_obs::{monotonic_ns, LazyCounter};
use fairnn_parallel::ThreadPool;
use fairnn_snapshot::Codec;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Connections shed with `503` because the admission budget was full.
static SHED_TOTAL: LazyCounter = LazyCounter::new(
    "server_shed_total",
    "connections rejected with 503 because the admission budget was full",
);

/// Connections rejected with `429` by the per-IP token bucket.
static RATE_LIMITED_TOTAL: LazyCounter = LazyCounter::new(
    "server_rate_limited_total",
    "connections rejected with 429 by per-client rate limiting",
);

/// Handler panics turned into `500`s (the server survived each one).
static PANICS_TOTAL: LazyCounter = LazyCounter::new(
    "server_handler_panics_total",
    "handler panics isolated to a 500 response",
);

/// Starts serving `writer`'s engine on `addr`.
///
/// Takes ownership of the [`EngineWriter`] — the server *is* the
/// single-writer process from here on; commits arrive through
/// `POST /v1/commit` and reads through per-request epoch pins. Enables
/// process observability (the `/metrics` endpoint is pointless without
/// it). Binds, then returns immediately; serving runs on `workers + 1`
/// pool threads until the returned [`ServerHandle`] drains.
pub fn serve<P, H, N>(
    writer: EngineWriter<P, H, N>,
    config: ServerConfig,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle>
where
    P: Codec + Clone + Send + Sync + 'static,
    H: HasherBankCodec + LshHasher<P> + Clone + Send + Sync + 'static,
    N: Codec + Nearness<P> + Clone + Send + Sync + 'static,
{
    fairnn_obs::set_enabled(true);
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let control = Arc::new(Control::default());
    let state = Arc::new(AppState {
        reader: writer.reader(),
        writer: Mutex::new(writer),
        config: config.clone(),
        control: Arc::clone(&control),
    });
    let workers = Arc::new(ThreadPool::new(config.workers));
    let accept_pool = ThreadPool::new(1);
    {
        let workers = Arc::clone(&workers);
        let state = Arc::clone(&state);
        accept_pool.execute(move || accept_loop(listener, state, workers));
    }

    Ok(ServerHandle {
        addr,
        control,
        accept_pool: Some(accept_pool),
        workers: Some(workers),
        drain_deadline_ms: config.drain_deadline_ms,
    })
}

/// The accept loop: admission decisions only, no request parsing.
fn accept_loop<P, H, N>(
    listener: TcpListener,
    state: Arc<AppState<P, H, N>>,
    workers: Arc<ThreadPool>,
) where
    P: Codec + Clone + Send + Sync + 'static,
    H: HasherBankCodec + LshHasher<P> + Clone + Send + Sync + 'static,
    N: Codec + Nearness<P> + Clone + Send + Sync + 'static,
{
    let config = &state.config;
    let limiter = RateLimiter::new(config.rate_limit_per_sec, config.rate_limit_burst);
    let write_timeout = config.write_timeout_ms;
    loop {
        if state.control.is_draining() {
            return; // dropping the listener stops new connections cold
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if let Err(backoff_secs) = limiter.check(peer.ip()) {
                    RATE_LIMITED_TOTAL.inc();
                    reject(
                        stream,
                        Response::text(429, "rate limit exceeded for this client")
                            .with_retry_after(backoff_secs),
                        write_timeout,
                    );
                    continue;
                }
                match OwnedPermit::try_admit(&state.control, config.max_connections) {
                    Some(permit) => {
                        let state = Arc::clone(&state);
                        workers.execute(move || handle_connection(stream, state, permit));
                    }
                    None => {
                        SHED_TOTAL.inc();
                        reject(
                            stream,
                            Response::text(503, "server saturated; back off and retry")
                                .with_retry_after(1),
                            write_timeout,
                        );
                    }
                }
            }
            // Non-blocking accept with nothing pending (or a transient
            // error): nap one millisecond and re-check the drain flag.
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Writes a rejection inline on the accept thread and closes. Failures
/// are ignored — the peer being gone is exactly as good as a delivered
/// rejection.
fn reject(mut stream: TcpStream, response: Response, write_timeout_ms: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(write_timeout_ms.max(1))));
    let _ = response.write_to(&mut stream, true);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One request's worth of progress on a connection.
enum ReadOutcome {
    /// A complete request: head plus exactly `Content-Length` body
    /// bytes.
    Request { head: Head, body: Vec<u8> },
    /// The request must be rejected with this response, then the
    /// connection closed.
    Reject(Response),
    /// Close quietly: clean EOF, idle timeout, drain, or peer gone.
    Close,
}

/// Serves one admitted connection until it closes; the permit rides
/// along and releases the admission slot on every exit path.
fn handle_connection<P, H, N>(
    mut stream: TcpStream,
    state: Arc<AppState<P, H, N>>,
    _permit: OwnedPermit,
) where
    P: Codec + Clone + Send + Sync,
    H: HasherBankCodec + LshHasher<P> + Clone + Send + Sync,
    N: Codec + Nearness<P> + Clone + Send + Sync,
{
    let config = &state.config;
    let _ = stream.set_nodelay(true);
    // One short read timeout for the whole connection: every blocking
    // read becomes a poll slice, and the loops below own the real
    // deadlines on the monotonic clock.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(config.poll_slice_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms.max(1))));

    let mut pending: Vec<u8> = Vec::new();
    loop {
        match read_request(&mut stream, &mut pending, &state) {
            ReadOutcome::Request { head, body } => {
                // Panic isolation: a handler panic costs this connection
                // a 500 and nothing else.
                let (response, panicked) =
                    match catch_unwind(AssertUnwindSafe(|| dispatch(&state, &head, &body))) {
                        Ok(response) => (response, false),
                        Err(_) => {
                            PANICS_TOTAL.inc();
                            (
                                Response::text(500, "internal error: handler panicked"),
                                true,
                            )
                        }
                    };
                let close = head.wants_close() || panicked || state.control.is_draining();
                if response.write_to(&mut stream, close).is_err() || close {
                    break;
                }
            }
            ReadOutcome::Reject(response) => {
                let _ = response.write_to(&mut stream, true);
                break;
            }
            ReadOutcome::Close => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

const READ_CHUNK: usize = 4096;

/// Reads one request off the connection, enforcing the idle, head and
/// body deadlines plus both size caps. `pending` carries pipelined
/// leftover bytes between calls.
fn read_request<P, H, N>(
    stream: &mut TcpStream,
    pending: &mut Vec<u8>,
    state: &AppState<P, H, N>,
) -> ReadOutcome {
    let config = &state.config;
    let control = &state.control;
    let mut chunk = [0u8; READ_CHUNK];

    // Head phase. The head deadline starts at the first byte of *this*
    // request, so a keep-alive connection may idle quietly up to the
    // idle deadline, but once a request starts trickling in (slowloris)
    // it must complete within the head budget or take a 408.
    let idle_start = monotonic_ns();
    let mut head_start = (!pending.is_empty()).then_some(idle_start);
    let head = loop {
        match parse_head(pending, config.max_head_bytes) {
            Ok(Some(head)) => break head,
            Ok(None) => {}
            Err(err) => return ReadOutcome::Reject(Response::text(err.status(), err.reason())),
        }
        if control.is_force_closed() {
            return ReadOutcome::Close;
        }
        let now = monotonic_ns();
        match head_start {
            None => {
                // Waiting for a request to start: drain and idle both
                // end the connection quietly.
                if control.is_draining() {
                    return ReadOutcome::Close;
                }
                if now.saturating_sub(idle_start) > ms_to_ns(config.idle_timeout_ms) {
                    return ReadOutcome::Close;
                }
            }
            Some(started) => {
                if now.saturating_sub(started) > ms_to_ns(config.head_timeout_ms) {
                    return ReadOutcome::Reject(Response::text(
                        408,
                        "request head not received within the deadline",
                    ));
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: clean between requests, malformed mid-head.
                return if pending.is_empty() {
                    ReadOutcome::Close
                } else {
                    ReadOutcome::Reject(Response::text(400, "connection closed mid-head"))
                };
            }
            Ok(n) => {
                if head_start.is_none() {
                    head_start = Some(monotonic_ns());
                }
                pending.extend_from_slice(&chunk[..n]);
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll slice elapsed; loop re-checks deadlines
            }
            Err(_) => return ReadOutcome::Close,
        }
    };

    // Body phase: the length is known upfront (chunked was rejected in
    // `body_len`), so the cap check happens before a single body byte
    // is read.
    let body_len = match head.body_len() {
        Ok(len) => len,
        Err(err) => return ReadOutcome::Reject(Response::text(err.status(), err.reason())),
    };
    if body_len > config.max_body_bytes {
        return ReadOutcome::Reject(
            Response::text(413, "request body exceeds the configured cap")
                .with_header("X-Max-Body-Bytes", config.max_body_bytes.to_string()),
        );
    }
    let total = head.head_len + body_len;
    let body_deadline = monotonic_ns().saturating_add(ms_to_ns(config.body_timeout_ms));
    while pending.len() < total {
        if control.is_force_closed() {
            return ReadOutcome::Close;
        }
        if monotonic_ns() > body_deadline {
            return ReadOutcome::Reject(Response::text(
                408,
                "request body not received within the deadline",
            ));
        }
        match stream.read(&mut chunk) {
            // Mid-request disconnect: the peer can no longer hear any
            // response, so just release the slot and move on.
            Ok(0) => return ReadOutcome::Close,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return ReadOutcome::Close,
        }
    }

    let body = pending[head.head_len..total].to_vec();
    pending.drain(..total);
    ReadOutcome::Request { head, body }
}

fn ms_to_ns(ms: u64) -> u64 {
    ms.saturating_mul(1_000_000)
}

/// How a drain went: returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every in-flight connection finished within the drain
    /// deadline.
    pub completed_within_deadline: bool,
    /// Connections force-closed at the deadline (0 on a clean drain).
    pub forced_connections: i64,
}

/// The running server: address, drain control, and the join that tears
/// everything down.
///
/// Dropping the handle performs a full graceful drain (equivalent to
/// [`ServerHandle::join`], discarding the report), so a server can
/// never outlive its handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    control: Arc<Control>,
    accept_pool: Option<ThreadPool>,
    workers: Option<Arc<ThreadPool>>,
    drain_deadline_ms: u64,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain without waiting: accepting stops, and
    /// keep-alive connections close after their current exchange. Also
    /// reachable over the wire as `POST /admin/drain`.
    pub fn begin_drain(&self) {
        self.control.begin_drain();
    }

    /// Whether a drain has been requested (locally or over the wire).
    pub fn is_draining(&self) -> bool {
        self.control.is_draining()
    }

    /// Currently admitted connections.
    pub fn active_connections(&self) -> i64 {
        self.control.active()
    }

    /// Drains and joins: stop accepting, wait for in-flight connections
    /// up to the drain deadline, force-close stragglers, join every
    /// thread. Idempotent with [`ServerHandle::begin_drain`] — calling
    /// that first (or hitting `/admin/drain`) just means the drain is
    /// already underway when `join` starts waiting.
    pub fn join(mut self) -> DrainReport {
        self.join_inner()
    }

    fn join_inner(&mut self) -> DrainReport {
        self.control.begin_drain();
        // Joining the accept pool both waits for the accept loop to see
        // the flag and drops the listener, so no connection can be
        // admitted after this line.
        drop(self.accept_pool.take());

        let deadline = monotonic_ns().saturating_add(ms_to_ns(self.drain_deadline_ms));
        while self.control.active() > 0 && monotonic_ns() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let leftover = self.control.active();
        if leftover > 0 {
            self.control.force_close();
        }

        if let Some(workers) = self.workers.take() {
            // The accept loop's clone died with the accept pool, so this
            // is the last `Arc`; unwrapping it drops the pool, which
            // closes the queue and joins the workers (their connections
            // exit at the next poll slice once force-closed).
            let mut workers = workers;
            loop {
                match Arc::try_unwrap(workers) {
                    Ok(pool) => {
                        drop(pool);
                        break;
                    }
                    Err(still_shared) => {
                        workers = still_shared;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }

        DrainReport {
            completed_within_deadline: leftover == 0,
            forced_connections: leftover,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.workers.is_some() || self.accept_pool.is_some() {
            let _ = self.join_inner();
        }
    }
}
