//! Overload-safe HTTP/1.1 serving for the fairnn generational engine.
//!
//! This crate is the network boundary of the workspace: the *only*
//! place (enforced by the `net-outside-server` audit rule) where
//! `std::net` appears outside the bench load generator. It fronts a
//! [`fairnn_engine::EngineWriter`] with four routes:
//!
//! | Route | Body in | Body out |
//! |---|---|---|
//! | `POST /v1/query` | snapshot-codec [`fairnn_engine::QueryRequest`] | snapshot-codec [`fairnn_engine::BatchResponse`] |
//! | `POST /v1/commit` | snapshot-codec [`fairnn_engine::WriteBatch`] | JSON commit receipt |
//! | `GET /healthz` | — | JSON liveness + staleness/saturation signals |
//! | `GET /metrics` | — | Prometheus text |
//!
//! (`POST /admin/drain` additionally starts a graceful drain over the
//! wire.)
//!
//! The headline property is *robustness over features*: the server is a
//! std-only, hand-rolled HTTP/1.1 subset whose every limit is explicit
//! and tested. Oversized heads are `431`, oversized bodies `413`,
//! trickled requests `408`, garbage `400` — all pinned by fixtures and
//! a never-panics proptest over arbitrary bytes. Load is shed *before*
//! a worker is spent (`503`/`429` + `Retry-After` from the accept
//! thread), per-request deadline budgets propagate into batch execution
//! (`504` on expiry, with the all-or-nothing determinism contract
//! intact), handler panics are isolated to one `500`, and shutdown is a
//! graceful drain: stop accepting, finish in-flight within a deadline,
//! force-close stragglers, join every thread.
//!
//! The module layout mirrors the related `pod2-client` server tree:
//! [`config`] (tunables), [`http`] (bounded parser + response writer),
//! [`routes`] (dispatch), `handlers` (typed endpoints), [`server`]
//! (listener/worker core), plus [`admission`] for the load-shedding
//! machinery. The engine-facing API types live in
//! `fairnn_engine::api_types` — the server serializes exactly what the
//! write-ahead log stores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod handlers;
pub mod http;
pub mod routes;
pub mod server;

pub use config::ServerConfig;
pub use http::{
    parse_head, read_response, status_reason, ClientResponse, Head, ParseError, Response,
};
pub use server::{serve, DrainReport, ServerHandle};
