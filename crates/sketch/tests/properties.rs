//! Property-based tests of the cardinality estimators.

use fairnn_sketch::{
    BottomKSketch, CardinalityEstimator, DistinctSketch, DistinctSketchParams, HyperLogLog,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn params() -> DistinctSketchParams {
    DistinctSketchParams {
        epsilon: 0.5,
        delta: 0.01,
        universe: 1 << 20,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distinct_sketch_is_exact_below_row_width(elements in proptest::collection::hash_set(0u64..1_000_000, 0..14)) {
        let mut sketch = DistinctSketch::new(17, params());
        for &e in &elements {
            sketch.insert(e);
            sketch.insert(e);
        }
        prop_assert_eq!(sketch.estimate(), elements.len() as f64);
    }

    #[test]
    fn distinct_sketch_insertion_order_does_not_matter(mut elements in proptest::collection::vec(0u64..100_000, 0..200)) {
        let forward = DistinctSketch::from_elements(3, params(), elements.iter().copied());
        elements.reverse();
        let backward = DistinctSketch::from_elements(3, params(), elements.iter().copied());
        prop_assert_eq!(forward.estimate(), backward.estimate());
    }

    #[test]
    fn distinct_sketch_merge_is_idempotent(elements in proptest::collection::vec(0u64..100_000, 0..300)) {
        let sketch = DistinctSketch::from_elements(5, params(), elements.iter().copied());
        let mut merged = sketch.clone();
        merged.merge(&sketch);
        prop_assert_eq!(merged.estimate(), sketch.estimate());
    }

    #[test]
    fn distinct_sketch_merge_matches_union(
        left in proptest::collection::vec(0u64..50_000, 0..400),
        right in proptest::collection::vec(0u64..50_000, 0..400),
    ) {
        let p = params();
        let mut merged = DistinctSketch::from_elements(9, p, left.iter().copied());
        merged.merge(&DistinctSketch::from_elements(9, p, right.iter().copied()));
        let union = DistinctSketch::from_elements(
            9,
            p,
            left.iter().copied().chain(right.iter().copied()),
        );
        prop_assert_eq!(merged.estimate(), union.estimate());
    }

    #[test]
    fn distinct_sketch_estimate_within_factor_two(step in 1u64..50, count in 100u64..4000) {
        // Structured streams (arithmetic progressions) should still be
        // estimated within the 1/2-approximation the r-NNIS proof needs.
        let sketch = DistinctSketch::from_elements(
            29,
            params(),
            (0..count).map(|i| i * step + 7),
        );
        let est = sketch.estimate();
        let truth = count as f64;
        prop_assert!(est >= truth / 2.0, "estimate {} for true count {}", est, truth);
        prop_assert!(est <= 2.0 * truth, "estimate {} for true count {}", est, truth);
    }

    #[test]
    fn distinct_sketch_merge_estimates_union_within_error_bound(
        left in proptest::collection::hash_set(0u64..30_000, 0..2_000),
        right in proptest::collection::hash_set(0u64..30_000, 0..2_000),
    ) {
        // The estimate-after-merge guarantee the sharded engine relies on:
        // merging per-part sketches estimates |A ∪ B| within the same
        // relative error bound ε that a sketch built directly over the
        // union enjoys. Exercised across disjoint, overlapping (the hash
        // sets routinely intersect) and empty operands.
        let p = params();
        let mut merged = DistinctSketch::from_elements(21, p, left.iter().copied());
        merged.merge(&DistinctSketch::from_elements(21, p, right.iter().copied()));
        let truth: HashSet<u64> = left.union(&right).copied().collect();
        let est = merged.estimate();
        if truth.is_empty() {
            prop_assert_eq!(est, 0.0);
        } else {
            let rel = (est - truth.len() as f64).abs() / truth.len() as f64;
            prop_assert!(
                rel <= p.epsilon,
                "merged estimate {} for |A ∪ B| = {} (relative error {:.3} > ε = {})",
                est, truth.len(), rel, p.epsilon
            );
        }
    }

    #[test]
    fn distinct_sketch_merge_with_empty_is_identity(
        elements in proptest::collection::vec(0u64..100_000, 0..500),
    ) {
        let p = params();
        let empty = DistinctSketch::new(33, p);
        prop_assert_eq!(empty.estimate(), 0.0);
        let sketch = DistinctSketch::from_elements(33, p, elements.iter().copied());
        let mut merged = sketch.clone();
        merged.merge(&empty);
        prop_assert_eq!(merged.estimate(), sketch.estimate());
        let mut other_way = empty.clone();
        other_way.merge(&sketch);
        prop_assert_eq!(other_way.estimate(), sketch.estimate());
        prop_assert!(sketch.mergeable_with(&empty));
    }

    #[test]
    fn distinct_sketch_merge_is_associative_across_three_parts(
        a in proptest::collection::vec(0u64..40_000, 0..300),
        b in proptest::collection::vec(0u64..40_000, 0..300),
        c in proptest::collection::vec(0u64..40_000, 0..300),
    ) {
        // Shard merges happen in arbitrary grouping; (A ∪ B) ∪ C must
        // estimate like A ∪ (B ∪ C).
        let p = params();
        let sa = DistinctSketch::from_elements(55, p, a.iter().copied());
        let sb = DistinctSketch::from_elements(55, p, b.iter().copied());
        let sc = DistinctSketch::from_elements(55, p, c.iter().copied());
        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.estimate(), a_bc.estimate());
    }

    #[test]
    fn bottomk_merge_estimates_union_within_kmv_error(
        left in proptest::collection::hash_set(0u64..30_000, 0..3_000),
        right in proptest::collection::hash_set(0u64..30_000, 0..3_000),
    ) {
        // Same estimate-after-merge guarantee for the engine's per-bucket
        // KMV sketches: the merged sketch behaves like one built over the
        // union, and the union estimate stays within the usual
        // O(1/sqrt(k)) KMV error envelope (generous constant for the tail).
        let k = 256usize;
        let mut merged = BottomKSketch::new(31, k);
        for &e in &left { merged.insert(e); }
        let mut other = BottomKSketch::new(31, k);
        for &e in &right { other.insert(e); }
        merged.merge(&other);
        prop_assert!(merged.mergeable_with(&other));
        let truth: HashSet<u64> = left.union(&right).copied().collect();
        if truth.is_empty() {
            prop_assert_eq!(merged.estimate(), 0.0);
        } else if truth.len() < k {
            // Below capacity the KMV sketch is exact.
            prop_assert_eq!(merged.estimate(), truth.len() as f64);
        } else {
            let rel = (merged.estimate() - truth.len() as f64).abs() / truth.len() as f64;
            prop_assert!(
                rel < 6.0 / (k as f64).sqrt(),
                "merged KMV estimate {} for |A ∪ B| = {}",
                merged.estimate(), truth.len()
            );
        }
    }

    #[test]
    fn bottomk_merge_matches_union(
        left in proptest::collection::vec(0u64..80_000, 0..300),
        right in proptest::collection::vec(0u64..80_000, 0..300),
    ) {
        let mut merged = BottomKSketch::new(13, 64);
        let mut other = BottomKSketch::new(13, 64);
        let mut union = BottomKSketch::new(13, 64);
        for &e in &left { merged.insert(e); union.insert(e); }
        for &e in &right { other.insert(e); union.insert(e); }
        merged.merge(&other);
        prop_assert_eq!(merged.estimate(), union.estimate());
    }

    #[test]
    fn hll_estimate_never_negative_and_zero_iff_empty(elements in proptest::collection::vec(0u64..10_000, 0..100)) {
        let mut hll = HyperLogLog::new(21, 10);
        for &e in &elements { hll.insert(e); }
        let est = hll.estimate();
        prop_assert!(est >= 0.0);
        let distinct: HashSet<u64> = elements.iter().copied().collect();
        if distinct.is_empty() {
            prop_assert_eq!(est, 0.0);
        } else {
            prop_assert!(est > 0.0);
        }
    }
}
