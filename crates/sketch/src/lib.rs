//! Count-distinct sketches and the hash families they are built on.
//!
//! Section 4 of the paper equips every LSH bucket with a sketch for the
//! number of distinct elements (the `F0` frequency moment), following
//! Bar-Yossef, Jayram, Kumar, Sivakumar and Trevisan \[11\]. The essential
//! property used by the r-NNIS query algorithm is *mergeability*: the
//! sketches of the `L` buckets a query collides with can be combined into a
//! sketch of their union, giving a constant-factor approximation `ŝ_q` of the
//! number of distinct colliding points.
//!
//! This crate provides:
//!
//! * [`hashing`] — 2-universal and k-independent hash families
//!   (multiply-shift, polynomial hashing over the Mersenne prime 2⁶¹−1) plus
//!   the SplitMix64 mixer used for seeding;
//! * [`distinct`] — [`DistinctSketch`], the bottom-`t` sketch of \[11\] with
//!   `Δ` independent rows and median-of-rows estimation;
//! * [`bottomk`] — a single-row KMV (k-minimum-values) sketch, used in
//!   ablation benchmarks as a simpler alternative;
//! * [`hyperloglog`] — a HyperLogLog estimator, a second ablation baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottomk;
pub mod distinct;
pub mod hashing;
pub mod hyperloglog;

pub use bottomk::BottomKSketch;
pub use distinct::{DistinctSketch, DistinctSketchParams, DistinctValueTable};
pub use hashing::{splitmix64, MultiplyShift, PolynomialHash};
pub use hyperloglog::HyperLogLog;

/// Common interface of the cardinality estimators in this crate.
///
/// All estimators are *mergeable*: the estimate of a union can be computed
/// from the sketches of its parts, which is exactly how Section 4 merges the
/// per-bucket sketches of the buckets a query collides with.
pub trait CardinalityEstimator {
    /// Registers one element (elements are identified by `u64` keys; in the
    /// fair near-neighbor structures the key is the point id).
    fn insert(&mut self, element: u64);

    /// Merges `other` into `self`. Both sketches must have been created with
    /// the same parameters/seed; implementations panic otherwise.
    fn merge(&mut self, other: &Self);

    /// Returns the current estimate of the number of distinct inserted
    /// elements.
    fn estimate(&self) -> f64;
}
