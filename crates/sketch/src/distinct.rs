//! The count-distinct sketch of Bar-Yossef et al. used in Section 4.
//!
//! The sketch (Section 2.3 of the paper) keeps `Δ = Θ(log 1/δ)` independent
//! rows. Row `w` stores the `t = Θ(1/ε²)` smallest **distinct** values of
//! `ψ_w(x)` over the stream elements `x`, where `ψ_w` is drawn from a
//! pairwise-independent family into `[n³]`. If `v_w` is the `t`-th smallest
//! value in row `w`, the estimate of that row is `t · n³ / v_w`, and the
//! final estimate is the median over rows. With the stated parameters the
//! estimate is within a factor `1 ± ε` of the true count with probability at
//! least `1 − δ`.
//!
//! The property the r-NNIS data structure exploits is that the sketch of a
//! union of streams can be obtained by merging the per-stream sketches
//! (unioning each row and re-truncating to the `t` smallest values).

use crate::hashing::PolynomialHash;
use crate::CardinalityEstimator;

/// Parameters of a [`DistinctSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistinctSketchParams {
    /// Relative error target ε ∈ (0, 1); the row width is `t = ⌈4/ε²⌉`.
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1); the number of rows is
    /// `Δ = ⌈18 ln(1/δ)⌉` (constant chosen so the median argument applies).
    pub delta: f64,
    /// Upper bound on the universe size `n`; hash values live in `[n³]`
    /// (clamped to fit in 61 bits).
    pub universe: u64,
}

impl DistinctSketchParams {
    /// Parameters as used by the paper's Section 4 construction:
    /// `ε = 1/2`, `δ = 1/(6 n²)`.
    pub fn paper_defaults(n: usize) -> Self {
        let n = n.max(2) as f64;
        Self {
            epsilon: 0.5,
            delta: 1.0 / (6.0 * n * n),
            universe: n as u64,
        }
    }

    /// Row width `t`.
    pub fn row_width(&self) -> usize {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must be in (0, 1)"
        );
        ((4.0 / (self.epsilon * self.epsilon)).ceil() as usize).max(2)
    }

    /// Number of rows `Δ`.
    pub fn rows(&self) -> usize {
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must be in (0, 1)"
        );
        ((18.0 * (1.0 / self.delta).ln()).ceil() as usize).max(1)
    }

    /// Size of the hash range `[n³]`, clamped so it fits the polynomial hash
    /// modulus.
    pub fn hash_range(&self) -> u64 {
        let n = self.universe.max(2) as u128;
        let cubed = n.saturating_mul(n).saturating_mul(n);
        let max = (crate::hashing::MERSENNE_PRIME_61 - 1) as u128;
        cubed.min(max) as u64
    }
}

/// One row of the sketch: a pairwise-independent hash function plus the `t`
/// smallest distinct hash values seen so far (kept sorted ascending).
#[derive(Debug, Clone)]
struct SketchRow {
    hash: PolynomialHash,
    smallest: Vec<u64>,
}

impl SketchRow {
    fn new(seed: u64) -> Self {
        Self {
            hash: PolynomialHash::pairwise(seed),
            smallest: Vec::new(),
        }
    }

    fn insert_value(&mut self, value: u64, capacity: usize) {
        // Fast reject once the row is full: a value at or above the current
        // t-th smallest either duplicates the boundary or would be dropped
        // by the truncation below, so skipping it leaves the row unchanged.
        if self.smallest.len() >= capacity && self.smallest.last().is_some_and(|&v| value >= v) {
            return;
        }
        match self.smallest.binary_search(&value) {
            Ok(_) => {} // already present — distinct values only
            Err(pos) => {
                if pos < capacity {
                    self.smallest.insert(pos, value);
                    self.smallest.truncate(capacity);
                }
            }
        }
    }

    fn insert(&mut self, element: u64, range: u64, capacity: usize) {
        // Map to [1, range] so that the t-th smallest value is never zero
        // (a zero would make the estimator divide by zero).
        let value = self.hash.hash_range(element, range) + 1;
        self.insert_value(value, capacity);
    }

    fn estimate(&self, range: u64, capacity: usize) -> f64 {
        if self.smallest.len() < capacity {
            // Fewer than t distinct values observed: the row stores them all
            // and the exact count is the best estimate.
            self.smallest.len() as f64
        } else {
            let v_t = *self.smallest.last().expect("row is non-empty") as f64;
            capacity as f64 * range as f64 / v_t
        }
    }

    fn merge(&mut self, other: &SketchRow, capacity: usize) {
        assert_eq!(
            self.hash, other.hash,
            "cannot merge sketch rows built with different hash functions"
        );
        for &value in &other.smallest {
            self.insert_value(value, capacity);
        }
    }
}

/// Mergeable bottom-`t` count-distinct sketch (Bar-Yossef et al. \[11\]).
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    params: DistinctSketchParams,
    seed: u64,
    rows: Vec<SketchRow>,
    row_width: usize,
    hash_range: u64,
}

impl DistinctSketch {
    /// Creates an empty sketch. Two sketches can be merged only if they were
    /// created with the same `seed` and `params`.
    pub fn new(seed: u64, params: DistinctSketchParams) -> Self {
        let rows = params.rows();
        let row_width = params.row_width();
        let hash_range = params.hash_range();
        let rows = (0..rows)
            .map(|w| {
                SketchRow::new(
                    seed.wrapping_add(0x5851_F42D_4C95_7F2D_u64.wrapping_mul(w as u64 + 1)),
                )
            })
            .collect();
        Self {
            params,
            seed,
            rows,
            row_width,
            hash_range,
        }
    }

    /// Creates a sketch with the paper's Section 4 parameters for a dataset
    /// of `n` points.
    pub fn with_paper_defaults(seed: u64, n: usize) -> Self {
        Self::new(seed, DistinctSketchParams::paper_defaults(n))
    }

    /// Parameters this sketch was built with.
    pub fn params(&self) -> DistinctSketchParams {
        self.params
    }

    /// Seed this sketch was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether [`CardinalityEstimator::merge`] with `other` is defined
    /// (same seed and parameters). Callers that merge sketches from
    /// different owners (e.g. shards) can check this instead of relying on
    /// the panic.
    pub fn mergeable_with(&self, other: &Self) -> bool {
        self.seed == other.seed && self.params == other.params
    }

    /// Resets the sketch to empty while keeping its hash functions and row
    /// capacity, so one instance can serve as a reusable merge accumulator
    /// across queries (the Section 4 sampler keeps one in its scratch
    /// instead of building a fresh sketch per query).
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.smallest.clear();
        }
    }

    /// [`CardinalityEstimator::estimate`] with a caller-provided buffer for
    /// the per-row estimates, so hot paths can take the median without a
    /// per-call allocation or a full sort. Returns exactly the same value
    /// as `estimate`.
    pub fn estimate_into(&self, buffer: &mut Vec<f64>) -> f64 {
        buffer.clear();
        buffer.extend(
            self.rows
                .iter()
                .map(|r| r.estimate(self.hash_range, self.row_width)),
        );
        let mid = buffer.len() / 2;
        let compare = |a: &f64, b: &f64| a.partial_cmp(b).expect("estimates are finite");
        let (left, median, _) = buffer.select_nth_unstable_by(mid, compare);
        if self.rows.len() % 2 == 1 {
            *median
        } else {
            // Even row count: the lower-middle element is the maximum of the
            // left partition produced by the selection.
            let below = left
                .iter()
                .copied()
                .max_by(|a, b| compare(a, b))
                .expect("two or more rows");
            (below + *median) / 2.0
        }
    }

    /// Number of rows Δ.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Row width t.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Approximate memory footprint in 64-bit words (used in space
    /// accounting tests).
    pub fn words(&self) -> usize {
        self.rows.iter().map(|r| r.smallest.len() + 4).sum()
    }

    /// Builds the sketch of an iterator of elements in one pass.
    pub fn from_elements<I: IntoIterator<Item = u64>>(
        seed: u64,
        params: DistinctSketchParams,
        elements: I,
    ) -> Self {
        let mut sketch = Self::new(seed, params);
        for e in elements {
            sketch.insert(e);
        }
        sketch
    }
}

impl DistinctSketch {
    /// Inserts an element whose per-row hash values were precomputed by a
    /// [`DistinctValueTable`] sharing this sketch's seed and parameters.
    /// `values[w]` must equal `ψ_w(element) + 1`; the effect is exactly that
    /// of [`CardinalityEstimator::insert`], minus the `Δ` polynomial-hash
    /// evaluations.
    pub fn insert_precomputed(&mut self, values: &[u64]) {
        debug_assert_eq!(values.len(), self.rows.len(), "one value per row");
        for (row, &value) in self.rows.iter_mut().zip(values) {
            row.insert_value(value, self.row_width);
        }
    }
}

/// Precomputed per-element row values for a [`DistinctSketch`] universe.
///
/// The Section 4 query merges bucket sketches, but buckets below the space
/// threshold are sketched *on the fly* by inserting their elements — and one
/// insertion evaluates all `Δ = Θ(log n)` pairwise-independent row hashes.
/// Those hashes depend only on the element, not on the query, so an index
/// over a dense id universe `0..n` can evaluate them once at build time
/// (`Θ(n Δ)` words, the same order as the `Θ(n L)` index itself) and serve
/// every query with [`DistinctSketch::insert_precomputed`] — turning the
/// on-the-fly sketching of small buckets from the dominant query cost into
/// a short run of bounds-checked comparisons.
#[derive(Debug, Clone)]
pub struct DistinctValueTable {
    rows: usize,
    /// Row-major `universe × rows` value matrix; a zero-copy borrow of the
    /// snapshot image when the table was decoded from one.
    values: fairnn_snapshot::ArcSlice<u64>,
}

impl DistinctValueTable {
    /// Precomputes the row values of every element in `0..universe` for
    /// sketches created with this `seed` and `params`. Each element's `Δ`
    /// row hashes depend only on the element, so disjoint element ranges
    /// are evaluated on parallel build workers and concatenated in order —
    /// the table is bit-identical at every thread count.
    pub fn build(seed: u64, params: DistinctSketchParams, universe: usize) -> Self {
        let reference = DistinctSketch::new(seed, params);
        let rows = reference.rows.len();
        let range = reference.hash_range;
        let chunks = fairnn_parallel::map_ranges(universe, 64, |elements| {
            let mut values = Vec::with_capacity(elements.len() * rows);
            for element in elements {
                for row in &reference.rows {
                    values.push(row.hash.hash_range(element as u64, range) + 1);
                }
            }
            values
        });
        let mut values = Vec::with_capacity(universe * rows);
        for chunk in chunks {
            values.extend(chunk);
        }
        Self {
            rows,
            values: values.into(),
        }
    }

    /// Number of rows `Δ` (matches the sketches this table feeds).
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of elements the table covers (the dense id universe `0..n`).
    pub fn universe(&self) -> usize {
        self.values.len().checked_div(self.rows).unwrap_or(0)
    }

    /// The precomputed row values of `element`, suitable for
    /// [`DistinctSketch::insert_precomputed`].
    #[inline]
    pub fn values_of(&self, element: usize) -> &[u64] {
        &self.values[element * self.rows..(element + 1) * self.rows]
    }
}

impl fairnn_snapshot::Codec for DistinctSketchParams {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_f64(self.epsilon);
        enc.write_f64(self.delta);
        enc.write_u64(self.universe);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let epsilon = dec.read_f64()?;
        let delta = dec.read_f64()?;
        let universe = dec.read_u64()?;
        if !(epsilon > 0.0 && epsilon < 1.0 && delta > 0.0 && delta < 1.0) {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "distinct-sketch parameters out of range: epsilon = {epsilon}, delta = {delta}"
            )));
        }
        Ok(Self {
            epsilon,
            delta,
            universe,
        })
    }
}

impl fairnn_snapshot::Codec for DistinctSketch {
    /// Persists `(seed, params)` plus each row's bottom values; the per-row
    /// hash functions — and the derived row width and hash range — are
    /// re-derived from the seed on load, exactly as at construction time.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.seed);
        self.params.encode(enc);
        enc.write_len(self.rows.len());
        for row in &self.rows {
            row.smallest.encode(enc);
        }
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let seed = dec.read_u64()?;
        let params = DistinctSketchParams::decode(dec)?;
        let num_rows = dec.read_len()?;
        let mut sketch = Self::new(seed, params);
        if num_rows != sketch.rows.len() {
            return Err(SnapshotError::Corrupt(format!(
                "distinct sketch stores {num_rows} rows but its parameters derive {}",
                sketch.rows.len()
            )));
        }
        for row in &mut sketch.rows {
            let smallest = Vec::<u64>::decode(dec)?;
            if smallest.len() > sketch.row_width {
                return Err(SnapshotError::Corrupt(format!(
                    "sketch row stores {} values but t = {}",
                    smallest.len(),
                    sketch.row_width
                )));
            }
            if !smallest.windows(2).all(|w| w[0] < w[1]) {
                return Err(SnapshotError::Corrupt(
                    "sketch row values are not strictly increasing".into(),
                ));
            }
            row.smallest = smallest;
        }
        Ok(sketch)
    }
}

impl fairnn_snapshot::Codec for DistinctValueTable {
    /// The value matrix is a v3 aligned array
    /// ([`fairnn_snapshot::SliceCodec`]): `Θ(n Δ)` words read back as a
    /// zero-copy borrow when the decoder is backed by a snapshot image.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        use fairnn_snapshot::SliceCodec;
        enc.write_u64(self.rows as u64);
        u64::encode_slice(&self.values, enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::{SliceCodec, SnapshotError};
        let rows = usize::decode(dec)?;
        let values = u64::decode_slice(dec)?;
        if rows == 0 && !values.is_empty() {
            return Err(SnapshotError::Corrupt(
                "distinct value table has values but zero rows".into(),
            ));
        }
        if rows > 0 && values.len() % rows != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "distinct value table length {} is not a multiple of its {rows} rows",
                values.len()
            )));
        }
        Ok(Self { rows, values })
    }
}

impl CardinalityEstimator for DistinctSketch {
    fn insert(&mut self, element: u64) {
        for row in &mut self.rows {
            row.insert(element, self.hash_range, self.row_width);
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "cannot merge sketches with different seeds"
        );
        assert_eq!(
            self.rows.len(),
            other.rows.len(),
            "cannot merge sketches with different row counts"
        );
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            a.merge(b, self.row_width);
        }
    }

    fn estimate(&self) -> f64 {
        let mut estimates: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.estimate(self.hash_range, self.row_width))
            .collect();
        estimates.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        let mid = estimates.len() / 2;
        if estimates.len() % 2 == 1 {
            estimates[mid]
        } else {
            (estimates[mid - 1] + estimates[mid]) / 2.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DistinctSketchParams {
        DistinctSketchParams {
            epsilon: 0.5,
            delta: 0.01,
            universe: 100_000,
        }
    }

    #[test]
    fn params_derivations() {
        let p = params();
        assert_eq!(p.row_width(), 16);
        assert!(p.rows() >= 1);
        assert!(p.hash_range() > p.universe);
        let paper = DistinctSketchParams::paper_defaults(1000);
        assert_eq!(paper.epsilon, 0.5);
        assert!(paper.delta < 1e-5);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let sketch = DistinctSketch::new(1, params());
        assert_eq!(sketch.estimate(), 0.0);
    }

    #[test]
    fn small_counts_are_exact() {
        let mut sketch = DistinctSketch::new(1, params());
        for x in 0..10u64 {
            sketch.insert(x);
            sketch.insert(x); // duplicates must not count
        }
        assert_eq!(sketch.estimate(), 10.0);
    }

    #[test]
    fn duplicates_do_not_change_estimate() {
        let mut a = DistinctSketch::new(3, params());
        let mut b = DistinctSketch::new(3, params());
        for x in 0..5000u64 {
            a.insert(x);
            b.insert(x);
            b.insert(x);
            b.insert(x % 100);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn estimate_is_within_epsilon_for_large_streams() {
        let true_count = 20_000u64;
        let sketch = DistinctSketch::from_elements(42, params(), 0..true_count);
        let est = sketch.estimate();
        let rel_err = (est - true_count as f64).abs() / true_count as f64;
        assert!(rel_err < 0.5, "relative error {rel_err} exceeds epsilon");
    }

    #[test]
    fn merge_equals_sketch_of_union() {
        let p = params();
        let mut left = DistinctSketch::from_elements(7, p, 0..3000u64);
        let right = DistinctSketch::from_elements(7, p, 1500..4500u64);
        let union = DistinctSketch::from_elements(7, p, 0..4500u64);
        left.merge(&right);
        assert_eq!(left.estimate(), union.estimate());
    }

    #[test]
    fn merge_is_commutative() {
        let p = params();
        let a = DistinctSketch::from_elements(9, p, 0..1000u64);
        let b = DistinctSketch::from_elements(9, p, 500..2500u64);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.estimate(), ba.estimate());
    }

    #[test]
    #[should_panic(expected = "different seeds")]
    fn merging_different_seeds_panics() {
        let mut a = DistinctSketch::new(1, params());
        let b = DistinctSketch::new(2, params());
        a.merge(&b);
    }

    #[test]
    fn paper_defaults_give_half_approximation() {
        // The r-NNIS construction relies on s_q/2 <= ŝ_q <= 1.5 s_q.
        let n = 5_000usize;
        let sketch = DistinctSketch::with_paper_defaults(11, n);
        let mut sketch = sketch;
        let true_count = 2_000u64;
        for x in 0..true_count {
            sketch.insert(x * 2 + 1);
        }
        let est = sketch.estimate();
        assert!(
            est >= true_count as f64 / 2.0 && est <= 1.5 * true_count as f64,
            "estimate {est} outside [s/2, 1.5 s] for s = {true_count}"
        );
    }

    #[test]
    fn words_accounting_grows_then_saturates() {
        let mut sketch = DistinctSketch::new(5, params());
        let w0 = sketch.words();
        for x in 0..10_000u64 {
            sketch.insert(x);
        }
        let w1 = sketch.words();
        assert!(w1 > w0);
        // Row width bounds the growth.
        assert!(w1 <= sketch.num_rows() * (sketch.row_width() + 4));
    }
}
