//! KMV (k-minimum-values / bottom-k) cardinality sketch.
//!
//! A single-row alternative to [`crate::DistinctSketch`]: keep the `k`
//! smallest distinct hash values of the stream; if `v_k` is the `k`-th
//! smallest value of a hash into `[0, 1)` (here scaled to 64-bit integers),
//! the estimate is `(k - 1) / v_k`. It is used by the ablation benchmarks to
//! quantify what the Δ-row median construction of the paper buys over the
//! simplest mergeable estimator.

use crate::hashing::{splitmix64, MultiplyShift};
use crate::CardinalityEstimator;

/// Bottom-k cardinality sketch.
#[derive(Debug, Clone)]
pub struct BottomKSketch {
    hash: MultiplyShift,
    seed: u64,
    k: usize,
    /// Smallest distinct hash values seen so far, sorted ascending.
    smallest: Vec<u64>,
}

impl BottomKSketch {
    /// Creates an empty sketch keeping the `k` smallest values (`k >= 2`).
    pub fn new(seed: u64, k: usize) -> Self {
        assert!(k >= 2, "bottom-k sketch needs k >= 2");
        Self {
            hash: MultiplyShift::new(splitmix64(seed), 64),
            seed,
            k,
            smallest: Vec::with_capacity(k.min(1024)),
        }
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of values currently stored (≤ k).
    pub fn stored(&self) -> usize {
        self.smallest.len()
    }

    /// The seed this sketch was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether [`CardinalityEstimator::merge`] with `other` is defined
    /// (same seed, same `k`). The serving engine checks this instead of
    /// relying on the panic.
    pub fn mergeable_with(&self, other: &Self) -> bool {
        self.seed == other.seed && self.k == other.k
    }

    /// Resets the sketch to empty while keeping its hash function and
    /// capacity, so one instance can serve as a reusable merge accumulator
    /// across queries.
    pub fn clear(&mut self) {
        self.smallest.clear();
    }

    fn insert_value(&mut self, value: u64) {
        match self.smallest.binary_search(&value) {
            Ok(_) => {}
            Err(pos) => {
                if pos < self.k {
                    self.smallest.insert(pos, value);
                    self.smallest.truncate(self.k);
                }
            }
        }
    }
}

impl fairnn_snapshot::Codec for BottomKSketch {
    /// Persists `(seed, k, smallest)`; the hash function is re-derived from
    /// the seed on load, so a restored sketch is indistinguishable from one
    /// that observed the same stream — including mergeability with its
    /// siblings.
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.seed);
        enc.write_u64(self.k as u64);
        self.smallest.encode(enc);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        use fairnn_snapshot::SnapshotError;
        let seed = dec.read_u64()?;
        let k = usize::decode(dec)?;
        if k < 2 {
            return Err(SnapshotError::Corrupt(format!(
                "bottom-k sketch needs k >= 2, found {k}"
            )));
        }
        let smallest = Vec::<u64>::decode(dec)?;
        if smallest.len() > k {
            return Err(SnapshotError::Corrupt(format!(
                "bottom-k sketch stores {} values but k = {k}",
                smallest.len()
            )));
        }
        if !smallest.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Corrupt(
                "bottom-k values are not strictly increasing".into(),
            ));
        }
        let mut sketch = Self::new(seed, k);
        sketch.smallest = smallest;
        Ok(sketch)
    }
}

impl CardinalityEstimator for BottomKSketch {
    fn insert(&mut self, element: u64) {
        // Map to [1, u64::MAX] to avoid a zero k-th value.
        let value = self.hash.hash(element) | 1;
        self.insert_value(value);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "cannot merge bottom-k sketches with different seeds"
        );
        assert_eq!(
            self.k, other.k,
            "cannot merge bottom-k sketches with different k"
        );
        for &v in &other.smallest {
            self.insert_value(v);
        }
    }

    fn estimate(&self) -> f64 {
        if self.smallest.len() < self.k {
            self.smallest.len() as f64
        } else {
            let v_k = *self.smallest.last().expect("non-empty") as f64;
            // Normalise the k-th order statistic to (0, 1].
            let normalized = v_k / (u64::MAX as f64);
            (self.k as f64 - 1.0) / normalized
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = BottomKSketch::new(1, 64);
        for x in 0..50u64 {
            s.insert(x);
            s.insert(x);
        }
        assert_eq!(s.estimate(), 50.0);
        assert_eq!(s.stored(), 50);
        assert_eq!(s.k(), 64);
    }

    #[test]
    fn approximate_above_k() {
        let mut s = BottomKSketch::new(2, 256);
        let n = 50_000u64;
        for x in 0..n {
            s.insert(x);
        }
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.3, "relative error {rel} too large (estimate {est})");
    }

    #[test]
    fn merge_matches_union() {
        let mut a = BottomKSketch::new(7, 128);
        let mut b = BottomKSketch::new(7, 128);
        let mut union = BottomKSketch::new(7, 128);
        for x in 0..5_000u64 {
            a.insert(x);
            union.insert(x);
        }
        for x in 2_500..7_500u64 {
            b.insert(x);
            union.insert(x);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), union.estimate());
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn merge_rejects_mismatched_k() {
        let mut a = BottomKSketch::new(7, 128);
        let b = BottomKSketch::new(7, 64);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_tiny_k() {
        let _ = BottomKSketch::new(1, 1);
    }
}
