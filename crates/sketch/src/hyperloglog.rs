//! HyperLogLog cardinality estimator.
//!
//! Included as a second ablation baseline next to the bottom-k sketch: the
//! paper's Section 4 construction needs a *mergeable* distinct-count
//! estimator with a `1/2`-approximation guarantee, and HyperLogLog is the
//! estimator most practitioners would reach for. The ablation benchmarks
//! compare its accuracy/space against the BJKST-style [`crate::DistinctSketch`]
//! the paper analyses.

use crate::hashing::splitmix64;
use crate::CardinalityEstimator;

/// HyperLogLog sketch with `2^precision` registers.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    /// Seed-derived mask XOR-ed into every element before mixing, so that
    /// different seeds define independent hash functions.
    mask: u64,
    seed: u64,
    precision: u32,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates an empty sketch. `precision` must be in `4..=16`.
    pub fn new(seed: u64, precision: u32) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in 4..=16");
        Self {
            mask: splitmix64(seed ^ 0xABCD_EF01),
            seed,
            precision,
            registers: vec![0u8; 1usize << precision],
        }
    }

    /// Number of registers `m = 2^precision`.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    fn alpha(m: usize) -> f64 {
        match m {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        }
    }
}

impl CardinalityEstimator for HyperLogLog {
    fn insert(&mut self, element: u64) {
        let h = splitmix64(element ^ self.mask);
        let index = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        // Rank = position of the leftmost 1-bit in the remaining bits.
        let rank = if rest == 0 {
            (64 - self.precision + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        if rank > self.registers[index] {
            self.registers[index] = rank;
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed, other.seed,
            "cannot merge HLLs with different seeds"
        );
        assert_eq!(
            self.precision, other.precision,
            "cannot merge HLLs with different precision"
        );
        for (a, &b) in self.registers.iter_mut().zip(other.registers.iter()) {
            if b > *a {
                *a = b;
            }
        }
    }

    fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = Self::alpha(self.registers.len()) * m * m / sum;

        // Small-range correction (linear counting).
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimate_is_zero() {
        let hll = HyperLogLog::new(1, 10);
        assert_eq!(hll.estimate(), 0.0);
        assert_eq!(hll.num_registers(), 1024);
    }

    #[test]
    fn small_counts_are_accurate() {
        let mut hll = HyperLogLog::new(2, 12);
        for x in 0..100u64 {
            hll.insert(x);
            hll.insert(x);
        }
        let est = hll.estimate();
        assert!((est - 100.0).abs() < 15.0, "estimate {est}");
    }

    #[test]
    fn large_counts_within_relative_error() {
        let mut hll = HyperLogLog::new(3, 12);
        let n = 100_000u64;
        for x in 0..n {
            hll.insert(x);
        }
        let est = hll.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "relative error {rel} (estimate {est})");
    }

    #[test]
    fn merge_matches_union() {
        let mut a = HyperLogLog::new(4, 11);
        let mut b = HyperLogLog::new(4, 11);
        let mut union = HyperLogLog::new(4, 11);
        for x in 0..20_000u64 {
            a.insert(x);
            union.insert(x);
        }
        for x in 10_000..30_000u64 {
            b.insert(x);
            union.insert(x);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), union.estimate());
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_precision_mismatch() {
        let mut a = HyperLogLog::new(4, 10);
        let b = HyperLogLog::new(4, 11);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "precision must be in 4..=16")]
    fn rejects_bad_precision() {
        let _ = HyperLogLog::new(0, 2);
    }
}
