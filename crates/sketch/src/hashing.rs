//! Hash families used by the sketches and by MinHash.
//!
//! Two classic constructions are provided:
//!
//! * [`MultiplyShift`] — the 2-universal multiply-shift scheme of Dietzfelbinger
//!   et al.; a single 64-bit multiplication and shift, ideal for the
//!   per-element work inside MinHash rows and sketches;
//! * [`PolynomialHash`] — k-independent polynomial hashing over the Mersenne
//!   prime `2^61 - 1`, used where pairwise (or higher) independence is needed
//!   for the analysis (the count-distinct sketch of Section 2.3 requires a
//!   pairwise-independent family).
//!
//! Both are deterministic given their seed, which keeps every experiment in
//! the workspace reproducible.

/// The Mersenne prime `2^61 - 1` used as the modulus for polynomial hashing.
pub const MERSENNE_PRIME_61: u64 = (1u64 << 61) - 1;

/// SplitMix64 mixing function.
///
/// A fast, well-distributed 64-bit mixer; used to derive independent seeds
/// and as a lightweight "random oracle" for tests. This is the standard
/// SplitMix64 finalizer (Steele, Lea, Flood 2014).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small deterministic generator of 64-bit values derived from a seed,
/// used to initialise hash-function coefficients without threading a full
/// RNG through every constructor.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Returns the next value reduced into `[0, modulus)`.
    pub fn next_below(&mut self, modulus: u64) -> u64 {
        self.next_u64() % modulus
    }
}

/// 2-universal multiply-shift hashing `h(x) = (a*x + b) >> (64 - out_bits)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShift {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl MultiplyShift {
    /// Creates a hash function with `out_bits` output bits (1..=64) from a
    /// seed.
    pub fn new(seed: u64, out_bits: u32) -> Self {
        assert!((1..=64).contains(&out_bits), "out_bits must be in 1..=64");
        let mut seq = SeedSequence::new(seed);
        // `a` must be odd for the multiply-shift analysis.
        let a = seq.next_u64() | 1;
        let b = seq.next_u64();
        Self { a, b, out_bits }
    }

    /// Reassembles a full-width (`out_bits == 64`) function from raw
    /// `(a, b)` coefficients, the inverse of [`MultiplyShift::coefficients`].
    /// Snapshot bank decoders use this to rebuild hashers from a flat
    /// coefficient array.
    ///
    /// # Panics
    ///
    /// Panics when `a` is even (the multiply-shift analysis requires an odd
    /// multiplier); callers deserializing untrusted bytes must check first.
    pub fn from_coefficients(a: u64, b: u64) -> Self {
        assert!(a & 1 == 1, "multiply-shift multiplier must be odd");
        Self { a, b, out_bits: 64 }
    }

    /// Number of output bits.
    pub fn out_bits(&self) -> u32 {
        self.out_bits
    }

    /// Hashes a 64-bit key to `out_bits` bits.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let v = self.a.wrapping_mul(x).wrapping_add(self.b);
        if self.out_bits == 64 {
            v
        } else {
            v >> (64 - self.out_bits)
        }
    }

    /// The `(a, b)` coefficients, for batched kernels that keep them in
    /// registers across a long input stream. Combine as
    /// `a.wrapping_mul(x).wrapping_add(b)` — equal to [`MultiplyShift::hash`]
    /// only in the full-width (`out_bits() == 64`) case, which the debug
    /// assertion guards.
    #[inline]
    pub fn coefficients(&self) -> (u64, u64) {
        debug_assert_eq!(self.out_bits, 64, "coefficients are full-width only");
        (self.a, self.b)
    }
}

/// k-independent polynomial hashing over the Mersenne prime `2^61 - 1`.
///
/// `h(x) = (c_{k-1} x^{k-1} + ... + c_1 x + c_0) mod p`, evaluated with
/// Horner's rule using 128-bit intermediate products.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolynomialHash {
    coefficients: Vec<u64>,
}

impl PolynomialHash {
    /// Creates a hash function with independence `k >= 1` from a seed.
    pub fn new(seed: u64, k: usize) -> Self {
        assert!(k >= 1, "independence must be at least 1");
        let mut seq = SeedSequence::new(seed);
        let mut coefficients: Vec<u64> =
            (0..k).map(|_| seq.next_below(MERSENNE_PRIME_61)).collect();
        // The leading coefficient should be non-zero so the polynomial has
        // true degree k-1.
        if k > 1 && coefficients[k - 1] == 0 {
            coefficients[k - 1] = 1;
        }
        Self { coefficients }
    }

    /// Creates a pairwise-independent (`k = 2`) hash function.
    pub fn pairwise(seed: u64) -> Self {
        Self::new(seed, 2)
    }

    /// Independence of the family this function was drawn from.
    pub fn independence(&self) -> usize {
        self.coefficients.len()
    }

    /// Hashes a key into `[0, 2^61 - 1)`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let x = mod_mersenne(x as u128);
        let mut acc: u64 = 0;
        for &c in self.coefficients.iter().rev() {
            // acc = acc * x + c  (mod p)
            let prod = (acc as u128) * (x as u128) + c as u128;
            acc = mod_mersenne(prod);
        }
        acc
    }

    /// Hashes a key into `[0, range)`.
    #[inline]
    pub fn hash_range(&self, x: u64, range: u64) -> u64 {
        assert!(range > 0, "range must be positive");
        self.hash(x) % range
    }
}

impl fairnn_snapshot::Codec for MultiplyShift {
    fn encode(&self, enc: &mut fairnn_snapshot::Encoder) {
        enc.write_u64(self.a);
        enc.write_u64(self.b);
        enc.write_u32(self.out_bits);
    }

    fn decode(
        dec: &mut fairnn_snapshot::Decoder<'_>,
    ) -> Result<Self, fairnn_snapshot::SnapshotError> {
        let a = dec.read_u64()?;
        let b = dec.read_u64()?;
        let out_bits = dec.read_u32()?;
        if !(1..=64).contains(&out_bits) {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(format!(
                "multiply-shift out_bits must be in 1..=64, found {out_bits}"
            )));
        }
        if a & 1 == 0 {
            return Err(fairnn_snapshot::SnapshotError::Corrupt(
                "multiply-shift multiplier must be odd".into(),
            ));
        }
        Ok(Self { a, b, out_bits })
    }
}

/// Reduces a 128-bit value modulo the Mersenne prime `2^61 - 1`.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    let p = MERSENNE_PRIME_61 as u128;
    // Fold the high bits twice; after two folds the value is < 2^62.
    let folded = (x & p) + (x >> 61);
    let folded = (folded & p) + (folded >> 61);
    let mut r = folded as u64;
    if r >= MERSENNE_PRIME_61 {
        r -= MERSENNE_PRIME_61;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        let values: HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(
            values.len(),
            1000,
            "splitmix64 should not collide on small inputs"
        );
    }

    #[test]
    fn seed_sequence_is_deterministic() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeedSequence::new(8);
        assert_ne!(SeedSequence::new(7).next_u64(), c.next_u64());
        for _ in 0..100 {
            assert!(a.next_below(17) < 17);
        }
    }

    #[test]
    fn multiply_shift_respects_out_bits() {
        let h = MultiplyShift::new(3, 8);
        assert_eq!(h.out_bits(), 8);
        for x in 0..2000u64 {
            assert!(h.hash(x) < 256);
        }
        let h64 = MultiplyShift::new(3, 64);
        // With 64 output bits the full value is returned; just check determinism.
        assert_eq!(h64.hash(123), h64.hash(123));
    }

    #[test]
    fn multiply_shift_different_seeds_differ() {
        let h1 = MultiplyShift::new(1, 32);
        let h2 = MultiplyShift::new(2, 32);
        let differs = (0..100u64).any(|x| h1.hash(x) != h2.hash(x));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "out_bits")]
    fn multiply_shift_rejects_zero_bits() {
        let _ = MultiplyShift::new(1, 0);
    }

    #[test]
    fn multiply_shift_distributes_over_buckets() {
        let h = MultiplyShift::new(99, 4); // 16 buckets
        let mut counts = [0usize; 16];
        for x in 0..16_000u64 {
            counts[h.hash(x) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 500 && c < 1500, "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn polynomial_hash_is_deterministic_and_in_range() {
        let h = PolynomialHash::pairwise(5);
        assert_eq!(h.independence(), 2);
        for x in 0..1000u64 {
            let v = h.hash(x);
            assert!(v < MERSENNE_PRIME_61);
            assert_eq!(v, h.hash(x));
        }
    }

    #[test]
    fn polynomial_hash_range_reduction() {
        let h = PolynomialHash::new(11, 3);
        for x in 0..500u64 {
            assert!(h.hash_range(x, 10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn polynomial_hash_zero_range_panics() {
        let h = PolynomialHash::pairwise(5);
        let _ = h.hash_range(1, 0);
    }

    #[test]
    fn polynomial_hash_distinct_seeds_disagree_somewhere() {
        let h1 = PolynomialHash::pairwise(1);
        let h2 = PolynomialHash::pairwise(2);
        assert!((0..64u64).any(|x| h1.hash(x) != h2.hash(x)));
    }

    #[test]
    fn mod_mersenne_agrees_with_naive_modulo() {
        let p = MERSENNE_PRIME_61 as u128;
        for &x in &[
            0u128,
            1,
            p - 1,
            p,
            p + 1,
            2 * p + 5,
            u128::from(u64::MAX),
            (p * p) - 1,
        ] {
            assert_eq!(mod_mersenne(x) as u128, x % p, "x = {x}");
        }
    }

    #[test]
    fn pairwise_collision_rate_is_low() {
        // Empirical sanity check of 2-universality: collision rate of a
        // pairwise family into m buckets should be close to 1/m.
        let h = PolynomialHash::pairwise(123);
        let m = 1024u64;
        let n = 2000u64;
        let mut collisions = 0u64;
        let hashed: Vec<u64> = (0..n).map(|x| h.hash_range(x, m)).collect();
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                if hashed[i] == hashed[j] {
                    collisions += 1;
                }
            }
        }
        let pairs = n * (n - 1) / 2;
        let rate = collisions as f64 / pairs as f64;
        assert!(rate < 3.0 / m as f64, "collision rate {rate} too high");
    }
}
