//! Property-based tests for the auditor's lexer and end-to-end pipeline:
//! arbitrary bytes — including invalid UTF-8, unterminated strings and
//! comment soup — must never panic, and every token span must stay
//! in-bounds with 1-based positions.

use fairnn_audit::lexer::lex;
use proptest::prelude::*;

/// Checks the span/position contract for every token over `bytes`.
fn assert_spans_in_bounds(bytes: &[u8]) {
    let tokens = lex(bytes);
    let mut prev_end = 0usize;
    for t in &tokens {
        assert!(t.start <= t.end, "inverted span: {t:?}");
        assert!(t.end <= bytes.len(), "span past the input: {t:?}");
        assert!(t.start >= prev_end, "overlapping tokens: {t:?}");
        assert!(t.line >= 1, "lines are 1-based: {t:?}");
        assert!(t.col >= 1, "columns are 1-based: {t:?}");
        prev_end = t.end;
    }
}

/// Fragments that stress the lexer's comment/string/raw-string state
/// machine when concatenated in arbitrary orders.
const FRAGMENTS: &[&str] = &[
    "//",
    "/*",
    "*/",
    "\"",
    "\\\"",
    "r#\"",
    "\"#",
    "'",
    "'a",
    "b'x'",
    "\n",
    "\r\n",
    "for",
    "in",
    "HashMap",
    ".iter()",
    "map",
    "0..10",
    "1.5",
    "0x_F",
    "fairnn-audit: allow(",
    ")",
    "—",
    "#[",
    "test",
    "]",
    "{",
    "}",
    "::",
    "é",
    "\u{7f}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..400)
    ) {
        assert_spans_in_bounds(&bytes);
    }

    #[test]
    fn lexer_never_panics_on_rust_flavoured_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..60)
    ) {
        let soup: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_spans_in_bounds(soup.as_bytes());
    }

    #[test]
    fn full_audit_pipeline_never_panics(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..60)
    ) {
        let soup: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        // Route through the strictest rule scopes: determinism crates and
        // the snapshot crate. Findings are fine; panics are not.
        let _ = fairnn_audit::audit_source("crates/engine/src/soup.rs", soup.as_bytes());
        let _ = fairnn_audit::audit_source("crates/snapshot/src/soup.rs", soup.as_bytes());
    }
}
