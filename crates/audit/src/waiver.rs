//! Inline waivers: `// fairnn-audit: allow(<rule>[, <rule>…]) — <reason>`.
//!
//! A waiver suppresses findings of the named rule(s) on its own line or on
//! the line immediately below (so it can trail the offending expression or
//! sit on its own line above it). The reason is mandatory; a reasonless
//! waiver is itself a deny-level finding, and every accepted waiver's
//! reason is surfaced in the report.

use crate::lexer::Token;

/// The marker that opens a waiver comment.
pub const WAIVER_MARKER: &str = "fairnn-audit:";

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rules this waiver suppresses.
    pub rules: Vec<String>,
    /// The justification after the dash separator (may be empty, which the
    /// `waiver-reason` rule rejects).
    pub reason: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Whether code precedes the comment on its line: a trailing waiver
    /// covers only that line, a standalone one also the line below.
    pub trailing: bool,
    /// Malformed-waiver diagnostic (bad syntax rather than empty reason).
    pub malformed: Option<String>,
}

impl Waiver {
    /// Whether this waiver covers `rule` for a finding on `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.malformed.is_none()
            && !self.reason.is_empty()
            && (self.line == line || (!self.trailing && self.line + 1 == line))
            && self.rules.iter().any(|r| r == rule)
    }
}

/// Extracts every waiver from a file's comment tokens. `code` (the file's
/// non-comment tokens) determines which waivers trail an expression.
pub fn parse_waivers(comments: &[&Token], code: &[&Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments describe the waiver syntax; only plain comments
        // (`//`, `/*`) can enact it.
        if is_doc_comment(&c.text) {
            continue;
        }
        let Some(at) = c.text.find(WAIVER_MARKER) else {
            continue;
        };
        let rest = c.text[at + WAIVER_MARKER.len()..].trim_start();
        let trailing = code.iter().any(|t| t.line == c.line && t.start < c.start);
        out.push(parse_one(rest, c.line, trailing));
    }
    out
}

fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || text.starts_with("/*!")
        || (text.starts_with("/**") && !text.starts_with("/***"))
}

fn parse_one(rest: &str, line: u32, trailing: bool) -> Waiver {
    let malformed = |what: &str| Waiver {
        rules: Vec::new(),
        reason: String::new(),
        line,
        trailing,
        malformed: Some(what.to_string()),
    };
    let Some(args) = rest.strip_prefix("allow") else {
        return malformed("expected `allow(<rule>)` after `fairnn-audit:`");
    };
    let args = args.trim_start();
    let Some(after_open) = args.strip_prefix('(') else {
        return malformed("expected `(` after `allow`");
    };
    let Some(close) = after_open.find(')') else {
        return malformed("unclosed `allow(`");
    };
    let rules: Vec<String> = after_open[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return malformed("`allow()` names no rule");
    }
    // The reason follows a dash separator (em dash, en dash, `--`, `-`,
    // or `:`); everything after it, trimmed, is the reason text. A block
    // comment's closing `*/` is not part of the reason.
    let mut reason = after_open[close + 1..].trim();
    reason = reason.trim_end_matches("*/").trim_end();
    reason = reason.trim_start_matches(['—', '–', '-', ':', ' ']).trim();
    Waiver {
        rules,
        reason: reason.to_string(),
        line,
        trailing,
        malformed: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokenKind};

    fn waivers_of(src: &str) -> Vec<Waiver> {
        let tokens = lex(src.as_bytes());
        let comments: Vec<&crate::lexer::Token> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .collect();
        let code: Vec<&crate::lexer::Token> = tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        parse_waivers(&comments, &code)
    }

    #[test]
    fn trailing_and_preceding_waivers_cover_the_right_lines() {
        let ws = waivers_of(
            "let x = m.iter(); // fairnn-audit: allow(unordered-iter) — sorted below\n\
             // fairnn-audit: allow(wall-clock) — bench-only timing\n\
             let t = now();\n",
        );
        assert_eq!(ws.len(), 2);
        assert!(ws[0].covers("unordered-iter", 1));
        assert!(!ws[0].covers("unordered-iter", 2));
        assert!(!ws[0].covers("wall-clock", 1));
        assert!(ws[1].covers("wall-clock", 2), "own line");
        assert!(ws[1].covers("wall-clock", 3), "line below");
    }

    #[test]
    fn multiple_rules_and_ascii_separators_parse() {
        let ws =
            waivers_of("// fairnn-audit: allow(snapshot-panic, snapshot-index) -- encode side\n");
        assert_eq!(ws[0].rules, vec!["snapshot-panic", "snapshot-index"]);
        assert_eq!(ws[0].reason, "encode side");
        assert!(ws[0].covers("snapshot-index", 1));
    }

    #[test]
    fn missing_reason_is_not_a_valid_waiver() {
        let ws = waivers_of(
            "// fairnn-audit: allow(unordered-iter)\n// fairnn-audit: allow(unordered-iter) —   \n",
        );
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert!(w.malformed.is_none());
            assert!(w.reason.is_empty());
            assert!(!w.covers("unordered-iter", w.line));
        }
    }

    #[test]
    fn malformed_waivers_are_reported_not_ignored() {
        let ws = waivers_of(
            "// fairnn-audit: deny(x) — nope\n\
             // fairnn-audit: allow — no parens\n\
             // fairnn-audit: allow() — empty\n\
             // fairnn-audit: allow(a — unclosed\n",
        );
        assert_eq!(ws.len(), 4);
        assert!(ws.iter().all(|w| w.malformed.is_some()));
    }

    #[test]
    fn doc_comments_never_enact_waivers() {
        let ws = waivers_of(
            "//! Syntax: `// fairnn-audit: allow(<rule>) — <reason>`.\n\
             /// fairnn-audit: allow(unordered-iter) — docs only\n\
             fn f() {}\n",
        );
        assert!(ws.is_empty(), "{ws:?}");
    }

    #[test]
    fn block_comment_waiver_strips_the_terminator() {
        let ws = waivers_of("/* fairnn-audit: allow(raw-thread) — pool internals */\n");
        assert_eq!(ws[0].reason, "pool internals");
    }
}
