//! The audit rules: project-specific determinism, panic-safety and
//! concurrency-hygiene lints over the token stream.
//!
//! Every rule is a pure function of one file's [`FileContext`]; rule
//! applicability is decided per crate (see [`rule_applies`]). Findings are
//! matched against inline waivers afterwards by [`audit_tokens`].

use crate::analysis::FileContext;
use crate::lexer::{Token, TokenKind};
use crate::waiver::{parse_waivers, Waiver};

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit unless waived.
    Deny,
    /// Reported for visibility; never fails the audit.
    Warn,
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`unordered-iter`, `wall-clock`, …).
    pub rule: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human explanation.
    pub message: String,
    /// Whether an inline waiver covers this finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub waive_reason: Option<String>,
}

/// Determinism: these crates' data paths must not observe hash-map
/// iteration order.
const DETERMINISM_CRATES: &[&str] = &[
    "fairnn-space",
    "fairnn-sketch",
    "fairnn-lsh",
    "fairnn-core",
    "fairnn-engine",
    "fairnn-snapshot",
];

/// Wall-clock and ambient entropy are allowed only in benchmarking code,
/// in the parallel substrate (which owns the thread-count knob), and in
/// the observability crate (which owns the audited clock seam).
const WALL_CLOCK_EXEMPT: &[&str] = &["fairnn-bench", "fairnn-parallel", "fairnn-obs"];

/// Only the observability crate's `Clock` seam and benchmark binaries may
/// read the raw OS clocks; everything else routes timing through
/// `fairnn_obs::monotonic_ns`/`wall_unix_ns` so tests can inject a
/// `ManualClock`.
const DIRECT_INSTANT_EXEMPT: &[&str] = &["fairnn-obs", "fairnn-bench"];

/// Only the parallel substrate may create OS threads.
const THREAD_EXEMPT: &[&str] = &["fairnn-parallel"];

/// Hash-container methods that expose arbitrary iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers that read the wall clock or ambient machine state.
const WALL_CLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "available_parallelism",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "from_os_rng",
];

/// The parallel substrate's fork/join entry points (for nesting detection).
const SUBSTRATE_CALLS: &[&str] = &["map_ranges", "map_slices", "map_indexed", "for_each_mut"];

/// The one module blessed to contain `unsafe` code: the snapshot crate's
/// byte-view layer (aligned buffers, Pod reinterpretation, the SIMD
/// dispatcher and the prefetch shim). `zero-copy-unsafe` waivers are
/// honored only at this path; everywhere else the rule is unconditional,
/// so a waiver comment cannot smuggle `unsafe` into another crate.
pub const ZERO_COPY_BLESSED_PATH: &str = "crates/snapshot/src/bytes.rs";

/// The only files allowed to call the sealed index-mutation entry points
/// (`insert_point`/`remove_point`/`compact_retain`/`thaw`): the LSH table
/// module that defines them and the engine shard that wraps them. Every
/// other call site must mutate through `fairnn_engine::EngineWriter`,
/// whose commits are write-ahead-logged and published as immutable
/// generations — a direct call would thaw structures readers may be
/// serving and leave no WAL record to replay.
pub const THAW_BLESSED_PATHS: &[&str] = &["crates/lsh/src/table.rs", "crates/engine/src/shard.rs"];

/// The sealed mutation entry points the `thaw-outside-writer` rule watches.
const THAW_SEALED_CALLS: &[&str] = &["insert_point", "remove_point", "compact_retain", "thaw"];

/// The only places allowed to touch `std::net`: the server crate (the
/// workspace's single network boundary — every socket behind it carries
/// the bounded parser, admission control, and drain lifecycle) and the
/// bench load generator that drives that server over loopback. A socket
/// opened anywhere else would bypass all of that, so `net-outside-server`
/// flags it. Paths are workspace-relative prefixes.
pub const NET_BLESSED_PATHS: &[&str] = &[
    "crates/server/",
    "crates/bench/src/bin/server_throughput.rs",
];

/// The socket-opening types the `net-outside-server` rule watches (the
/// `std::net` path segment itself is flagged separately, so address-only
/// imports don't slip a listener in through a glob).
const NET_SOCKET_TYPES: &[&str] = &[
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "UnixListener",
    "UnixStream",
];

/// Every rule id the tool knows, with its severity and one-line summary
/// (the README and `--help` render this table).
pub const RULES: &[(&str, Severity, &str)] = &[
    (
        "unordered-iter",
        Severity::Deny,
        "no HashMap/HashSet iteration order may reach a data path of the deterministic crates",
    ),
    (
        "wall-clock",
        Severity::Deny,
        "no wall-clock reads or ambient entropy/core-count outside fairnn-bench and fairnn-parallel",
    ),
    (
        "snapshot-panic",
        Severity::Deny,
        "no unwrap/expect/panic! in fairnn-snapshot: decoders return typed SnapshotErrors",
    ),
    (
        "snapshot-index",
        Severity::Deny,
        "no direct slice indexing in fairnn-snapshot: bounds failures must become SnapshotErrors",
    ),
    (
        "raw-thread",
        Severity::Deny,
        "no std::thread::spawn/scope outside fairnn-parallel",
    ),
    (
        "direct-instant",
        Severity::Deny,
        "no Instant::now/SystemTime::now outside fairnn-obs and fairnn-bench: \
         time flows through the fairnn-obs Clock seam",
    ),
    (
        "nested-parallel",
        Severity::Warn,
        "nested fairnn-parallel substrate calls run serially — flag them for restructuring",
    ),
    (
        "zero-copy-unsafe",
        Severity::Deny,
        "no unsafe/transmute/raw-pointer casts outside the blessed fairnn-snapshot \
         byte-view module; every use there carries a written waiver",
    ),
    (
        "thaw-outside-writer",
        Severity::Deny,
        "no direct index mutation (insert_point/remove_point/compact_retain/thaw) outside \
         the LSH table module and the engine shard: mutate through EngineWriter::commit",
    ),
    (
        "net-outside-server",
        Severity::Deny,
        "no std::net sockets outside fairnn-server and the bench load generator: \
         the network boundary is one crate, behind its parser caps and admission control",
    ),
    (
        "waiver-reason",
        Severity::Deny,
        "every waiver must be well-formed, name known rules, and carry a non-empty reason",
    ),
];

/// Whether `rule` is enforced for `crate_name`.
pub fn rule_applies(rule: &str, crate_name: &str) -> bool {
    match rule {
        "unordered-iter" => DETERMINISM_CRATES.contains(&crate_name),
        "wall-clock" => !WALL_CLOCK_EXEMPT.contains(&crate_name),
        "snapshot-panic" | "snapshot-index" => crate_name == "fairnn-snapshot",
        "raw-thread" => !THREAD_EXEMPT.contains(&crate_name),
        "direct-instant" => !DIRECT_INSTANT_EXEMPT.contains(&crate_name),
        "nested-parallel" => crate_name != "fairnn-parallel",
        "zero-copy-unsafe" => true,
        "thaw-outside-writer" => true,
        "net-outside-server" => true,
        "waiver-reason" => true,
        _ => false,
    }
}

/// Audits one lexed file and resolves waivers. `path` is only used for
/// diagnostics; `crate_name` selects the applicable rules.
pub fn audit_tokens(path: &str, crate_name: &str, tokens: &[Token]) -> Vec<Finding> {
    let fc = FileContext::new(tokens);
    let waivers = parse_waivers(&fc.comments, &fc.code);
    let mut findings = Vec::new();

    if rule_applies("unordered-iter", crate_name) {
        check_unordered_iter(&fc, &mut findings);
    }
    if rule_applies("wall-clock", crate_name) {
        check_wall_clock(&fc, &mut findings);
    }
    if rule_applies("snapshot-panic", crate_name) {
        check_snapshot_panic(&fc, &mut findings);
    }
    if rule_applies("snapshot-index", crate_name) {
        check_snapshot_index(&fc, &mut findings);
    }
    if rule_applies("raw-thread", crate_name) {
        check_raw_thread(&fc, &mut findings);
    }
    if rule_applies("direct-instant", crate_name) {
        check_direct_instant(&fc, &mut findings);
    }
    if rule_applies("nested-parallel", crate_name) {
        check_nested_parallel(&fc, &mut findings);
    }
    if rule_applies("zero-copy-unsafe", crate_name) {
        check_zero_copy_unsafe(&fc, &mut findings);
    }
    if rule_applies("thaw-outside-writer", crate_name)
        && !THAW_BLESSED_PATHS.iter().any(|p| path.ends_with(p))
    {
        check_thaw_outside_writer(&fc, &mut findings);
    }
    if rule_applies("net-outside-server", crate_name)
        && !NET_BLESSED_PATHS.iter().any(|p| path.starts_with(p))
    {
        check_net_outside_server(&fc, &mut findings);
    }
    check_waivers(&waivers, &mut findings);

    let mut out: Vec<Finding> = findings
        .into_iter()
        .map(|raw| resolve(path, raw, &waivers))
        .collect();
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// A finding before path stamping and waiver resolution.
struct Raw {
    rule: &'static str,
    severity: Severity,
    line: u32,
    col: u32,
    message: String,
}

fn raw(rule: &'static str, severity: Severity, t: &Token, message: String) -> Raw {
    Raw {
        rule,
        severity,
        line: t.line,
        col: t.col,
        message,
    }
}

fn resolve(path: &str, f: Raw, waivers: &[Waiver]) -> Finding {
    // Waivers never cover the waiver hygiene rule itself, and waivers for
    // the unsafe rule only count inside the blessed byte-view module.
    let unwaivable = f.rule == "waiver-reason"
        || (f.rule == "zero-copy-unsafe" && !path.ends_with(ZERO_COPY_BLESSED_PATH));
    let waiver = if unwaivable {
        None
    } else {
        waivers.iter().find(|w| w.covers(f.rule, f.line))
    };
    Finding {
        rule: f.rule,
        severity: f.severity,
        path: path.to_string(),
        line: f.line,
        col: f.col,
        message: f.message,
        waived: waiver.is_some(),
        waive_reason: waiver.map(|w| w.reason.clone()),
    }
}

fn check_unordered_iter(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    for i in 0..code.len() {
        if fc.in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `recv.iter()` where `recv` is a known hash container.
        if ITER_METHODS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct(b'('))
            && i >= 2
            && code[i - 1].is_punct(b'.')
            && code[i - 2].kind == TokenKind::Ident
            && fc.hash_names.contains(&code[i - 2].text)
        {
            out.push(raw(
                "unordered-iter",
                Severity::Deny,
                t,
                format!(
                    "`{}.{}()` iterates a hash container in arbitrary order; \
                     sort the keys first or waive with the ordering argument",
                    code[i - 2].text,
                    t.text
                ),
            ));
            continue;
        }
        // Path form: `HashMap::values` passed as a function.
        if (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && code.get(i + 1).is_some_and(|a| a.is_punct(b':'))
            && code.get(i + 2).is_some_and(|b| b.is_punct(b':'))
            && code
                .get(i + 3)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
        {
            out.push(raw(
                "unordered-iter",
                Severity::Deny,
                t,
                format!(
                    "`{}::{}` exposes arbitrary hash iteration order",
                    t.text,
                    code[i + 3].text
                ),
            ));
            continue;
        }
        // `for x in &map { … }` over a known hash container.
        if t.is_ident("for") {
            if let Some(name) = for_loop_hash_receiver(fc, i) {
                out.push(raw(
                    "unordered-iter",
                    Severity::Deny,
                    t,
                    format!("`for … in {name}` iterates a hash container in arbitrary order"),
                ));
            }
        }
    }
}

/// For a `for` at code index `i`, returns the iterated hash container name
/// when the loop ranges directly over one (`&map`, `&mut map`,
/// `&self.map`) — method chains are caught by the receiver check instead.
fn for_loop_hash_receiver(fc: &FileContext<'_>, i: usize) -> Option<String> {
    let code = &fc.code;
    // Skip the pattern: everything up to the `in` at paren/bracket depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < code.len() {
        let t = code[j];
        if t.is_punct(b'(') || t.is_punct(b'[') {
            depth += 1;
        } else if t.is_punct(b')') || t.is_punct(b']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break;
        } else if t.is_punct(b'{') {
            return None; // malformed loop head
        }
        j += 1;
    }
    // The iterated expression, up to the body `{`.
    let mut expr: Vec<&Token> = Vec::new();
    j += 1;
    while j < code.len() && !code[j].is_punct(b'{') {
        expr.push(code[j]);
        j += 1;
    }
    // Strip leading `&` / `mut`.
    let mut k = 0;
    while expr
        .get(k)
        .is_some_and(|t| t.is_punct(b'&') || t.is_ident("mut"))
    {
        k += 1;
    }
    let tail = &expr[k..];
    let name = match tail {
        [one] if one.kind == TokenKind::Ident => one.text.clone(),
        [s, dot, field]
            if s.is_ident("self") && dot.is_punct(b'.') && field.kind == TokenKind::Ident =>
        {
            format!("self.{}", field.text)
        }
        _ => return None,
    };
    let bare = name.rsplit('.').next().unwrap_or(&name);
    fc.hash_names.contains(bare).then_some(name)
}

fn check_wall_clock(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    for i in 0..fc.code.len() {
        if fc.in_test[i] {
            continue;
        }
        let t = fc.code[i];
        if t.kind == TokenKind::Ident && WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            out.push(raw(
                "wall-clock",
                Severity::Deny,
                t,
                format!(
                    "`{}` reads wall-clock/ambient machine state; deterministic crates must \
                     take time, seeds and thread counts as explicit inputs",
                    t.text
                ),
            ));
        }
    }
}

fn check_snapshot_panic(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    for i in 0..code.len() {
        if fc.in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_method_call = code.get(i + 1).is_some_and(|n| n.is_punct(b'('))
            && i >= 1
            && code[i - 1].is_punct(b'.');
        if (t.is_ident("unwrap") || t.is_ident("expect")) && is_method_call {
            out.push(raw(
                "snapshot-panic",
                Severity::Deny,
                t,
                format!(
                    "`.{}()` can panic; snapshot code must return a typed SnapshotError",
                    t.text
                ),
            ));
        }
        if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && code.get(i + 1).is_some_and(|n| n.is_punct(b'!'))
        {
            out.push(raw(
                "snapshot-panic",
                Severity::Deny,
                t,
                format!(
                    "`{}!` aborts on bad input; return a typed SnapshotError instead",
                    t.text
                ),
            ));
        }
    }
}

fn check_snapshot_index(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    for i in 0..fc.code.len() {
        if fc.in_test[i] {
            continue;
        }
        if fc.is_index_bracket(i) {
            out.push(raw(
                "snapshot-index",
                Severity::Deny,
                fc.code[i],
                "direct slice indexing panics when out of bounds; use `get`/checked helpers \
                 and surface a SnapshotError"
                    .to_string(),
            ));
        }
    }
}

fn check_raw_thread(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    for i in 0..code.len() {
        if fc.in_test[i] {
            continue;
        }
        if code[i].is_ident("thread")
            && code.get(i + 1).is_some_and(|a| a.is_punct(b':'))
            && code.get(i + 2).is_some_and(|b| b.is_punct(b':'))
            && code
                .get(i + 3)
                .is_some_and(|m| m.is_ident("spawn") || m.is_ident("scope"))
        {
            out.push(raw(
                "raw-thread",
                Severity::Deny,
                code[i],
                format!(
                    "`thread::{}` creates raw OS threads; route parallelism through \
                     fairnn-parallel so thread counts stay centrally controlled",
                    code[i + 3].text
                ),
            ));
        }
    }
}

fn check_direct_instant(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    for i in 0..code.len() {
        if fc.in_test[i] {
            continue;
        }
        let t = code[i];
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && code.get(i + 1).is_some_and(|a| a.is_punct(b':'))
            && code.get(i + 2).is_some_and(|b| b.is_punct(b':'))
            && code.get(i + 3).is_some_and(|m| m.is_ident("now"))
            && code.get(i + 4).is_some_and(|p| p.is_punct(b'('))
        {
            out.push(raw(
                "direct-instant",
                Severity::Deny,
                t,
                format!(
                    "`{}::now()` reads the OS clock directly; use \
                     `fairnn_obs::monotonic_ns`/`wall_unix_ns` so the Clock seam \
                     stays the single audited timing source",
                    t.text
                ),
            ));
        }
    }
}

fn check_nested_parallel(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    let mut paren_depth = 0usize;
    // Depths at which a substrate call's argument list opened.
    let mut open_calls: Vec<usize> = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.is_punct(b'(') {
            paren_depth += 1;
        } else if t.is_punct(b')') {
            paren_depth = paren_depth.saturating_sub(1);
            while open_calls.last().is_some_and(|&d| d > paren_depth) {
                open_calls.pop();
            }
        } else if t.kind == TokenKind::Ident
            && SUBSTRATE_CALLS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct(b'('))
            && !fc.in_test[i]
        {
            if !open_calls.is_empty() {
                out.push(raw(
                    "nested-parallel",
                    Severity::Warn,
                    t,
                    format!(
                        "`{}` is called inside another fairnn-parallel substrate call; \
                         nested calls run serially — restructure to one flat fork/join",
                        t.text
                    ),
                ));
            }
            open_calls.push(paren_depth + 1);
        }
    }
}

fn check_zero_copy_unsafe(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    // Memory safety applies to test code too: no `in_test` skip here.
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.is_ident("unsafe") {
            out.push(raw(
                "zero-copy-unsafe",
                Severity::Deny,
                t,
                "`unsafe` lives only in the blessed fairnn-snapshot byte-view module \
                 (crates/snapshot/src/bytes.rs), where each use carries a written waiver"
                    .to_string(),
            ));
        } else if t.is_ident("transmute") {
            out.push(raw(
                "zero-copy-unsafe",
                Severity::Deny,
                t,
                "`transmute` reinterprets memory without layout checks; use the blessed \
                 Pod byte-view helpers in crates/snapshot/src/bytes.rs instead"
                    .to_string(),
            ));
        } else if t.is_ident("as")
            && code.get(i + 1).is_some_and(|s| s.is_punct(b'*'))
            && code
                .get(i + 2)
                .is_some_and(|m| m.is_ident("const") || m.is_ident("mut"))
        {
            out.push(raw(
                "zero-copy-unsafe",
                Severity::Deny,
                t,
                format!(
                    "`as *{}` raw-pointer cast belongs in the blessed fairnn-snapshot \
                     byte-view module, not in safe crates",
                    code[i + 2].text
                ),
            ));
        }
    }
}

fn check_thaw_outside_writer(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    for i in 0..code.len() {
        if fc.in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident || !THAW_SEALED_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        if !code.get(i + 1).is_some_and(|n| n.is_punct(b'(')) {
            continue; // not a call (a definition's generics open with `<`)
        }
        let method_call = i >= 1 && code[i - 1].is_punct(b'.');
        let path_call = i >= 2 && code[i - 1].is_punct(b':') && code[i - 2].is_punct(b':');
        if method_call || path_call {
            out.push(raw(
                "thaw-outside-writer",
                Severity::Deny,
                t,
                format!(
                    "`{}` mutates frozen index structures directly, thawing tables readers \
                     may be serving and bypassing the write-ahead log; route the mutation \
                     through `fairnn_engine::EngineWriter::commit`",
                    t.text
                ),
            ));
        }
    }
}

/// `net-outside-server`: flags the socket types and the `std::net` path
/// segment anywhere outside the blessed paths (the caller applies the
/// path blessing). Test code is exempt — integration suites drive the
/// server with raw client sockets on purpose.
fn check_net_outside_server(fc: &FileContext<'_>, out: &mut Vec<Raw>) {
    let code = &fc.code;
    for i in 0..code.len() {
        if fc.in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let socket_type = NET_SOCKET_TYPES.contains(&t.text.as_str());
        // The `net` segment of a `std::net` path: idents are separated by
        // two `:` punct tokens.
        let std_net_path = t.text == "net"
            && i >= 3
            && code[i - 1].is_punct(b':')
            && code[i - 2].is_punct(b':')
            && code[i - 3].kind == TokenKind::Ident
            && code[i - 3].text == "std";
        if socket_type || std_net_path {
            out.push(raw(
                "net-outside-server",
                Severity::Deny,
                t,
                format!(
                    "`{}` opens a network path outside the server crate, bypassing the \
                     bounded parser, admission control, and drain lifecycle; serve through \
                     `fairnn-server` (or extend NET_BLESSED_PATHS with a written rationale)",
                    t.text
                ),
            ));
        }
    }
}

fn check_waivers(waivers: &[Waiver], out: &mut Vec<Raw>) {
    for w in waivers {
        let at = Token {
            kind: TokenKind::Comment,
            text: String::new(),
            line: w.line,
            col: 1,
            start: 0,
            end: 0,
        };
        if let Some(what) = &w.malformed {
            out.push(raw(
                "waiver-reason",
                Severity::Deny,
                &at,
                format!("malformed waiver: {what}"),
            ));
            continue;
        }
        if w.reason.is_empty() {
            out.push(raw(
                "waiver-reason",
                Severity::Deny,
                &at,
                "waiver carries no reason; append `— <why this is sound>`".to_string(),
            ));
        }
        for r in &w.rules {
            if !RULES.iter().any(|(id, _, _)| id == r) {
                out.push(raw(
                    "waiver-reason",
                    Severity::Deny,
                    &at,
                    format!("waiver names unknown rule `{r}`"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Lexes `src` and audits it as if it lived at `path`.
    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let tokens = lex(src.as_bytes());
        audit_tokens(path, &crate::crate_name_of(path), &tokens)
    }

    fn unwaived<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
        fs.iter().filter(|f| f.rule == rule && !f.waived).collect()
    }

    const ENGINE: &str = "crates/engine/src/x.rs";
    const BENCH: &str = "crates/bench/src/x.rs";
    const SNAPSHOT: &str = "crates/snapshot/src/x.rs";
    const PARALLEL: &str = "crates/parallel/src/x.rs";
    const OBS: &str = "crates/obs/src/x.rs";

    // ---- unordered-iter -------------------------------------------------

    #[test]
    fn unordered_iter_flags_hash_receivers() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u64, u32>) {\n\
                       for k in m.keys() { use_(k); }\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "unordered-iter").len(), 1, "{fs:?}");
        assert_eq!(unwaived(&fs, "unordered-iter")[0].line, 3);
    }

    #[test]
    fn unordered_iter_flags_for_loops_over_maps() {
        let src = "fn f() {\n\
                       let mut m = std::collections::HashMap::new();\n\
                       m.insert(1u64, 2u32);\n\
                       for (k, v) in &m { use_(k, v); }\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "unordered-iter").len(), 1, "{fs:?}");
    }

    #[test]
    fn unordered_iter_honors_waivers() {
        let src = "fn f(m: &std::collections::HashMap<u64, u32>) {\n\
                       // fairnn-audit: allow(unordered-iter) — collected and sorted below\n\
                       let mut v: Vec<_> = m.keys().collect();\n\
                       v.sort_unstable();\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert!(unwaived(&fs, "unordered-iter").is_empty(), "{fs:?}");
        let waived: Vec<_> = fs.iter().filter(|f| f.waived).collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(
            waived[0].waive_reason.as_deref(),
            Some("collected and sorted below")
        );
    }

    #[test]
    fn unordered_iter_ignores_ordered_containers_lookups_and_tests() {
        // BTreeMap iteration, Vec iteration, pure lookups, and test code
        // must all stay silent.
        let src = "fn f(b: &std::collections::BTreeMap<u64, u32>, v: &Vec<u32>) {\n\
                       for k in b.keys() { use_(k); }\n\
                       for x in v.iter() { use_(x); }\n\
                   }\n\
                   fn g(m: &std::collections::HashMap<u64, u32>) -> Option<&u32> {\n\
                       m.get(&7)\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn h(m: &std::collections::HashMap<u64, u32>) {\n\
                           for k in m.keys() { use_(k); }\n\
                       }\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert!(unwaived(&fs, "unordered-iter").is_empty(), "{fs:?}");
    }

    #[test]
    fn unordered_iter_only_applies_to_determinism_crates() {
        let src = "fn f(m: &std::collections::HashMap<u64, u32>) { for k in m.keys() {} }\n";
        assert!(!unwaived(&findings(ENGINE, src), "unordered-iter").is_empty());
        assert!(unwaived(&findings(BENCH, src), "unordered-iter").is_empty());
    }

    // ---- wall-clock -----------------------------------------------------

    #[test]
    fn wall_clock_flags_time_and_entropy_outside_exempt_crates() {
        let src = "fn f() {\n\
                       let t = std::time::Instant::now();\n\
                       let n = std::thread::available_parallelism();\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "wall-clock").len(), 2, "{fs:?}");
        assert!(unwaived(&findings(BENCH, src), "wall-clock").is_empty());
        assert!(unwaived(&findings(PARALLEL, src), "wall-clock").is_empty());
    }

    #[test]
    fn wall_clock_ignores_lookalike_identifiers() {
        // `instant` (lowercase) and `my_Instant_thing` are different
        // identifiers; comments and strings are opaque.
        let src = "fn f() {\n\
                       let instant = 3;\n\
                       // Instant::now() would be flagged here if comments counted\n\
                       let s = \"Instant::now()\";\n\
                   }\n";
        assert!(unwaived(&findings(ENGINE, src), "wall-clock").is_empty());
    }

    // ---- snapshot-panic / snapshot-index --------------------------------

    #[test]
    fn snapshot_panic_flags_unwrap_expect_and_panics() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                       let a = x.unwrap();\n\
                       let b = x.expect(\"present\");\n\
                       panic!(\"boom\");\n\
                   }\n";
        let fs = findings(SNAPSHOT, src);
        assert_eq!(unwaived(&fs, "snapshot-panic").len(), 3, "{fs:?}");
        // The same code outside the snapshot crate is out of scope.
        assert!(unwaived(&findings(ENGINE, src), "snapshot-panic").is_empty());
    }

    #[test]
    fn snapshot_panic_ignores_unwrap_or_family() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                       x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n\
                   }\n";
        assert!(unwaived(&findings(SNAPSHOT, src), "snapshot-panic").is_empty());
    }

    #[test]
    fn snapshot_index_flags_direct_indexing_but_not_macros_or_attrs() {
        let src = "#[derive(Debug)]\n\
                   struct S;\n\
                   fn f(buf: &[u8], i: usize) -> u8 {\n\
                       let v = vec![0u8];\n\
                       buf[i]\n\
                   }\n";
        let fs = findings(SNAPSHOT, src);
        assert_eq!(unwaived(&fs, "snapshot-index").len(), 1, "{fs:?}");
        assert_eq!(unwaived(&fs, "snapshot-index")[0].line, 5);
    }

    #[test]
    fn snapshot_rules_skip_test_modules() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn f(buf: &[u8]) -> u8 { buf[0] }\n\
                       fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   }\n";
        let fs = findings(SNAPSHOT, src);
        assert!(unwaived(&fs, "snapshot-index").is_empty(), "{fs:?}");
        assert!(unwaived(&fs, "snapshot-panic").is_empty(), "{fs:?}");
    }

    // ---- raw-thread -----------------------------------------------------

    #[test]
    fn raw_thread_flags_spawn_and_scope_outside_the_substrate() {
        let src = "fn f() {\n\
                       std::thread::spawn(|| {});\n\
                       std::thread::scope(|s| {});\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "raw-thread").len(), 2, "{fs:?}");
        assert!(unwaived(&findings(PARALLEL, src), "raw-thread").is_empty());
    }

    #[test]
    fn raw_thread_ignores_comments_and_other_thread_items() {
        let src = "fn f() {\n\
                       // a comment may mention thread::spawn freely\n\
                       let handle = std::thread::current();\n\
                   }\n";
        assert!(unwaived(&findings(ENGINE, src), "raw-thread").is_empty());
    }

    // ---- direct-instant -------------------------------------------------

    #[test]
    fn direct_instant_flags_now_outside_obs_and_bench() {
        let src = "fn f() {\n\
                       let t = std::time::Instant::now();\n\
                       let w = std::time::SystemTime::now();\n\
                   }\n";
        // Parallel is wall-clock-exempt but NOT direct-instant-exempt: it may
        // read core counts, but its timing must go through the Clock seam.
        let fs = findings(PARALLEL, src);
        assert_eq!(unwaived(&fs, "direct-instant").len(), 2, "{fs:?}");
        assert!(unwaived(&findings(OBS, src), "direct-instant").is_empty());
        assert!(unwaived(&findings(BENCH, src), "direct-instant").is_empty());
    }

    #[test]
    fn direct_instant_ignores_other_instant_items_and_tests() {
        // Type positions, durations since an Instant, comments, strings and
        // test modules must all stay silent.
        let src = "fn f(anchor: std::time::Instant) -> u64 {\n\
                       // Instant::now() in a comment is fine\n\
                       let s = \"SystemTime::now()\";\n\
                       anchor.elapsed().as_nanos() as u64\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { let _ = std::time::Instant::now(); }\n\
                   }\n";
        assert!(unwaived(&findings(ENGINE, src), "direct-instant").is_empty());
    }

    #[test]
    fn direct_instant_honors_waivers() {
        let src = "fn f() {\n\
                       // fairnn-audit: allow(direct-instant) — one-shot startup stamp\n\
                       let t = std::time::Instant::now();\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert!(unwaived(&fs, "direct-instant").is_empty(), "{fs:?}");
        assert_eq!(fs.iter().filter(|f| f.waived).count(), 1);
    }

    // ---- nested-parallel ------------------------------------------------

    #[test]
    fn nested_parallel_warns_only_on_nesting() {
        let flat = "fn f() {\n\
                        fairnn_parallel::map_ranges(0, 4, |r| r);\n\
                        fairnn_parallel::map_slices(&[1], |s| s);\n\
                    }\n";
        assert!(unwaived(&findings(ENGINE, flat), "nested-parallel").is_empty());

        let nested = "fn f() {\n\
                          fairnn_parallel::map_ranges(0, 4, |r| {\n\
                              fairnn_parallel::map_indexed(3, |i| i)\n\
                          });\n\
                      }\n";
        let fs = findings(ENGINE, nested);
        let warns = unwaived(&fs, "nested-parallel");
        assert_eq!(warns.len(), 1, "{fs:?}");
        assert_eq!(warns[0].severity, Severity::Warn);
    }

    // ---- zero-copy-unsafe -----------------------------------------------

    #[test]
    fn zero_copy_flags_unsafe_transmute_and_raw_casts_everywhere() {
        let src = "fn f(x: &u64) -> u32 {\n\
                       let p = x as *const u64;\n\
                       let y: u32 = unsafe { std::mem::transmute(3.0f32) };\n\
                       y\n\
                   }\n";
        let fs = findings(ENGINE, src);
        // `as *const`, `unsafe`, `transmute` — three findings, all deny.
        assert_eq!(unwaived(&fs, "zero-copy-unsafe").len(), 3, "{fs:?}");
        // The rule applies in every crate, including bench and parallel.
        assert_eq!(unwaived(&findings(BENCH, src), "zero-copy-unsafe").len(), 3);
        assert_eq!(
            unwaived(&findings(PARALLEL, src), "zero-copy-unsafe").len(),
            3
        );
    }

    #[test]
    fn zero_copy_applies_inside_test_modules_too() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn f() { unsafe { std::hint::unreachable_unchecked() } }\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "zero-copy-unsafe").len(), 1, "{fs:?}");
    }

    #[test]
    fn zero_copy_ignores_lookalikes_comments_and_strings() {
        // `unsafe_code` (the lint name), plain `as` casts, and mentions in
        // comments/strings are all out of scope.
        let src = "#![forbid(unsafe_code)]\n\
                   fn f(x: u64) -> u32 {\n\
                       // unsafe { } in a comment is fine\n\
                       let s = \"unsafe transmute as *const\";\n\
                       let _ = s;\n\
                       x as u32\n\
                   }\n";
        assert!(unwaived(&findings(ENGINE, src), "zero-copy-unsafe").is_empty());
    }

    #[test]
    fn zero_copy_waivers_count_only_in_the_blessed_module() {
        let src = "fn f(b: &[u8]) -> &[u8] {\n\
                       // fairnn-audit: allow(zero-copy-unsafe) — reinterprets its own allocation\n\
                       unsafe { std::slice::from_raw_parts(b.as_ptr(), b.len()) }\n\
                   }\n";
        // In the blessed byte-view module the waiver silences the finding…
        let blessed = findings(ZERO_COPY_BLESSED_PATH, src);
        assert!(
            unwaived(&blessed, "zero-copy-unsafe").is_empty(),
            "{blessed:?}"
        );
        assert_eq!(blessed.iter().filter(|f| f.waived).count(), 1);
        // …anywhere else the identical waiver is ignored.
        let elsewhere = findings(ENGINE, src);
        assert_eq!(
            unwaived(&elsewhere, "zero-copy-unsafe").len(),
            1,
            "{elsewhere:?}"
        );
        // Even elsewhere in the snapshot crate the waiver does not count.
        let snapshot_other = findings(SNAPSHOT, src);
        assert_eq!(unwaived(&snapshot_other, "zero-copy-unsafe").len(), 1);
    }

    #[test]
    fn zero_copy_unwaived_unsafe_in_blessed_module_still_fails() {
        let src = "fn f(b: &[u8]) -> &[u8] {\n\
                       unsafe { std::slice::from_raw_parts(b.as_ptr(), b.len()) }\n\
                   }\n";
        let fs = findings(ZERO_COPY_BLESSED_PATH, src);
        assert_eq!(unwaived(&fs, "zero-copy-unsafe").len(), 1, "{fs:?}");
    }

    // ---- thaw-outside-writer --------------------------------------------

    #[test]
    fn thaw_outside_writer_flags_sealed_calls_in_every_crate() {
        let src = "fn f(index: &mut fairnn_lsh::LshIndex<H>, p: &P) {\n\
                       let id = index.insert_point(p);\n\
                       index.remove_point(p, id);\n\
                       index.compact_retain(&[0], 1);\n\
                       LshIndex::thaw(index);\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "thaw-outside-writer").len(), 4, "{fs:?}");
        // The rule has no crate exemption — only blessed paths.
        assert_eq!(
            unwaived(&findings(BENCH, src), "thaw-outside-writer").len(),
            4
        );
        assert_eq!(
            unwaived(
                &findings("crates/lsh/src/other.rs", src),
                "thaw-outside-writer"
            )
            .len(),
            4
        );
    }

    #[test]
    fn thaw_outside_writer_blesses_the_table_and_shard_modules() {
        let src = "fn f(index: &mut LshIndex<H>, p: &P) {\n\
                       index.insert_point(p);\n\
                   }\n";
        for blessed in THAW_BLESSED_PATHS {
            let fs = findings(blessed, src);
            assert!(
                unwaived(&fs, "thaw-outside-writer").is_empty(),
                "{blessed}: {fs:?}"
            );
        }
    }

    #[test]
    fn thaw_outside_writer_ignores_definitions_tests_and_lookalikes() {
        // Definitions (generic or not), test modules, comments and strings
        // are out of scope; so is an unrelated `thaw` identifier that is
        // not a call.
        let src = "pub fn insert_point<P>(p: &P) -> u32 { 0 }\n\
                   pub fn compact_retain(ids: &[u32], n: usize) {}\n\
                   fn g() {\n\
                       // index.insert_point(p) in a comment is fine\n\
                       let s = \"index.remove_point(p, id)\";\n\
                       let thaw = 3;\n\
                       let _ = (s, thaw);\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn h(index: &mut LshIndex<H>, p: &P) { index.insert_point(p); }\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert!(unwaived(&fs, "thaw-outside-writer").is_empty(), "{fs:?}");
    }

    #[test]
    fn thaw_outside_writer_honors_waivers() {
        let src = "fn f(index: &mut LshIndex<H>, p: &P) {\n\
                       // fairnn-audit: allow(thaw-outside-writer) — migration shim, tracked\n\
                       index.insert_point(p);\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert!(unwaived(&fs, "thaw-outside-writer").is_empty(), "{fs:?}");
        assert_eq!(fs.iter().filter(|f| f.waived).count(), 1);
    }

    // ---- net-outside-server ---------------------------------------------

    #[test]
    fn net_outside_server_flags_sockets_and_std_net_paths() {
        let src = "use std::net::TcpListener;\n\
                   fn f() {\n\
                       let l = TcpListener::bind(\"0.0.0.0:80\").unwrap();\n\
                       let s = std::net::TcpStream::connect(\"127.0.0.1:80\");\n\
                       let _ = (l, s);\n\
                   }\n";
        // The import line trips twice (`net` + the type), each raw socket
        // use once more; the exact count matters less than "not zero, on
        // the right lines".
        for path in [ENGINE, OBS, PARALLEL, "src/main.rs"] {
            let fs = findings(path, src);
            let hits = unwaived(&fs, "net-outside-server");
            assert!(hits.len() >= 3, "{path}: {fs:?}");
            assert!(hits.iter().any(|f| f.line == 1), "{path}: {fs:?}");
            assert!(hits.iter().any(|f| f.line == 3), "{path}: {fs:?}");
            assert!(hits.iter().any(|f| f.line == 4), "{path}: {fs:?}");
        }
    }

    #[test]
    fn net_outside_server_blesses_the_server_crate_and_load_generator() {
        let src = "use std::net::TcpListener;\n\
                   fn f() { let _ = TcpListener::bind(\"127.0.0.1:0\"); }\n";
        for path in [
            "crates/server/src/server.rs",
            "crates/server/src/http.rs",
            "crates/bench/src/bin/server_throughput.rs",
        ] {
            let fs = findings(path, src);
            assert!(
                unwaived(&fs, "net-outside-server").is_empty(),
                "{path}: {fs:?}"
            );
        }
        // The rest of the bench crate is NOT blessed: only the server's
        // own load generator may open sockets.
        assert!(!unwaived(&findings(BENCH, src), "net-outside-server").is_empty());
    }

    #[test]
    fn net_outside_server_ignores_tests_and_other_net_idents() {
        // `net` not rooted at `std` (a local module) and lookalike idents
        // must not trip the rule.
        let src = "fn f() { let x = crate::net::helper(); let net = 3; use_(x, net); }\n";
        assert!(unwaived(&findings(ENGINE, src), "net-outside-server").is_empty());
        // Test modules drive servers with raw client sockets on purpose.
        let test_src = "#[cfg(test)]\n\
                        mod tests {\n\
                            fn probe() { let _ = std::net::TcpStream::connect(\"x\"); }\n\
                        }\n";
        assert!(unwaived(&findings(ENGINE, test_src), "net-outside-server").is_empty());
    }

    #[test]
    fn net_outside_server_honors_waivers() {
        let src = "fn f() {\n\
                       // fairnn-audit: allow(net-outside-server) — offline probe, tracked\n\
                       let _ = std::net::TcpStream::connect(\"127.0.0.1:1\");\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert!(unwaived(&fs, "net-outside-server").is_empty(), "{fs:?}");
        assert!(fs.iter().any(|f| f.waived), "{fs:?}");
    }

    // ---- waiver-reason --------------------------------------------------

    #[test]
    fn waiver_reason_rejects_reasonless_malformed_and_unknown() {
        let src = "fn f() {\n\
                       // fairnn-audit: allow(unordered-iter)\n\
                       // fairnn-audit: allow()\n\
                       // fairnn-audit: allow(no-such-rule) — reason\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "waiver-reason").len(), 3, "{fs:?}");
    }

    #[test]
    fn waiver_reason_findings_cannot_be_waived() {
        // A waiver naming waiver-reason must not silence the hygiene rule.
        let src = "fn f() {\n\
                       // fairnn-audit: allow(waiver-reason) — trying to waive the waiver rule\n\
                       // fairnn-audit: allow(unordered-iter)\n\
                   }\n";
        let fs = findings(ENGINE, src);
        assert_eq!(unwaived(&fs, "waiver-reason").len(), 1, "{fs:?}");
    }
}
