//! Per-file context over the token stream: which tokens are test code,
//! which function encloses a token, and which identifiers name hash-ordered
//! containers (`HashMap`/`HashSet`) — the receiver tracking the
//! determinism rules need, built without type inference.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [E]`, `match x { .. }` arms, …). Anything else
/// identifier-like in front of `[` is treated as an indexed value.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "in", "as", "if", "else", "match", "return", "break", "continue", "loop",
    "while", "for", "let", "const", "static", "move", "unsafe", "impl", "where", "pub", "fn",
    "use", "mod", "struct", "enum", "trait", "type", "crate", "super",
];

/// The hash-container type names whose iteration order is arbitrary.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Wrapper types that are themselves order-preserving; an identifier typed
/// `Vec<HashMap<..>>` is not a hash container, but iterating it yields
/// hash containers, which `for` loops propagate to their binding.
const ORDERED_WRAPPERS: &[&str] = &["Vec", "Option", "Box", "Arc", "Rc", "VecDeque", "Mutex"];

/// Context for one file: the comment-free code token stream plus the
/// per-token facts the rules consume.
pub struct FileContext<'a> {
    /// Code tokens (comments and [`TokenKind::Other`] stripped).
    pub code: Vec<&'a Token>,
    /// Comment tokens, for waiver parsing.
    pub comments: Vec<&'a Token>,
    /// `in_test[i]`: code token `i` sits inside `#[cfg(test)]` / `#[test]`
    /// marked items.
    pub in_test: Vec<bool>,
    /// Identifiers declared (anywhere in the file) with a hash-container
    /// type or initializer.
    pub hash_names: BTreeSet<String>,
    /// Identifiers declared as ordered collections *of* hash containers
    /// (`Vec<HashMap<..>>`); iterating them is fine, but a `for` binding
    /// over them is itself a hash container.
    pub hash_element_names: BTreeSet<String>,
}

impl<'a> FileContext<'a> {
    /// Builds the context for a lexed file.
    pub fn new(tokens: &'a [Token]) -> Self {
        let mut code = Vec::with_capacity(tokens.len());
        let mut comments = Vec::new();
        for t in tokens {
            match t.kind {
                TokenKind::Comment => comments.push(t),
                TokenKind::Other => {}
                _ => code.push(t),
            }
        }
        let in_test = mark_test_regions(&code);
        let (mut hash_names, hash_element_names) = collect_hash_names(&code);
        propagate_for_bindings(&code, &hash_element_names, &mut hash_names);
        Self {
            code,
            comments,
            in_test,
            hash_names,
            hash_element_names,
        }
    }

    /// Whether code token `i` can start an index expression's `[` — i.e.
    /// the previous code token is a value-like ident, `)`, or `]`.
    pub fn is_index_bracket(&self, i: usize) -> bool {
        if !self.code[i].is_punct(b'[') {
            return false;
        }
        let Some(prev) = i.checked_sub(1).map(|p| self.code[p]) else {
            return false;
        };
        match prev.kind {
            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.is_punct(b')') || prev.is_punct(b']'),
            _ => false,
        }
    }
}

/// Marks every code token inside a test item. A test item is one whose
/// preceding attributes mention the identifier `test` (`#[test]`,
/// `#[cfg(test)]`); the mark covers the item's brace-delimited body.
fn mark_test_regions(code: &[&Token]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth = 0usize;
    let mut paren = 0usize;
    // Depths at which a test region opened; tokens are test while non-empty.
    let mut test_depths: Vec<usize> = Vec::new();
    let mut pending_test_attr = false;
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if t.is_punct(b'#') && code.get(i + 1).is_some_and(|n| n.is_punct(b'[')) {
            // Scan the attribute; remember whether it mentions `test`.
            let mut j = i + 2;
            let mut brackets = 1usize;
            let mut mentions_test = false;
            while j < code.len() && brackets > 0 {
                if code[j].is_punct(b'[') {
                    brackets += 1;
                } else if code[j].is_punct(b']') {
                    brackets -= 1;
                } else if code[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            pending_test_attr |= mentions_test;
            let attr_in_test = !test_depths.is_empty() || mentions_test;
            for flag in &mut in_test[i..j] {
                *flag = *flag || attr_in_test;
            }
            i = j;
            continue;
        }
        match t.text.as_bytes().first() {
            Some(b'(') if t.kind == TokenKind::Punct => paren += 1,
            Some(b')') if t.kind == TokenKind::Punct => paren = paren.saturating_sub(1),
            Some(b'{') if t.kind == TokenKind::Punct => {
                if pending_test_attr && paren == 0 {
                    test_depths.push(depth);
                    pending_test_attr = false;
                }
                depth += 1;
            }
            Some(b'}') if t.kind == TokenKind::Punct => {
                depth = depth.saturating_sub(1);
                in_test[i] = !test_depths.is_empty();
                while test_depths.last().is_some_and(|&d| d >= depth) {
                    test_depths.pop();
                }
                i += 1;
                continue;
            }
            Some(b';') if t.kind == TokenKind::Punct => {
                // `#[cfg(test)] use …;` — the attribute covered a braceless
                // item; do not leak onto the next one.
                if paren == 0 && depth == test_depths.last().map_or(usize::MAX, |&d| d) {
                    // still inside a region body; nothing to do
                }
                if paren == 0 {
                    in_test[i] = !test_depths.is_empty() || pending_test_attr;
                    pending_test_attr = false;
                    i += 1;
                    continue;
                }
            }
            _ => {}
        }
        in_test[i] = !test_depths.is_empty() || pending_test_attr;
        i += 1;
    }
    in_test
}

/// Walks a type path starting at `i`, returning the final segment ident
/// and the index just past it (`a::b::Name` → `Name`). Stops before `<`.
fn path_final_segment(code: &[&Token], mut i: usize) -> Option<(usize, usize)> {
    let mut last = None;
    loop {
        let t = code.get(i)?;
        if t.kind != TokenKind::Ident {
            return last;
        }
        last = Some((i, i + 1));
        // `::` continues the path; anything else ends it.
        if code.get(i + 1).is_some_and(|a| a.is_punct(b':'))
            && code.get(i + 2).is_some_and(|b| b.is_punct(b':'))
            && code.get(i + 3).is_some_and(|c| c.kind == TokenKind::Ident)
        {
            i += 3;
        } else {
            return last;
        }
    }
}

/// Collects identifiers whose declared type (field, `let`, or parameter
/// annotation) or initializer is a hash container; also identifiers whose
/// type is an ordered wrapper *around* a hash container.
fn collect_hash_names(code: &[&Token]) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut hash = BTreeSet::new();
    let mut hash_elem = BTreeSet::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name : Type` (not `name ::`): field, param, or let annotation.
        if code.get(i + 1).is_some_and(|a| a.is_punct(b':'))
            && !code.get(i + 2).is_some_and(|b| b.is_punct(b':'))
        {
            // Skip `&`, `&mut`, lifetimes in front of the type.
            let mut j = i + 2;
            while code.get(j).is_some_and(|x| {
                x.is_punct(b'&') || x.is_ident("mut") || x.kind == TokenKind::Lifetime
            }) {
                j += 1;
            }
            if let Some((name_idx, after)) = path_final_segment(code, j) {
                let name = code[name_idx].text.as_str();
                if HASH_TYPES.contains(&name) && !code.get(after).is_some_and(|x| x.is_punct(b':'))
                {
                    hash.insert(t.text.clone());
                } else if ORDERED_WRAPPERS.contains(&name)
                    && code.get(after).is_some_and(|x| x.is_punct(b'<'))
                {
                    // Peek at the wrapper's first type argument.
                    if let Some((inner_idx, _)) = path_final_segment(code, after + 1) {
                        if HASH_TYPES.contains(&code[inner_idx].text.as_str()) {
                            hash_elem.insert(t.text.clone());
                        }
                    }
                }
            }
        }
        // `let [mut] name = …HashMap::new()`-style initializers.
        if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = code.get(j).filter(|x| x.kind == TokenKind::Ident) else {
                continue;
            };
            if !code.get(j + 1).is_some_and(|x| x.is_punct(b'=')) {
                continue;
            }
            // Scan a short window of the initializer for `HashMap ::` /
            // `HashSet ::` heads.
            for k in (j + 2)..code.len().min(j + 12) {
                if code[k].is_punct(b';') {
                    break;
                }
                if HASH_TYPES.contains(&code[k].text.as_str())
                    && code.get(k + 1).is_some_and(|a| a.is_punct(b':'))
                {
                    hash.insert(name.text.clone());
                    break;
                }
            }
        }
    }
    (hash, hash_elem)
}

/// `for table in &self.sketches { … }` where `sketches: Vec<HashMap<..>>`
/// binds `table` to a hash container — propagate the mark to the binding.
fn propagate_for_bindings(
    code: &[&Token],
    hash_elem: &BTreeSet<String>,
    hash: &mut BTreeSet<String>,
) {
    for i in 0..code.len() {
        if !code[i].is_ident("for") {
            continue;
        }
        let Some(binding) = code.get(i + 1).filter(|x| x.kind == TokenKind::Ident) else {
            continue;
        };
        if !code.get(i + 2).is_some_and(|x| x.is_ident("in")) {
            continue;
        }
        // The iterated expression, up to the loop's `{`.
        let mut j = i + 3;
        let mut iterates_hash_elem = false;
        while j < code.len() && !code[j].is_punct(b'{') {
            if code[j].kind == TokenKind::Ident && hash_elem.contains(&code[j].text) {
                iterates_hash_elem = true;
            }
            j += 1;
        }
        if iterates_hash_elem {
            hash.insert(binding.text.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(src: &str) -> (Vec<Token>, ()) {
        (lex(src.as_bytes()), ())
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let (tokens, ()) = ctx("fn live() { hot(); }\n\
             #[cfg(test)]\nmod tests { fn helper() { cold(); } }\n\
             #[test]\nfn unit() { colder(); }\n\
             fn live2() { hot2(); }");
        let fc = FileContext::new(&tokens);
        let flag = |word: &str| {
            let i = fc.code.iter().position(|t| t.is_ident(word)).unwrap();
            fc.in_test[i]
        };
        assert!(!flag("hot"));
        assert!(flag("helper"));
        assert!(flag("cold"));
        assert!(flag("unit"));
        assert!(flag("colder"));
        assert!(!flag("hot2"));
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let (tokens, ()) = ctx("#[cfg(test)] use std::x;\nfn live() { hot(); }");
        let fc = FileContext::new(&tokens);
        let i = fc.code.iter().position(|t| t.is_ident("hot")).unwrap();
        assert!(!fc.in_test[i]);
    }

    #[test]
    fn hash_names_found_in_fields_lets_and_params() {
        let (tokens, ()) = ctx(
            "struct S { staging: HashMap<u64, Vec<u32>>, plain: Vec<u32> }\n\
             fn f(seen: &mut HashSet<u32>, v: &[u8]) {\n\
                 let mut local = std::collections::HashMap::new();\n\
                 let okay = Vec::new();\n\
             }\n\
             struct T { nested: Vec<HashMap<u64, u32>> }",
        );
        let fc = FileContext::new(&tokens);
        assert!(fc.hash_names.contains("staging"));
        assert!(fc.hash_names.contains("seen"));
        assert!(fc.hash_names.contains("local"));
        assert!(!fc.hash_names.contains("plain"));
        assert!(!fc.hash_names.contains("okay"));
        assert!(!fc.hash_names.contains("v"));
        assert!(fc.hash_element_names.contains("nested"));
        assert!(!fc.hash_names.contains("nested"));
    }

    #[test]
    fn for_over_vec_of_maps_marks_the_binding() {
        let (tokens, ()) = ctx("struct S { sketches: Vec<HashMap<u64, u32>> }\n\
             fn f(s: &S) { for table in &s.sketches { table.len(); } }");
        let fc = FileContext::new(&tokens);
        assert!(fc.hash_names.contains("table"));
    }

    #[test]
    fn index_brackets_distinguished_from_types_and_macros() {
        let (tokens, ()) = ctx("fn f(a: &[u8], b: [u8; 8]) { let v = vec![0]; a[0]; f(a)[1]; }");
        let fc = FileContext::new(&tokens);
        let index_positions: Vec<u32> = (0..fc.code.len())
            .filter(|&i| fc.is_index_bracket(i))
            .map(|i| fc.code[i].col)
            .collect();
        // Exactly two: `a[0]` and `f(a)[1]`.
        assert_eq!(index_positions.len(), 2, "{index_positions:?}");
    }
}
