//! Report rendering: human `file:line:col` diagnostics and the
//! machine-readable JSON document (same hand-rolled style as the
//! `BENCH_*.json` emitters — no serializer dependency).

use crate::rules::{Finding, Severity, RULES};
use std::fmt::Write as _;

/// The aggregated result of auditing a workspace.
#[derive(Debug)]
pub struct AuditReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, waived or not, in (path, line, col) order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Findings that fail the audit: deny severity and not waived.
    pub fn unwaived_denies(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny && !f.waived)
    }

    /// `(unwaived deny, waived, warn)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let deny = self.unwaived_denies().count();
        let waived = self.findings.iter().filter(|f| f.waived).count();
        let warn = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Warn && !f.waived)
            .count();
        (deny, waived, warn)
    }

    /// Human diagnostics. Unwaived findings always print; waived ones and
    /// warnings print under `verbose` (waivers with their reasons, so a
    /// review can audit the audit).
    pub fn render_human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match (f.waived, f.severity) {
                (true, _) => "waived",
                (false, Severity::Deny) => "deny",
                (false, Severity::Warn) => "warn",
            };
            if !verbose && (f.waived || f.severity == Severity::Warn) {
                continue;
            }
            let _ = write!(
                out,
                "{}:{}:{}: {}({}): {}",
                f.path, f.line, f.col, tag, f.rule, f.message
            );
            if let Some(reason) = &f.waive_reason {
                let _ = write!(out, " [waiver: {reason}]");
            }
            out.push('\n');
        }
        let (deny, waived, warn) = self.counts();
        let _ = writeln!(
            out,
            "fairnn-audit: {} file(s), {} unwaived finding(s), {} waived, {} warning(s)",
            self.files_scanned, deny, waived, warn
        );
        out
    }

    /// The machine-readable report (pretty-printed JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"tool\": \"fairnn-audit\",\n  \"format_version\": 1,\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let (deny, waived, warn) = self.counts();
        let _ = writeln!(
            out,
            "  \"counts\": {{ \"unwaived\": {deny}, \"waived\": {waived}, \"warnings\": {warn} }},"
        );
        out.push_str("  \"rules\": [\n");
        for (i, (rule, severity, summary)) in RULES.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"rule\": {}, \"severity\": {}, \"summary\": {} }}",
                json_str(rule),
                json_str(match severity {
                    Severity::Deny => "deny",
                    Severity::Warn => "warn",
                }),
                json_str(summary)
            );
            out.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
                 \"waived\": {}, \"reason\": {}, \"message\": {} }}",
                json_str(f.rule),
                json_str(match f.severity {
                    Severity::Deny => "deny",
                    Severity::Warn => "warn",
                }),
                json_str(&f.path),
                f.line,
                f.col,
                f.waived,
                match &f.waive_reason {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                },
                json_str(&f.message)
            );
            out.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, waived: bool, severity: Severity) -> Finding {
        Finding {
            rule,
            severity,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "a \"quoted\" message".into(),
            waived,
            waive_reason: waived.then(|| "sorted first".to_string()),
        }
    }

    #[test]
    fn counts_and_exit_relevant_filtering() {
        let report = AuditReport {
            files_scanned: 2,
            findings: vec![
                finding("unordered-iter", false, Severity::Deny),
                finding("unordered-iter", true, Severity::Deny),
                finding("nested-parallel", false, Severity::Warn),
            ],
        };
        assert_eq!(report.counts(), (1, 1, 1));
        assert_eq!(report.unwaived_denies().count(), 1);
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let report = AuditReport {
            files_scanned: 1,
            findings: vec![finding("wall-clock", false, Severity::Deny)],
        };
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"fairnn-audit\""));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("\"reason\": null"));
        assert!(json.contains("\"unwaived\": 1"));
    }

    #[test]
    fn human_rendering_hides_waived_unless_verbose() {
        let report = AuditReport {
            files_scanned: 1,
            findings: vec![finding("unordered-iter", true, Severity::Deny)],
        };
        assert!(!report.render_human(false).contains("waived("));
        let verbose = report.render_human(true);
        assert!(verbose.contains("waived(unordered-iter)"));
        assert!(verbose.contains("[waiver: sorted first]"));
    }
}
