//! A comment- and string-aware token stream over Rust source bytes.
//!
//! This is not a full Rust lexer — it is the minimal byte-level pass the
//! audit rules need: it distinguishes code from comments, string/char
//! literals and raw strings (so a `HashMap` mentioned in a doc comment or a
//! fixture string never trips a rule), attaches a `line:col` span to every
//! token, and never panics on arbitrary input (a property test pins this).
//! Operating on raw bytes sidesteps UTF-8 validity entirely: non-ASCII
//! bytes outside comments and literals become opaque [`TokenKind::Other`]
//! tokens the rules ignore.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `iter`, …).
    Ident,
    /// A single punctuation byte (`.`, `:`, `{`, `[`, …).
    Punct,
    /// A string, raw-string, byte-string, or char literal (content opaque).
    Literal,
    /// A numeric literal.
    Number,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// A `//…` line comment or `/*…*/` block comment, text included —
    /// waiver comments are parsed out of these.
    Comment,
    /// Anything else (stray non-ASCII bytes, shebangs, …).
    Other,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token's bytes, lossily decoded (exact for all ASCII tokens).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
    /// Byte offset of the token's first byte in the input.
    pub start: usize,
    /// Byte offset one past the token's last byte (`start <= end <= len`).
    pub end: usize,
}

impl Token {
    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation byte `p`.
    pub fn is_punct(&self, p: u8) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes() == [p]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Cursor state shared by the sub-lexers.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

/// Lexes `input` into a token stream. Whitespace is dropped; everything
/// else — including comments — becomes a token. Never panics, for any byte
/// sequence; every returned span satisfies
/// `start <= end <= input.len()` and `line >= 1`, `col >= 1`.
pub fn lex(input: &[u8]) -> Vec<Token> {
    let mut cur = Cursor {
        bytes: input,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                lex_line_comment(&mut cur);
                TokenKind::Comment
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                lex_block_comment(&mut cur);
                TokenKind::Comment
            }
            b'"' => {
                lex_string(&mut cur);
                TokenKind::Literal
            }
            b'\'' => lex_quote(&mut cur),
            b'r' | b'b' if starts_prefixed_literal(&cur) => {
                lex_prefixed_literal(&mut cur);
                TokenKind::Literal
            }
            _ if is_ident_start(b) => {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                TokenKind::Number
            }
            _ if b.is_ascii_punctuation() => {
                cur.bump();
                TokenKind::Punct
            }
            _ => {
                cur.bump();
                TokenKind::Other
            }
        };
        tokens.push(Token {
            kind,
            text: String::from_utf8_lossy(&input[start..cur.pos]).into_owned(),
            line,
            col,
            start,
            end: cur.pos,
        });
    }
    tokens
}

fn lex_line_comment(cur: &mut Cursor<'_>) {
    while let Some(b) = cur.peek(0) {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
}

/// Block comments nest, per Rust. An unterminated comment runs to EOF.
fn lex_block_comment(cur: &mut Cursor<'_>) {
    cur.bump_n(2); // `/*`
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump_n(2);
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump_n(2);
            }
            (Some(_), _) => cur.bump(),
            (None, _) => break,
        }
    }
}

/// A `"…"` string with escape handling; unterminated runs to EOF.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.peek(0) {
        match b {
            b'\\' => cur.bump_n(2),
            b'"' => {
                cur.bump();
                return;
            }
            _ => cur.bump(),
        }
    }
}

/// `'` starts either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    // Lifetime heuristic: `'` + ident not closed by another `'`.
    if cur.peek(1).is_some_and(is_ident_start) {
        let mut ahead = 2;
        while cur.peek(ahead).is_some_and(is_ident_continue) {
            ahead += 1;
        }
        if cur.peek(ahead) != Some(b'\'') {
            cur.bump_n(ahead);
            return TokenKind::Lifetime;
        }
    }
    cur.bump(); // opening quote
    match cur.peek(0) {
        Some(b'\\') => {
            cur.bump_n(2);
            // Escapes may be multi-byte (`\u{1F600}`): consume to the quote.
            while let Some(b) = cur.peek(0) {
                cur.bump();
                if b == b'\'' {
                    break;
                }
            }
        }
        Some(_) => {
            cur.bump();
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
        }
        None => {}
    }
    TokenKind::Literal
}

/// Whether the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`.
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    matches!(
        (cur.peek(0), cur.peek(1), cur.peek(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

/// Raw strings `r##"…"##` (any number of hashes), byte strings, byte chars.
fn lex_prefixed_literal(cur: &mut Cursor<'_>) {
    if cur.peek(0) == Some(b'b') {
        cur.bump();
    }
    match cur.peek(0) {
        Some(b'r') => {
            cur.bump();
            let mut hashes = 0usize;
            while cur.peek(0) == Some(b'#') {
                hashes += 1;
                cur.bump();
            }
            if cur.peek(0) != Some(b'"') {
                return; // `r#foo` raw identifier: treated as an opaque token
            }
            cur.bump();
            // Scan for `"` followed by `hashes` hash bytes.
            'scan: while let Some(b) = cur.peek(0) {
                if b == b'"' {
                    for i in 0..hashes {
                        if cur.peek(1 + i) != Some(b'#') {
                            cur.bump();
                            continue 'scan;
                        }
                    }
                    cur.bump_n(1 + hashes);
                    return;
                }
                cur.bump();
            }
        }
        Some(b'"') => lex_string(cur),
        Some(b'\'') => {
            lex_quote(cur);
        }
        _ => {}
    }
}

/// Numbers, including hex/octal/binary, underscores, suffixes and simple
/// floats. A `.` is consumed only when a digit follows, so `0..n` ranges
/// lex as number-punct-punct-ident.
fn lex_number(cur: &mut Cursor<'_>) {
    let mut seen_dot = false;
    while let Some(b) = cur.peek(0) {
        if is_ident_continue(b) {
            cur.bump();
        } else if b == b'.' && !seen_dot && cur.peek(1).is_some_and(|n| n.is_ascii_digit()) {
            seen_dot = true;
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds("let x = \"HashMap.iter()\"; // HashMap::keys\n/* .values() */ y");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Comment)
                .count(),
            2
        );
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let toks = kinds(r##"let s = r#"inner " quote"# ; tail"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("inner")));
        assert!(toks.iter().any(|(_, t)| t == "tail"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let literals = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert!(toks[1].1 == "code");
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let toks = kinds("for i in 0..10 { a[i.0] = 1.5; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "0", "1.5"]);
    }

    #[test]
    fn spans_point_at_sources() {
        let src = "ab\n  cd";
        let toks = lex(src.as_bytes());
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(&src[toks[1].start..toks[1].end], "cd");
    }

    #[test]
    fn unterminated_forms_reach_eof_without_panicking() {
        for src in ["\"unterminated", "/* open", "r#\"open", "'", "b'", "ident"] {
            let toks = lex(src.as_bytes());
            assert!(!toks.is_empty());
            assert!(toks.iter().all(|t| t.end <= src.len()));
        }
    }

    #[test]
    fn non_ascii_bytes_become_other_tokens() {
        let toks = lex(&[0xE2, 0x80, 0x94, b'x']); // an em dash, then `x`
        assert!(toks.iter().any(|t| t.kind == TokenKind::Other));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }
}
