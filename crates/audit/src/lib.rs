//! `fairnn-audit`: a hand-rolled, std-only static-analysis pass enforcing
//! this workspace's core invariant — bit-for-bit deterministic sampling,
//! build and snapshot output — at lint time instead of only at test time.
//!
//! The pipeline is deliberately small: a comment/string-aware byte lexer
//! ([`lexer`]), a per-file context pass ([`analysis`]) that tracks test
//! regions and hash-container receivers, a rule set ([`rules`]) with the
//! project-specific lints, and inline waivers ([`waiver`]) that require a
//! written reason surfaced in the report ([`report`]). There is no
//! dependency on `syn` or any crate — the environment has no registry
//! access, and the auditor must not be able to perturb what it audits.
//!
//! Rules (see [`rules::RULES`] for the live table):
//!
//! * `unordered-iter` — deny un-ordered `HashMap`/`HashSet` iteration in
//!   non-test code of the deterministic crates (space, sketch, lsh, core,
//!   engine, snapshot).
//! * `wall-clock` — deny `Instant`/`SystemTime`/`available_parallelism`/
//!   ambient entropy outside `fairnn-bench`, `fairnn-parallel` and
//!   `fairnn-obs`.
//! * `snapshot-panic` / `snapshot-index` — deny `unwrap`/`expect`/`panic!`
//!   and direct slice indexing in `fairnn-snapshot`; decoders return typed
//!   `SnapshotError`s.
//! * `raw-thread` — deny `std::thread::{spawn, scope}` outside
//!   `fairnn-parallel`.
//! * `direct-instant` — deny `Instant::now()`/`SystemTime::now()` outside
//!   `fairnn-obs` and `fairnn-bench`; timing goes through the
//!   `fairnn_obs::Clock` seam so tests can inject a manual clock.
//! * `nested-parallel` — warn on nested substrate calls (they run
//!   serially by design).
//! * `zero-copy-unsafe` — deny `unsafe`, `transmute` and raw-pointer
//!   casts everywhere except the blessed byte-view module
//!   `crates/snapshot/src/bytes.rs`, where each use must carry a written
//!   waiver; outside that module waivers for this rule are ignored.
//! * `waiver-reason` — waivers must be well-formed and carry a reason.
//!
//! Waiver syntax, on the finding's line or the line above:
//!
//! ```text
//! // fairnn-audit: allow(unordered-iter) — collected and key-sorted below
//! ```

pub mod analysis;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;

pub use report::AuditReport;
pub use rules::{audit_tokens, Finding, Severity};

use std::path::{Path, PathBuf};

/// Audits one file's source bytes. `rel_path` is used for diagnostics and
/// crate attribution (see [`crate_name_of`]).
pub fn audit_source(rel_path: &str, bytes: &[u8]) -> Vec<Finding> {
    let tokens = lexer::lex(bytes);
    rules::audit_tokens(rel_path, &crate_name_of(rel_path), &tokens)
}

/// Maps a workspace-relative path to the crate whose rule scope applies:
/// `crates/<name>/…` → `fairnn-<name>`; the umbrella sources (`src/`,
/// `scripts/`, `examples/`) → `fairnn`.
pub fn crate_name_of(rel_path: &str) -> String {
    let normalized = rel_path.replace('\\', "/");
    let mut parts = normalized.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some(dir) => format!("fairnn-{dir}"),
            None => "fairnn".to_string(),
        },
        _ => "fairnn".to_string(),
    }
}

/// Directories that never contribute auditable non-test code: vendored
/// stand-ins, build output, test/bench/example trees, VCS metadata.
const SKIP_DIRS: &[&str] = &[
    "target",
    "third_party",
    ".git",
    ".github",
    "tests",
    "benches",
    "examples",
];

/// Walks `root` (a workspace checkout) and audits every non-test `.rs`
/// file, in sorted path order so the report is deterministic.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, std::io::Error> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let files_scanned = files.len();
    for rel in &files {
        let bytes = std::fs::read(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(audit_source(&rel_str, &bytes));
    }
    Ok(AuditReport {
        files_scanned,
        findings,
    })
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// CLI driver for the `fairnn-audit` binary. Flags: `--root <dir>` (default
/// `.`), `--json <path>` (write the machine-readable report), `--verbose`
/// (print waived findings and warnings too). Exit codes: 0 clean, 1
/// unwaived findings, 2 usage or I/O error.
pub fn run_cli(args: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                json_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--verbose" | "-v" => {
                verbose = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return 0;
            }
            other => {
                eprintln!("fairnn-audit: unknown argument `{other}`\n{}", usage());
                return 2;
            }
        }
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "fairnn-audit: `{}` does not look like the workspace root (no Cargo.toml); \
             pass --root",
            root.display()
        );
        return 2;
    }
    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fairnn-audit: I/O error while scanning: {e}");
            return 2;
        }
    };
    print!("{}", report.render_human(verbose));
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("fairnn-audit: cannot write {}: {e}", path.display());
            return 2;
        }
    }
    if report.unwaived_denies().next().is_some() {
        1
    } else {
        0
    }
}

fn usage() -> String {
    let mut out = String::from(
        "usage: fairnn-audit [--root <workspace>] [--json <report.json>] [--verbose]\n\nrules:\n",
    );
    for (rule, severity, summary) in rules::RULES {
        out.push_str(&format!(
            "  {rule:<16} {:<5} {summary}\n",
            match severity {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution_follows_the_workspace_layout() {
        assert_eq!(crate_name_of("crates/lsh/src/table.rs"), "fairnn-lsh");
        assert_eq!(
            crate_name_of("crates/snapshot/src/codec.rs"),
            "fairnn-snapshot"
        );
        assert_eq!(crate_name_of("src/lib.rs"), "fairnn");
        assert_eq!(crate_name_of("scripts/bench_gate.rs"), "fairnn");
    }

    #[test]
    fn audit_source_ties_the_pipeline_together() {
        let src =
            "fn f(m: &std::collections::HashMap<u32, u32>) { for k in m.keys() { use_(k); } }";
        let findings = audit_source("crates/engine/src/x.rs", src.as_bytes());
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "unordered-iter" && !f.waived),
            "{findings:?}"
        );
        // The same file under a non-determinism crate produces nothing.
        assert!(audit_source("crates/bench/src/x.rs", src.as_bytes()).is_empty());
    }
}
