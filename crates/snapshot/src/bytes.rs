//! The workspace's one blessed unsafe module: 64-byte-aligned buffers,
//! zero-copy typed views over them, software prefetch, the SIMD feature
//! dispatcher, and the large-allocation counter the restart benchmarks
//! assert against.
//!
//! Everything `unsafe` in the workspace lives behind this module's safe
//! API (the `zero-copy-unsafe` audit rule denies the tokens everywhere
//! else, and honors waivers only here). The exposed surface is safe:
//!
//! * [`ArcBytes`] — an immutable, atomically shared byte buffer whose
//!   first byte is 64-byte aligned. A snapshot image read into one keeps
//!   every section payload at the alignment the writer laid out, so typed
//!   views borrow directly from the file bytes.
//! * [`Pod`] / [`impl_pod!`](crate::impl_pod) — the marker for fixed-width, padding-free,
//!   any-bit-pattern-valid element types that may be viewed in place.
//! * [`ArcSlice`] — a `Vec<T>`-or-borrowed-view slice. The borrowed form
//!   holds an [`ArcBytes`] owner plus an offset, performs no per-element
//!   work to materialize, and keeps the backing buffer alive for as long
//!   as any view of it exists.
//! * [`pod_bytes`] — the encode-side raw little-endian view of a `&[T]`.
//! * [`prefetch_read`] — best-effort cache-line prefetch for the frozen
//!   CSR candidate walks; a no-op where unsupported.
//! * [`dispatch_x86_feature!`](crate::dispatch_x86_feature) — runtime CPU-feature dispatch for the
//!   `#[target_feature]` hash kernels, so the single `unsafe` call the
//!   dispatch requires lives here rather than in the kernel crates.
//! * [`CountingAlloc`] — a `System`-wrapping global allocator that counts
//!   large allocations; the O(1)-allocation restart guarantee is asserted
//!   with it.

#![allow(unsafe_code)]

use crate::error::SnapshotError;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Alignment (bytes) of every [`ArcBytes`] buffer and of every section
/// payload inside a format-v3 snapshot image. One x86-64 cache line, and
/// enough for every element type the workspace stores.
pub const SECTION_ALIGN: usize = 64;

// ---------------------------------------------------------------------------
// AlignedBuf: the unique owner of a 64-byte-aligned heap allocation.
// ---------------------------------------------------------------------------

/// A heap allocation of `len` bytes whose base address is
/// [`SECTION_ALIGN`]-aligned. Unique owner; always wrapped in an `Arc` by
/// [`ArcBytes`].
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the buffer is plain bytes behind a unique pointer; `ArcBytes`
// only ever hands out shared `&[u8]` views once construction finishes.
// fairnn-audit: allow(zero-copy-unsafe) — plain-byte buffer with no interior mutability is freely shareable across threads
unsafe impl Send for AlignedBuf {}
// fairnn-audit: allow(zero-copy-unsafe) — plain-byte buffer with no interior mutability is freely shareable across threads
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocates a zero-filled aligned buffer. `len == 0` allocates one
    /// alignment unit so the base pointer is always real and aligned.
    fn zeroed(len: usize) -> Result<Self, SnapshotError> {
        let capacity = len.max(1);
        let Ok(layout) = Layout::from_size_align(capacity, SECTION_ALIGN) else {
            return Err(SnapshotError::Corrupt(format!(
                "buffer of {len} bytes exceeds the allocatable range"
            )));
        };
        // SAFETY: `layout` has non-zero size by the `max(1)` above.
        // fairnn-audit: allow(zero-copy-unsafe) — std::alloc is the only way to request an alignment above the element type's
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Ok(Self { ptr, len })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is valid for `len` initialized bytes for the life
        // of `self`, and no `&mut` view exists after construction.
        // fairnn-audit: allow(zero-copy-unsafe) — reconstitutes the slice this type's allocation invariant guarantees
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: `&mut self` proves unique access; `ptr` is valid for
        // `len` initialized bytes.
        // fairnn-audit: allow(zero-copy-unsafe) — unique access via &mut self; bounds are the allocation's own
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let capacity = self.len.max(1);
        if let Ok(layout) = Layout::from_size_align(capacity, SECTION_ALIGN) {
            // SAFETY: `ptr` came from `alloc_zeroed` with exactly this
            // layout (same `max(1)` capacity rounding).
            // fairnn-audit: allow(zero-copy-unsafe) — releases the allocation acquired in `zeroed` with the identical layout
            unsafe { std::alloc::dealloc(self.ptr, layout) };
        }
    }
}

// ---------------------------------------------------------------------------
// ArcBytes: shared, immutable, aligned bytes.
// ---------------------------------------------------------------------------

/// An immutable byte buffer behind an `Arc`, guaranteed to start at a
/// [`SECTION_ALIGN`]-aligned address. Cloning is O(1); the buffer lives
/// until the last clone (or [`ArcSlice`] borrowing from it) drops.
#[derive(Clone)]
pub struct ArcBytes {
    buf: Arc<AlignedBuf>,
}

impl ArcBytes {
    /// Copies `bytes` into a fresh aligned buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut buf = AlignedBuf::zeroed(bytes.len())?;
        buf.as_mut_slice().copy_from_slice(bytes);
        Ok(Self { buf: Arc::new(buf) })
    }

    /// Reads a whole file into one aligned allocation — the single large
    /// read a [`crate::SnapshotImage`] load performs.
    pub fn read_file(path: &Path) -> Result<Self, SnapshotError> {
        let mut file = std::fs::File::open(path)?;
        let meta = file.metadata()?;
        let len = usize::try_from(meta.len()).map_err(|_| {
            SnapshotError::Corrupt(format!("file of {} bytes exceeds usize", meta.len()))
        })?;
        let mut buf = AlignedBuf::zeroed(len)?;
        file.read_exact(buf.as_mut_slice())?;
        // A trailing read must see EOF; a file that grew mid-read would
        // silently truncate otherwise.
        let mut probe = [0u8; 1];
        if file.read(&mut probe)? != 0 {
            return Err(SnapshotError::Corrupt(
                "file grew while being read".to_string(),
            ));
        }
        Ok(Self { buf: Arc::new(buf) })
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_slice()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.buf.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.len == 0
    }
}

impl std::ops::Deref for ArcBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for ArcBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArcBytes({} bytes)", self.len())
    }
}

// ---------------------------------------------------------------------------
// Pod: element types that may be viewed in place.
// ---------------------------------------------------------------------------

/// Marker for element types that can be reinterpreted directly from
/// little-endian snapshot bytes: fixed width, no padding, no invalid bit
/// patterns, no pointers or lifetimes.
///
/// # Safety
///
/// Implementors guarantee `Self` is inhabited for **every** bit pattern of
/// its size, contains no padding bytes, and has no drop glue — i.e. a
/// `#[repr(transparent)]`/`#[repr(C)]` composition of the primitive
/// integer/float types. Violating this makes the borrowed [`ArcSlice`]
/// views undefined behavior. Implement via [`impl_pod!`](crate::impl_pod), which pins the
/// size against the on-wire width at compile time.
// fairnn-audit: allow(zero-copy-unsafe) — the unsafe marker trait is the contract the byte views rely on; implementors sign it via impl_pod!
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

/// Implements [`Pod`] for a `#[repr(transparent)]` wrapper of a primitive.
///
/// `impl_pod!(PointId, u32)` asserts at compile time that the wrapper has
/// exactly the primitive's size and alignment; the caller asserts (by
/// writing the macro invocation next to a `#[repr(transparent)]` type
/// definition) that the layout actually is transparent.
#[macro_export]
macro_rules! impl_pod {
    ($ty:ty, $prim:ty) => {
        const _: () = {
            assert!(std::mem::size_of::<$ty>() == std::mem::size_of::<$prim>());
            assert!(std::mem::align_of::<$ty>() == std::mem::align_of::<$prim>());
        };
        // SAFETY: size/align pinned above; the invoking site pairs this
        // with a `#[repr(transparent)]` wrapper of a primitive, which has
        // no padding and accepts every bit pattern.
        // fairnn-audit: allow(zero-copy-unsafe) — macro body; every expansion is next to a repr(transparent) primitive wrapper and size/align are pinned by the const assertions above
        unsafe impl $crate::Pod for $ty {}
    };
}

// SAFETY: primitive integers/floats: fixed width, no padding, every bit
// pattern valid.
// fairnn-audit: allow(zero-copy-unsafe) — u8 is the canonical Pod type
unsafe impl Pod for u8 {}
// fairnn-audit: allow(zero-copy-unsafe) — fixed-width primitive integer
unsafe impl Pod for u32 {}
// fairnn-audit: allow(zero-copy-unsafe) — fixed-width primitive integer
unsafe impl Pod for u64 {}
// fairnn-audit: allow(zero-copy-unsafe) — fixed-width primitive float; NaN payloads round-trip bit-exactly
unsafe impl Pod for f64 {}

/// The raw little-endian byte image of a `&[T]` — the encode-side
/// counterpart of the borrowed [`ArcSlice`] views. Returns `None` on
/// big-endian targets, where the in-memory image is not the wire format
/// and callers must serialize per element.
pub fn pod_bytes<T: Pod>(items: &[T]) -> Option<&[u8]> {
    if !cfg!(target_endian = "little") {
        return None;
    }
    // SAFETY: `T: Pod` has no padding, so every byte of the slice is
    // initialized; the length is the exact byte size of the elements.
    // fairnn-audit: allow(zero-copy-unsafe) — Pod guarantees a fully initialized, padding-free byte image
    Some(unsafe {
        std::slice::from_raw_parts(items.as_ptr().cast::<u8>(), std::mem::size_of_val(items))
    })
}

// ---------------------------------------------------------------------------
// ArcSlice: Vec<T> or a borrowed view into an ArcBytes.
// ---------------------------------------------------------------------------

enum Repr<T> {
    Owned(Vec<T>),
    /// Invariant (established by [`ArcSlice::borrowed`]): `T: Pod`,
    /// little-endian target, `offset + len * size_of::<T>()` is in bounds
    /// of `owner`, `len > 0`, and `owner.as_ptr() + offset` is aligned for
    /// `T`.
    Borrowed {
        owner: ArcBytes,
        offset: usize,
        len: usize,
    },
}

/// A read-mostly slice that is either an owned `Vec<T>` or a zero-copy
/// view into an [`ArcBytes`] buffer (a loaded snapshot image). Both forms
/// deref to `&[T]`; mutation goes through [`ArcSlice::to_mut`], which
/// converts a borrowed view into an owned vector first (copy-on-write).
pub struct ArcSlice<T> {
    repr: Repr<T>,
}

impl<T> ArcSlice<T> {
    /// Wraps an owned vector.
    pub fn from_vec(items: Vec<T>) -> Self {
        Self {
            repr: Repr::Owned(items),
        }
    }

    /// A zero-copy view of `len` elements of `T` starting `offset` bytes
    /// into `owner`. Returns `None` when the view cannot be materialized
    /// soundly — out of bounds, misaligned base address, or a big-endian
    /// target (where the file bytes are not the in-memory representation);
    /// callers fall back to an element-wise copy.
    pub fn borrowed(owner: &ArcBytes, offset: usize, len: usize) -> Option<Self>
    where
        T: Pod,
    {
        if len == 0 {
            return Some(Self::from_vec(Vec::new()));
        }
        if !cfg!(target_endian = "little") {
            return None;
        }
        let byte_len = len.checked_mul(std::mem::size_of::<T>())?;
        let end = offset.checked_add(byte_len)?;
        if end > owner.len() {
            return None;
        }
        let base = owner.as_slice().as_ptr() as usize;
        if !(base + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Self {
            repr: Repr::Borrowed {
                owner: owner.clone(),
                offset,
                len,
            },
        })
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v.as_slice(),
            Repr::Borrowed { owner, offset, len } => {
                // SAFETY: the `Borrowed` construction invariant (see
                // `Repr`) guarantees bounds, alignment and bit-validity;
                // `owner` keeps the buffer alive for `&self`'s lifetime.
                // fairnn-audit: allow(zero-copy-unsafe) — the Borrowed variant is only constructible through the checks in `borrowed`
                unsafe {
                    let base = owner.as_slice().as_ptr().add(*offset);
                    std::slice::from_raw_parts(base.cast::<T>(), *len)
                }
            }
        }
    }

    /// Whether this slice borrows from a shared buffer (true) or owns its
    /// elements (false). The O(1)-allocation load tests assert on this.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.repr, Repr::Borrowed { .. })
    }

    /// Mutable access, converting a borrowed view into an owned vector
    /// first (the copy-on-write seam the thaw/compact paths use).
    pub fn to_mut(&mut self) -> &mut Vec<T>
    where
        T: Clone,
    {
        if let Repr::Borrowed { .. } = &self.repr {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        let Repr::Owned(v) = &mut self.repr else {
            // Unreachable — the assignment above replaced any borrowed
            // form; diverge without the panic machinery this crate bans.
            std::process::abort();
        };
        v
    }

    /// Consumes the slice into an owned vector (copying when borrowed).
    pub fn into_vec(self) -> Vec<T>
    where
        T: Clone,
    {
        match self.repr {
            Repr::Owned(v) => v,
            Repr::Borrowed { .. } => self.as_slice().to_vec(),
        }
    }
}

impl<T> std::ops::Deref for ArcSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for ArcSlice<T> {
    fn default() -> Self {
        Self::from_vec(Vec::new())
    }
}

impl<T: Clone> Clone for ArcSlice<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Self::from_vec(v.clone()),
            Repr::Borrowed { owner, offset, len } => Self {
                repr: Repr::Borrowed {
                    owner: owner.clone(),
                    offset: *offset,
                    len: *len,
                },
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq> PartialEq for ArcSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for ArcSlice<T> {}

impl<T> From<Vec<T>> for ArcSlice<T> {
    fn from(items: Vec<T>) -> Self {
        Self::from_vec(items)
    }
}

// ---------------------------------------------------------------------------
// Software prefetch.
// ---------------------------------------------------------------------------

/// Hints the CPU to pull `slice[index]`'s cache line toward L1 ahead of a
/// dependent access. Out-of-bounds indexes and non-x86-64 targets are
/// silent no-ops; the hint never affects observable state.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(element) = slice.get(index) {
        // SAFETY: the pointer is derived from a live reference; PREFETCHT0
        // performs no memory access an invalid address could fault on.
        // fairnn-audit: allow(zero-copy-unsafe) — prefetch is a pure performance hint with no architectural effect
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                // fairnn-audit: allow(zero-copy-unsafe) — pointer cast of a live reference, consumed only by the prefetch hint
                (element as *const T).cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, index);
    }
}

// ---------------------------------------------------------------------------
// CPU-feature dispatch for #[target_feature] kernels.
// ---------------------------------------------------------------------------

/// Calls a `#[target_feature]` kernel when the named x86-64 features are
/// available at runtime, and a scalar fallback otherwise (including on
/// other architectures at compile time).
///
/// ```ignore
/// dispatch_x86_feature!(
///     ["avx512f", "avx512dq"],
///     kernel_avx512(items, &coeff, &mut mins),
///     kernel_scalar(items, &coeff, &mut mins)
/// );
/// ```
///
/// # Contract
///
/// The first expression must be a call to a **safe-bodied** function whose
/// `#[target_feature(enable = …)]` list is covered by the features named
/// here — that detection is the call's entire safety requirement, which is
/// why the expansion's `unsafe` block (living in this module, where the
/// `zero-copy-unsafe` audit rule blesses it) is sound. Both expressions
/// must be semantically identical; the kernel equality tests enforce it.
#[macro_export]
macro_rules! dispatch_x86_feature {
    ([$($feat:tt),+ $(,)?], $fast:expr, $fallback:expr $(,)?) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if true $(&& std::arch::is_x86_feature_detected!($feat))+ {
                // SAFETY: every feature the kernel's #[target_feature]
                // attribute enables was just detected on this CPU. The
                // metavar-in-unsafe expansion is this macro's documented
                // contract: callers pass a safe-bodied target_feature call.
                #[allow(clippy::macro_metavars_in_unsafe)]
                // fairnn-audit: allow(zero-copy-unsafe) — macro body; the detection guard above is the target_feature call's entire safety requirement
                unsafe {
                    $fast
                }
            } else {
                $fallback
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            $fallback
        }
    }};
}

// ---------------------------------------------------------------------------
// CountingAlloc: the large-allocation meter.
// ---------------------------------------------------------------------------

/// Allocations at or above this size count as "large" — the O(1) the
/// zero-copy load path promises is O(1) allocations of this class.
pub const LARGE_ALLOC_THRESHOLD: usize = 64 * 1024;

static LARGE_ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static LARGE_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A global allocator wrapping [`System`] that counts allocations of at
/// least [`LARGE_ALLOC_THRESHOLD`] bytes. Install with
/// `#[global_allocator]` in a test or bench binary, then bracket the
/// measured region with [`CountingAlloc::reset`] /
/// [`CountingAlloc::large_allocs`].
pub struct CountingAlloc;

impl CountingAlloc {
    /// The allocator value for a `#[global_allocator]` static.
    pub const fn new() -> Self {
        Self
    }

    /// Large allocations since the last [`CountingAlloc::reset`].
    pub fn large_allocs() -> u64 {
        LARGE_ALLOC_COUNT.load(Ordering::Relaxed)
    }

    /// Bytes requested by those large allocations.
    pub fn large_alloc_bytes() -> u64 {
        LARGE_ALLOC_BYTES.load(Ordering::Relaxed)
    }

    /// Zeroes both counters.
    pub fn reset() {
        LARGE_ALLOC_COUNT.store(0, Ordering::Relaxed);
        LARGE_ALLOC_BYTES.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn record(size: usize) {
        if size >= LARGE_ALLOC_THRESHOLD {
            LARGE_ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            LARGE_ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers every allocation to `System` unchanged; the counters are
// relaxed atomics with no allocation of their own.
// fairnn-audit: allow(zero-copy-unsafe) — pass-through to the System allocator; only counts, never alters, requests
unsafe impl GlobalAlloc for CountingAlloc {
    // fairnn-audit: allow(zero-copy-unsafe) — unsafe fn signature required by the GlobalAlloc trait
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        // SAFETY: identical contract to the caller's.
        // fairnn-audit: allow(zero-copy-unsafe) — forwards the caller's own layout to System
        unsafe { System.alloc(layout) }
    }

    // fairnn-audit: allow(zero-copy-unsafe) — unsafe fn signature required by the GlobalAlloc trait
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: identical contract to the caller's.
        // fairnn-audit: allow(zero-copy-unsafe) — forwards the caller's own pointer and layout to System
        unsafe { System.dealloc(ptr, layout) }
    }

    // fairnn-audit: allow(zero-copy-unsafe) — unsafe fn signature required by the GlobalAlloc trait
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        // SAFETY: identical contract to the caller's.
        // fairnn-audit: allow(zero-copy-unsafe) — forwards the caller's own layout to System
        unsafe { System.alloc_zeroed(layout) }
    }

    // fairnn-audit: allow(zero-copy-unsafe) — unsafe fn signature required by the GlobalAlloc trait
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record(new_size);
        // SAFETY: identical contract to the caller's.
        // fairnn-audit: allow(zero-copy-unsafe) — forwards the caller's own pointer, layout and size to System
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_bytes_is_aligned_and_round_trips() {
        let data: Vec<u8> = (0..200u8).collect();
        let bytes = ArcBytes::copy_from_slice(&data).unwrap();
        assert_eq!(bytes.as_slice(), &data[..]);
        assert_eq!(bytes.len(), 200);
        assert_eq!(bytes.as_slice().as_ptr() as usize % SECTION_ALIGN, 0);
        let clone = bytes.clone();
        assert_eq!(clone.as_slice(), bytes.as_slice());
    }

    #[test]
    fn empty_arc_bytes_is_fine() {
        let bytes = ArcBytes::copy_from_slice(&[]).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(bytes.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn read_file_matches_fs_read() {
        let path =
            std::env::temp_dir().join(format!("fairnn-bytes-test-{}.bin", std::process::id()));
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        std::fs::write(&path, &data).unwrap();
        let bytes = ArcBytes::read_file(&path).unwrap();
        assert_eq!(bytes.as_slice(), &data[..]);
        assert_eq!(bytes.as_slice().as_ptr() as usize % SECTION_ALIGN, 0);
        std::fs::remove_file(&path).unwrap();
        assert!(ArcBytes::read_file(&path).is_err());
    }

    #[test]
    fn borrowed_slice_views_the_buffer_in_place() {
        let values: Vec<u64> = (0..32).map(|i| i * 0x0101_0101).collect();
        let raw = pod_bytes(&values).unwrap();
        let owner = ArcBytes::copy_from_slice(raw).unwrap();
        let view: ArcSlice<u64> = ArcSlice::borrowed(&owner, 0, 32).unwrap();
        assert!(view.is_borrowed());
        assert_eq!(view.as_slice(), &values[..]);
        // The view points into the owner's buffer, not a copy.
        assert_eq!(
            view.as_slice().as_ptr() as usize,
            owner.as_slice().as_ptr() as usize
        );
        // Dropping the owner handle keeps the view alive via its clone.
        drop(owner);
        assert_eq!(view.len(), 32);
        assert_eq!(view[31], 31 * 0x0101_0101);
    }

    #[test]
    fn borrowed_rejects_misaligned_and_out_of_bounds() {
        let owner = ArcBytes::copy_from_slice(&[0u8; 64]).unwrap();
        assert!(
            ArcSlice::<u64>::borrowed(&owner, 1, 4).is_none(),
            "misaligned"
        );
        assert!(
            ArcSlice::<u64>::borrowed(&owner, 0, 9).is_none(),
            "past end"
        );
        assert!(ArcSlice::<u64>::borrowed(&owner, 64, 1).is_none(), "at end");
        assert!(ArcSlice::<u64>::borrowed(&owner, 0, 8).is_some());
        // Zero-length views degenerate to an (empty) owned form.
        let empty = ArcSlice::<u64>::borrowed(&owner, 0, 0).unwrap();
        assert!(!empty.is_borrowed());
        assert!(empty.is_empty());
    }

    #[test]
    fn to_mut_copies_on_write() {
        let values: Vec<u32> = (0..16).collect();
        let owner = ArcBytes::copy_from_slice(pod_bytes(&values).unwrap()).unwrap();
        let mut view: ArcSlice<u32> = ArcSlice::borrowed(&owner, 0, 16).unwrap();
        assert!(view.is_borrowed());
        view.to_mut().push(99);
        assert!(!view.is_borrowed());
        assert_eq!(view.len(), 17);
        assert_eq!(view[16], 99);
        // The original buffer is untouched.
        assert_eq!(owner.len(), 64);
    }

    #[test]
    fn owned_and_borrowed_compare_equal_by_contents() {
        let values: Vec<u64> = vec![7, 8, 9];
        let owner = ArcBytes::copy_from_slice(pod_bytes(&values).unwrap()).unwrap();
        let borrowed: ArcSlice<u64> = ArcSlice::borrowed(&owner, 0, 3).unwrap();
        let owned: ArcSlice<u64> = ArcSlice::from_vec(values.clone());
        assert_eq!(borrowed, owned);
        assert_eq!(owned.clone().into_vec(), values);
        assert_eq!(borrowed.clone().into_vec(), values);
    }

    #[test]
    fn prefetch_is_a_safe_no_op_observably() {
        let data: Vec<u64> = (0..100).collect();
        prefetch_read(&data, 50);
        prefetch_read(&data, 1_000_000); // out of bounds: silent
        prefetch_read::<u64>(&[], 0);
        assert_eq!(data[50], 50);
    }

    #[test]
    fn counting_alloc_records_large_allocations() {
        // Not installed as the global allocator here; exercise the
        // counters directly.
        CountingAlloc::reset();
        CountingAlloc::record(LARGE_ALLOC_THRESHOLD);
        CountingAlloc::record(LARGE_ALLOC_THRESHOLD - 1);
        assert_eq!(CountingAlloc::large_allocs(), 1);
        assert_eq!(
            CountingAlloc::large_alloc_bytes(),
            LARGE_ALLOC_THRESHOLD as u64
        );
        CountingAlloc::reset();
        assert_eq!(CountingAlloc::large_allocs(), 0);
    }

    #[test]
    fn dispatch_macro_runs_exactly_one_branch() {
        fn fallback(x: u64) -> u64 {
            x + 1
        }
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "sse2")]
        fn fast(x: u64) -> u64 {
            x + 1
        }
        #[cfg(not(target_arch = "x86_64"))]
        fn fast(x: u64) -> u64 {
            x + 1
        }
        let out = crate::dispatch_x86_feature!(["sse2"], fast(41), fallback(41));
        assert_eq!(out, 42);
    }
}
